#!/usr/bin/env python3
"""Determinism lint for the simulation code under ``src/repro/``.

The whole reproduction is a deterministic simulation: latency, faults,
and data generation all flow from explicit seeds, which is what makes
benchmark numbers and fault-injection tests reproducible.  This pass
walks the Python AST of every module under ``src/repro/`` and rejects
constructs that would smuggle nondeterminism (or real I/O) in:

* ``time.time`` / ``time.monotonic`` / ``time.perf_counter`` /
  ``time.sleep`` — the simulated clock lives in the network layer.
* ``datetime.now`` / ``datetime.today`` / ``datetime.utcnow``.
* module-level ``random.<fn>()`` calls — randomness must come from a
  seeded ``random.Random(seed)`` instance.
* ``socket`` / ``asyncio`` / ``threading`` imports — the wire protocol
  runs over the simulated link, never a real network or real
  concurrency.
* ``os.urandom`` / ``uuid.uuid1`` / ``uuid.uuid4`` / ``secrets``.

Usage: ``python tools/check_determinism.py [root]`` (default
``src/repro``).  Exits 1 and lists offending ``file:line`` sites.
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import Iterator, List, Tuple

#: (module, attribute) call targets that are banned outright.
BANNED_CALLS = {
    ("time", "time"): "use the simulated clock, not wall time",
    ("time", "monotonic"): "use the simulated clock, not wall time",
    ("time", "perf_counter"): "use the simulated clock, not wall time",
    ("time", "sleep"): "the simulation advances time explicitly",
    ("datetime", "now"): "wall-clock timestamps break determinism",
    ("datetime", "today"): "wall-clock timestamps break determinism",
    ("datetime", "utcnow"): "wall-clock timestamps break determinism",
    ("os", "urandom"): "use a seeded random.Random instead",
    ("uuid", "uuid1"): "use a seeded random.Random instead",
    ("uuid", "uuid4"): "use a seeded random.Random instead",
}

#: random-module functions that use the shared, unseeded global state.
GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "expovariate",
    "seed",
}

#: modules whose import is banned anywhere under src/repro.
BANNED_IMPORTS = {
    "socket": "the wire protocol runs over the simulated link",
    "asyncio": "the simulation is single-threaded and deterministic",
    "threading": "the simulation is single-threaded and deterministic",
    "secrets": "use a seeded random.Random instead",
}

Violation = Tuple[str, int, str]


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name for an attribute/name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def check_module(path: pathlib.Path, rel: str) -> Iterator[Violation]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in BANNED_IMPORTS:
                    yield (
                        rel,
                        node.lineno,
                        f"import {alias.name}: {BANNED_IMPORTS[root]}",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in BANNED_IMPORTS:
                yield (
                    rel,
                    node.lineno,
                    f"from {node.module} import ...: {BANNED_IMPORTS[root]}",
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            parts = dotted.split(".")
            if len(parts) == 2:
                pair = (parts[0], parts[1])
                if pair in BANNED_CALLS:
                    yield (
                        rel,
                        node.lineno,
                        f"{dotted}(): {BANNED_CALLS[pair]}",
                    )
                elif parts[0] == "random" and parts[1] in GLOBAL_RANDOM_FNS:
                    yield (
                        rel,
                        node.lineno,
                        f"{dotted}(): global random state is unseeded; "
                        "use random.Random(seed)",
                    )


def main(argv: List[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path("src/repro")
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    violations: List[Violation] = []
    for path in sorted(root.rglob("*.py")):
        rel = str(path)
        violations.extend(check_module(path, rel))
    for rel, lineno, message in violations:
        print(f"{rel}:{lineno}: {message}")
    if violations:
        print(f"{len(violations)} determinism violation(s)", file=sys.stderr)
        return 1
    print(f"determinism check: {root} clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
