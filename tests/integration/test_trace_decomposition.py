"""The trace layer's two contracts, end to end on a faulty WAN.

1. **Exactness** — over a traced batched multi-level expand, the root
   span's component ledger (latency / transfer / backoff / spike / ...)
   sums to the root span's duration exactly, and that duration equals
   the ``ActionResult.seconds`` the untraced code path reports.
2. **Transparency** — attaching a recorder changes *nothing*: the same
   scenario and fault seed produce bit-identical seconds and a
   canonical-bytes-identical tree with tracing on and off.

The traced mean across fault seeds is also checked against the
retry-aware analytic model within the repo's standard tolerance — the
same anchoring as ``benchmarks/bench_ablation_faults.py``.
"""

import os

import pytest

from repro.bench.workload import build_scenario
from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.response_time import Action, Strategy, predict_with_faults
from repro.network.faults import FLAKY_WAN, RetryPolicy
from repro.network.profiles import WAN_512
from repro.obs import TraceRecorder
from repro.pdm.operations import ExpandStrategy

TREE = TreeParameters(depth=4, branching=3, visibility=0.6)
NETWORK = NetworkParameters(latency_s=0.15, dtr_kbit_s=512)
SEED = 42
RETRY_POLICY = RetryPolicy(timeout_s=2.0, jitter_fraction=0.1)
#: The batched strategy makes only ~4 round trips per expand, so a
#: single 2 s timeout is a large per-seed perturbation — the mean needs
#: many fault seeds to tighten (the ablation bench instead aggregates
#: across all four strategies).  Each run costs ~20 ms of wall clock.
FAULT_SEEDS = tuple(
    range(1, 41 if os.environ.get("REPRO_BENCH_SCALE") == "small" else 201)
)
TOLERANCE = 0.5 if os.environ.get("REPRO_BENCH_SCALE") == "small" else 0.10

ROOT_SPAN = "pdm.resilient_multi_level_expand"


@pytest.fixture(scope="module")
def product():
    return build_scenario(TREE, WAN_512, seed=SEED).product


def run_traced(product, fault_seed, recorder):
    scenario = build_scenario(
        TREE,
        WAN_512,
        seed=SEED,
        product=product,
        fault_profile=FLAKY_WAN,
        fault_seed=fault_seed,
        retry_policy=RETRY_POLICY,
        recorder=recorder,
    )
    result = scenario.client.resilient_multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.EXPAND_BATCHED,
        root_attrs=scenario.product.root_attributes(),
    )
    return scenario, result


class TestExactDecomposition:
    @pytest.mark.parametrize("fault_seed", FAULT_SEEDS[:4])
    def test_components_sum_to_root_duration(self, product, fault_seed):
        recorder = TraceRecorder()
        __, result = run_traced(product, fault_seed, recorder)
        root = recorder.find_root(ROOT_SPAN)
        assert root is not None
        totals = root.total_components()
        assert sum(totals.values()) == pytest.approx(
            root.duration, abs=1e-9
        )
        assert root.duration == pytest.approx(result.seconds, abs=1e-9)

    def test_faulty_run_has_fault_components(self, product):
        recorder = TraceRecorder()
        run_traced(product, FAULT_SEEDS[0], recorder)
        totals = recorder.find_root(ROOT_SPAN).total_components()
        assert totals["latency"] > 0
        assert totals["transfer"] > 0
        # flaky-wan spikes with p=0.10; seed 1 over dozens of round
        # trips reliably hits at least one.
        assert any(
            key in totals for key in ("spike", "backoff", "timeout")
        )

    def test_span_tree_shape(self, product):
        recorder = TraceRecorder()
        run_traced(product, FAULT_SEEDS[0], recorder)
        root = recorder.find_root(ROOT_SPAN)
        levels = [c for c in root.children if c.name == "pdm.expand_level"]
        assert len(levels) == TREE.depth  # one span per expanded level
        assert all(
            any(g.name == "rpc.round_trip" for g in level.children)
            for level in levels
        )


class TestTransparency:
    def test_tracing_off_is_bit_identical(self, product):
        fault_seed = FAULT_SEEDS[0]
        __, traced = run_traced(product, fault_seed, TraceRecorder())
        __, untraced = run_traced(product, fault_seed, None)
        assert traced.seconds == untraced.seconds  # exact, not approx
        assert traced.round_trips == untraced.round_trips
        assert (
            traced.tree.canonical_bytes() == untraced.tree.canonical_bytes()
        )


class TestModelAgreement:
    def test_traced_mean_within_tolerance_of_model(self, product):
        zero_fault = build_scenario(TREE, WAN_512, seed=SEED, product=product)
        reference = zero_fault.client.resilient_multi_level_expand(
            zero_fault.product.root_obid,
            ExpandStrategy.EXPAND_BATCHED,
            root_attrs=zero_fault.product.root_attributes(),
        )
        prediction = predict_with_faults(
            Action.MLE,
            Strategy.BATCHED,
            TREE,
            NETWORK,
            FLAKY_WAN,
            RETRY_POLICY,
            query_packets=2,
        )
        overhead_per_round_trip = (
            prediction.retry_seconds
            + prediction.backoff_seconds
            + prediction.spike_seconds
        ) / (prediction.base.communications / 2.0)
        predicted = (
            reference.seconds
            + overhead_per_round_trip * reference.round_trips
        )
        measured = []
        for fault_seed in FAULT_SEEDS:
            recorder = TraceRecorder()
            __, result = run_traced(product, fault_seed, recorder)
            root = recorder.find_root(ROOT_SPAN)
            assert sum(root.total_components().values()) == pytest.approx(
                root.duration, abs=1e-9
            )
            measured.append(result.seconds)
        mean = sum(measured) / len(measured)
        assert mean == pytest.approx(predicted, rel=TOLERANCE)
