"""The central correctness property of the reproduction.

For arbitrary product trees and rule draws, the three strategies must
produce the *same* result sets: late client-side evaluation is the
reference semantics, early evaluation folds the same conditions into the
navigational SQL, and the recursive query folds them into one statement.
The paper's performance claims are only meaningful if this holds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import WAN_1024
from repro.pdm.operations import ExpandStrategy
from repro.pdm.structure import trees_equal
from repro.rules.conditions import Attribute, Comparison, Const
from repro.rules.model import Actions, Rule

tree_params = st.builds(
    TreeParameters,
    depth=st.integers(min_value=1, max_value=4),
    branching=st.integers(min_value=1, max_value=3),
    visibility=st.sampled_from([0.0, 0.3, 0.6, 1.0]),
)


@st.composite
def scenarios(draw):
    tree = draw(tree_params)
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return build_scenario(tree, WAN_1024, seed=seed)


class TestStrategyEquivalence:
    @given(scenarios())
    @settings(max_examples=25, deadline=None)
    def test_mle_strategies_agree(self, scenario):
        root = scenario.product.root_obid
        root_attrs = scenario.product.root_attributes()
        late = scenario.client.multi_level_expand(
            root, ExpandStrategy.NAVIGATIONAL_LATE, root_attrs=root_attrs
        ).tree
        early = scenario.client.multi_level_expand(
            root, ExpandStrategy.NAVIGATIONAL_EARLY, root_attrs=root_attrs
        ).tree
        recursive = scenario.client.multi_level_expand(
            root, ExpandStrategy.RECURSIVE_EARLY, root_attrs=root_attrs
        ).tree
        batched = scenario.client.multi_level_expand(
            root, ExpandStrategy.EXPAND_BATCHED, root_attrs=root_attrs
        ).tree
        assert trees_equal(late, early)
        assert trees_equal(late, recursive)
        assert trees_equal(late, batched)
        assert late.obids() == scenario.product.visible_obids

    @given(scenarios(), st.sampled_from([None, 0, 1, 2]))
    @settings(max_examples=15, deadline=None)
    def test_batched_expand_matches_navigational_at_any_depth(
        self, scenario, max_depth
    ):
        """Node-for-node property: the level-at-a-time batched expand is
        the navigational-late traversal, just pipelined — including under
        a partial-expand depth bound."""
        root = scenario.product.root_obid
        root_attrs = scenario.product.root_attributes()
        late = scenario.client.multi_level_expand(
            root,
            ExpandStrategy.NAVIGATIONAL_LATE,
            root_attrs=root_attrs,
            max_depth=max_depth,
        )
        batched = scenario.client.multi_level_expand(
            root,
            ExpandStrategy.EXPAND_BATCHED,
            root_attrs=root_attrs,
            max_depth=max_depth,
        )
        assert trees_equal(late.tree, batched.tree)
        # One batch per expanded level, never more than the tree is deep.
        bound = scenario.tree.depth if max_depth is None else max_depth
        assert batched.round_trips <= bound
        assert batched.round_trips <= late.round_trips

    @given(scenarios())
    @settings(max_examples=15, deadline=None)
    def test_query_strategies_agree(self, scenario):
        root = scenario.product.root_obid
        late = scenario.client.query(root, ExpandStrategy.NAVIGATIONAL_LATE)
        early = scenario.client.query(root, ExpandStrategy.NAVIGATIONAL_EARLY)
        assert {a["obid"] for a in late.objects} == {
            a["obid"] for a in early.objects
        }

    @given(scenarios())
    @settings(max_examples=15, deadline=None)
    def test_recursive_never_slower_in_round_trips(self, scenario):
        root = scenario.product.root_obid
        root_attrs = scenario.product.root_attributes()
        navigational = scenario.client.multi_level_expand(
            root, ExpandStrategy.NAVIGATIONAL_EARLY, root_attrs=root_attrs
        )
        recursive = scenario.client.multi_level_expand(
            root, ExpandStrategy.RECURSIVE_EARLY, root_attrs=root_attrs
        )
        assert recursive.round_trips == 1
        assert navigational.round_trips >= recursive.round_trips

    @given(
        scenarios(),
        st.sampled_from(["make", "buy"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_extra_row_rule_keeps_equivalence(self, scenario, blocked):
        """Add a second, unrelated row rule; strategies must still agree."""
        scenario.rule_table.add(
            Rule(
                user="*",
                action=Actions.ACCESS,
                object_type="assy",
                condition=Comparison("<>", Attribute("make_or_buy"), Const(blocked)),
            )
        )
        client = scenario.fresh_client()
        root = scenario.product.root_obid
        root_attrs = scenario.product.root_attributes()
        late = client.multi_level_expand(
            root, ExpandStrategy.NAVIGATIONAL_LATE, root_attrs=root_attrs
        ).tree
        recursive = client.multi_level_expand(
            root, ExpandStrategy.RECURSIVE_EARLY, root_attrs=root_attrs
        ).tree
        assert trees_equal(late, recursive)
