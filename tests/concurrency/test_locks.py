"""Unit tests for the strict-2PL lock manager."""

import pytest

from repro.concurrency.locks import LockManager, LockMode
from repro.errors import (
    ConcurrencyError,
    DeadlockError,
    LockTimeout,
    LockUnavailable,
)
from repro.network.clock import SimulatedClock

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


@pytest.fixture
def locks():
    return LockManager()


class TestCompatibility:
    def test_shared_locks_coexist(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, S)
        locks.acquire(b, "t", 1, S)
        assert set(locks.holders(("t", 1))) == {a, b}

    def test_exclusive_conflicts_with_shared(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, S)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)

    def test_exclusive_conflicts_with_exclusive(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)

    def test_table_lock_overlaps_every_row(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", None, S)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 7, X)

    def test_row_lock_overlaps_table_lock(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 7, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", None, S)

    def test_different_rows_do_not_conflict(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        locks.acquire(b, "t", 2, X)

    def test_different_tables_do_not_conflict(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", None, X)
        locks.acquire(b, "u", None, X)

    def test_reacquire_is_idempotent(self, locks):
        a = locks.begin()
        locks.acquire(a, "t", 1, X)
        locks.acquire(a, "t", 1, X)
        locks.acquire(a, "t", 1, S)  # X already covers S
        assert locks.locks_held(a) == [(("t", 1), X)]

    def test_upgrade_shared_to_exclusive(self, locks):
        a = locks.begin()
        locks.acquire(a, "t", 1, S)
        locks.acquire(a, "t", 1, X)
        assert locks.locks_held(a) == [(("t", 1), X)]

    def test_upgrade_blocked_by_other_reader(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, S)
        locks.acquire(b, "t", 1, S)
        with pytest.raises(LockUnavailable):
            locks.acquire(a, "t", 1, X)

    def test_unknown_owner_rejected(self, locks):
        with pytest.raises(ConcurrencyError):
            locks.acquire(99, "t", 1, S)


class TestParkAndGrant:
    def test_release_grants_parked_waiter(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)
        locks.release_all(a)
        # The grant happened at release time; the retry finds it held.
        locks.acquire(b, "t", 1, X)
        assert locks.locks_held(b) == [(("t", 1), X)]
        assert locks.statistics["grants_after_wait"] == 1

    def test_fifo_no_barge_past_waiting_writer(self, locks):
        a, b, c = locks.begin(), locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, S)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)  # writer parks behind the reader
        # A later reader may NOT barge past the parked writer.
        with pytest.raises(LockUnavailable):
            locks.acquire(c, "t", 1, S)
        locks.release_all(a)
        locks.acquire(b, "t", 1, X)  # writer granted first

    def test_park_false_fails_without_queueing(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X, park=False)
        locks.release_all(a)
        c = locks.begin()
        locks.acquire(c, "t", 1, X)  # b never joined the queue

    def test_release_all_clears_holds_and_waiters(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)
        locks.release_all(b)  # b gives up while parked
        locks.release_all(a)
        assert locks.holders(("t", 1)) == {}


class TestDeadlock:
    def test_cycle_aborts_youngest(self, locks):
        a = locks.begin()
        b = locks.begin()  # younger (larger id)
        locks.acquire(a, "t", 1, X)
        locks.acquire(b, "t", 2, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(a, "t", 2, X)  # a waits on b
        # b waiting on a closes the cycle; b is youngest -> victim.
        with pytest.raises(DeadlockError):
            locks.acquire(b, "t", 1, X)
        assert locks.statistics["deadlocks"] == 1
        # The victim's caller rolls back (releasing its locks); a's parked
        # request is granted by that release.
        locks.release_all(b)
        locks.acquire(a, "t", 2, X)

    def test_victim_callback_aborts_other_transaction(self, locks):
        aborted = []

        def abort(txn_id):
            aborted.append(txn_id)
            locks.release_all(txn_id)

        locks.abort_callback = abort
        a = locks.begin()
        b = locks.begin()
        locks.acquire(b, "t", 2, X)
        locks.acquire(a, "t", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)  # b (younger) waits on a
        # a closes the cycle; victim is b (youngest), aborted via callback,
        # and a's request is granted immediately.
        locks.acquire(a, "t", 2, X)
        assert aborted == [b]

    def test_persistent_owner_never_victim(self, locks):
        checkout = locks.begin(owner="user", persistent=True)
        a = locks.begin()
        locks.acquire(checkout, "t", 1, X)
        locks.acquire(a, "t", 2, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(a, "t", 1, X)
        # Only a cycle through {checkout, a} could exist, and the
        # persistent owner is excluded — no deadlock is declared.
        with pytest.raises(LockUnavailable):
            locks.acquire(a, "t", 1, X)

    def test_no_false_positive_on_simple_wait(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)
        assert locks.statistics["deadlocks"] == 0

    def test_cycle_records_waited_on_tables(self, locks):
        # The static analyzer's soundness test compares C001 predictions
        # against these records, so each detected cycle must name the
        # tables its members were waiting on.
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        locks.acquire(b, "u", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(a, "u", 1, X)
        with pytest.raises(DeadlockError):
            locks.acquire(b, "t", 1, X)
        assert locks.deadlock_cycles == [("t", "u")]

    def test_no_cycle_records_nothing(self, locks):
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)
        assert locks.deadlock_cycles == []

    def test_cycles_are_not_in_statistics(self, locks):
        # Seeded sim reports serialise ``statistics``; the cycle log must
        # stay out of it so same-seed reports remain byte-identical.
        assert "deadlock_cycles" not in locks.statistics


class TestTimeouts:
    def test_waiter_times_out_on_clock(self):
        clock = SimulatedClock()
        locks = LockManager(clock=clock, timeout_s=10.0)
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)
        clock.advance(10.5)
        with pytest.raises(LockTimeout):
            locks.acquire(b, "t", 1, X)
        assert locks.statistics["timeouts"] == 1

    def test_retry_before_deadline_keeps_waiting(self):
        clock = SimulatedClock()
        locks = LockManager(clock=clock, timeout_s=10.0)
        a, b = locks.begin(), locks.begin()
        locks.acquire(a, "t", 1, X)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)
        clock.advance(5.0)
        with pytest.raises(LockUnavailable):
            locks.acquire(b, "t", 1, X)


class TestPersistentLocks:
    def test_all_or_nothing_rolls_back_partial_grant(self, locks):
        other = locks.begin()
        locks.acquire(other, "@checkout", 3, X)
        user = locks.persistent_owner(("checkout", "alice"))
        with pytest.raises(LockUnavailable):
            locks.acquire_all_or_nothing(
                user, [("@checkout", 1), ("@checkout", 2), ("@checkout", 3)]
            )
        assert locks.locks_held(user) == []

    def test_persistent_owner_is_stable_per_key(self, locks):
        first = locks.persistent_owner(("checkout", "alice"))
        again = locks.persistent_owner(("checkout", "alice"))
        bob = locks.persistent_owner(("checkout", "bob"))
        assert first == again
        assert bob != first

    def test_release_specific_resources(self, locks):
        user = locks.persistent_owner(("checkout", "alice"))
        locks.acquire_all_or_nothing(user, [("@checkout", 1), ("@checkout", 2)])
        locks.release(user, [("@checkout", 1)])
        assert locks.locks_held(user) == [(("@checkout", 2), X)]

    def test_locks_survive_release_all_of_other_owner(self, locks):
        user = locks.persistent_owner(("checkout", "alice"))
        locks.acquire_all_or_nothing(user, [("@checkout", 1)])
        txn = locks.begin()
        locks.release_all(txn)
        assert locks.locks_held(user) == [(("@checkout", 1), X)]
