"""PDM check-out mapped onto persistent exclusive subtree locks."""

import pytest

from repro.concurrency import LockManager, SessionManager
from repro.errors import CheckOutError
from repro.pdm.generator import figure2_dataset
from repro.pdm.schema import (
    _check_in_tree,
    _check_out_tree,
    create_pdm_schema,
    load_product,
)
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database()
    create_pdm_schema(database)
    load_product(database, figure2_dataset())
    locks = LockManager()
    SessionManager(database, locks)  # attaches the lock manager
    return database


def checkout_locks(db, user):
    owner = db.locks.persistent_owner(("checkout", user))
    return db.locks.locks_held(owner)


class TestCheckoutLocks:
    def test_checkout_takes_persistent_subtree_locks(self, db):
        obids = _check_out_tree(db, 2, "alice")
        held = {resource for resource, __ in checkout_locks(db, "alice")}
        assert held == {("@checkout", obid) for obid in obids}

    def test_overlapping_checkout_conflicts(self, db):
        _check_out_tree(db, 2, "alice")
        # The root subtree contains assembly 2 — bob must be refused, and
        # the failed attempt must leave no locks behind.
        with pytest.raises(CheckOutError):
            _check_out_tree(db, 1, "bob")
        assert checkout_locks(db, "bob") == []

    def test_disjoint_checkouts_coexist(self, db):
        first = _check_out_tree(db, 2, "alice")
        second = _check_out_tree(db, 3, "bob")
        assert not (set(first) & set(second))

    def test_checkin_releases_locks(self, db):
        _check_out_tree(db, 2, "alice")
        _check_in_tree(db, 2, "alice")
        assert checkout_locks(db, "alice") == []
        # The subtree is free again for another user.
        _check_out_tree(db, 2, "bob")

    def test_checkout_locks_survive_transactions(self, db):
        _check_out_tree(db, 2, "alice")
        db.begin()
        db.execute("UPDATE assy SET weight = 1.0 WHERE obid = 5")
        db.rollback()
        assert checkout_locks(db, "alice") != []

    def test_checkout_does_not_block_reads(self, db):
        """@checkout locks live in their own namespace: expanding the
        checked-out subtree (a table scan of assy/link) stays possible."""
        _check_out_tree(db, 2, "alice")
        result = db.execute("SELECT COUNT(*) FROM assy")
        assert result.scalar() > 0

    def test_flag_conflict_rolls_back_fresh_locks_only(self, db):
        obids = _check_out_tree(db, 2, "alice")
        # Re-checking-out the same subtree fails on the checkedout flags;
        # alice's original locks must survive the failed attempt.
        with pytest.raises(CheckOutError):
            _check_out_tree(db, 2, "alice")
        held = {resource for resource, __ in checkout_locks(db, "alice")}
        assert held == {("@checkout", obid) for obid in obids}

    def test_without_lock_manager_checkout_still_works(self):
        database = Database()
        create_pdm_schema(database)
        load_product(database, figure2_dataset())
        obids = _check_out_tree(database, 2, "alice")
        assert obids
        with pytest.raises(CheckOutError):
            _check_out_tree(database, 1, "bob")
        _check_in_tree(database, 2, "alice")
