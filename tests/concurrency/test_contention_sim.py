"""The deterministic contention simulator and its invariants."""

import pytest

from repro.concurrency import (
    ContentionConfig,
    ContentionSim,
    exact_percentile,
    report_json,
)
from repro.errors import ConcurrencyError


class TestDeterminism:
    def test_same_seed_byte_identical_reports(self):
        config = ContentionConfig(
            clients=3, ops_per_client=5, conflict_rate=0.6, seed=7
        )
        first = ContentionSim(config).run()
        second = ContentionSim(config).run()
        assert report_json(first) == report_json(second)
        assert first["schedule"]["hash"] == second["schedule"]["hash"]

    def test_different_seeds_differ(self):
        base = dict(clients=3, ops_per_client=5, conflict_rate=0.6)
        first = ContentionSim(ContentionConfig(seed=1, **base)).run()
        second = ContentionSim(ContentionConfig(seed=2, **base)).run()
        assert first["schedule"]["hash"] != second["schedule"]["hash"]


class TestInvariants:
    @pytest.fixture(scope="class")
    def contended_report(self):
        return ContentionSim(
            ContentionConfig(
                clients=4, ops_per_client=8, conflict_rate=0.9, seed=42
            )
        ).run()

    def test_zero_lost_updates(self, contended_report):
        assert contended_report["lost_updates"] == 0
        assert contended_report["committed_increments"] > 0

    def test_conflicts_actually_happened(self, contended_report):
        totals = contended_report["totals"]
        assert (
            totals["write_retries"]
            + totals["read_retries"]
            + totals["deadlock_aborts"]
        ) > 0

    def test_every_abort_was_restarted_to_completion(self, contended_report):
        totals = contended_report["totals"]
        # Restarts cover every deadlock/timeout abort (nothing abandoned).
        assert totals["txn_restarts"] == (
            totals["deadlock_aborts"] + totals["timeout_aborts"]
        )

    def test_all_sessions_closed(self, contended_report):
        assert contended_report["server"]["sessions_open"] == 0

    def test_checkins_match_checkouts(self, contended_report):
        totals = contended_report["totals"]
        assert totals["checkins"] == totals["checkouts"]

    def test_latency_distribution_is_ordered(self, contended_report):
        latency = contended_report["latency_s"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["p99"] <= latency["max"]

    def test_simulated_time_advanced(self, contended_report):
        assert contended_report["elapsed_s"] > 0
        assert contended_report["throughput_ops_per_s"] > 0


class TestAuditEco:
    """Long READ ONLY audits racing ECO write bursts, 2PL vs MVCC."""

    AUDIT_KWARGS = dict(
        clients=6, ops_per_client=6, conflict_rate=0.5, seed=42,
        scenario="audit_eco",
    )

    @pytest.fixture(scope="class")
    def locked(self):
        return ContentionSim(ContentionConfig(**self.AUDIT_KWARGS)).run()

    @pytest.fixture(scope="class")
    def snapshotted(self):
        return ContentionSim(
            ContentionConfig(mvcc=True, **self.AUDIT_KWARGS)
        ).run()

    def test_same_seed_byte_identical_for_both_builds(self):
        for mvcc in (False, True):
            config = ContentionConfig(mvcc=mvcc, **self.AUDIT_KWARGS)
            first = ContentionSim(config).run()
            second = ContentionSim(config).run()
            assert report_json(first) == report_json(second)

    def test_2pl_auditors_actually_contend(self, locked):
        totals = locked["totals"]
        assert totals["ro_lock_waits"] > 0
        assert not locked["mvcc"]["enabled"]
        assert locked["mvcc"]["snapshot_reads"] == 0

    def test_mvcc_auditors_never_wait_or_abort(self, snapshotted):
        totals = snapshotted["totals"]
        assert totals["ro_lock_waits"] == 0
        assert totals["ro_aborts"] == 0
        assert snapshotted["mvcc"]["enabled"]
        assert snapshotted["mvcc"]["snapshot_reads"] > 0
        assert snapshotted["mvcc"]["readonly_txns"] > 0
        # Steady state after the run: every chain garbage-collected.
        assert snapshotted["mvcc"]["chains"] == 0

    def test_mvcc_expand_tail_latency_strictly_better(
        self, locked, snapshotted
    ):
        assert (
            snapshotted["expand_latency_s"]["p99"]
            < locked["expand_latency_s"]["p99"]
        )

    def test_no_lost_updates_either_way(self, locked, snapshotted):
        assert locked["lost_updates"] == 0
        assert snapshotted["lost_updates"] == 0
        assert locked["totals"]["eco_commits"] > 0
        assert snapshotted["totals"]["eco_commits"] > 0

    def test_restarts_cover_every_abort(self, locked, snapshotted):
        for report in (locked, snapshotted):
            totals = report["totals"]
            assert totals["txn_restarts"] == (
                totals["deadlock_aborts"]
                + totals["timeout_aborts"]
                + totals["ro_aborts"]
            )


class TestConfigValidation:
    def test_rejects_zero_clients(self):
        with pytest.raises(ConcurrencyError):
            ContentionConfig(clients=0)

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ConcurrencyError):
            ContentionConfig(scenario="chaos-monkey")

    def test_rejects_single_hot_counter(self):
        with pytest.raises(ConcurrencyError):
            ContentionConfig(hot_counters=1)

    def test_rejects_bad_conflict_rate(self):
        with pytest.raises(ConcurrencyError):
            ContentionConfig(conflict_rate=1.5)


class TestExactPercentile:
    def test_empty_is_none(self):
        assert exact_percentile([], 0.5) is None

    def test_single_value(self):
        assert exact_percentile([3.0], 0.99) == 3.0

    def test_median_interpolates(self):
        assert exact_percentile([1.0, 2.0], 0.5) == 1.5

    def test_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert exact_percentile(data, 0.0) == 1.0
        assert exact_percentile(data, 1.0) == 4.0
