"""Eviction of dead sessions: the 2PL lock-leak regression tests.

A client that stops sending frames (process kill, network death) used
to leave its session's exclusive locks held forever, starving every
parked waiter behind them.  ``SessionManager.evict`` is the fix: it
rolls the open transaction back through the same path as a client
CLOSE_SESSION, releasing the locks and waking FIFO waiters.  Server
crash/restart reuses the same path for every session at once.
"""

import pytest

from repro.concurrency import LockManager, SessionManager
from repro.errors import LockUnavailable, SessionError
from repro.network.clock import SimulatedClock
from repro.network.link import NetworkLink
from repro.server.client import RemoteConnection
from repro.server.server import DatabaseServer
from repro.sqldb import Database


@pytest.fixture
def stack():
    db = Database()
    db.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, balance INTEGER)")
    db.execute("INSERT INTO acct VALUES (1, 100), (2, 200)")
    clock = SimulatedClock()
    locks = LockManager(clock=clock)
    sessions = SessionManager(db, locks)
    server = DatabaseServer(db, sessions=sessions)
    connections = [
        RemoteConnection(
            server, NetworkLink(latency_s=0.01, dtr_kbit_s=512, clock=clock)
        )
        for __ in range(2)
    ]
    return db, sessions, connections


class TestEvict:
    def test_parked_waiter_granted_after_eviction(self, stack):
        db, sessions, (dead, waiter) = stack
        # The doomed client takes an exclusive lock ... and goes silent.
        dead.begin()
        dead.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        # The waiter parks behind it.
        waiter.begin()
        with pytest.raises(LockUnavailable):
            waiter.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        # Eviction rolls the dead transaction back and frees its locks:
        # the parked statement now succeeds on retry.
        assert sessions.evict(dead.client_id)
        waiter.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        waiter.commit()
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 1

    def test_eviction_rolls_the_transaction_back(self, stack):
        db, sessions, (dead, __) = stack
        dead.begin()
        dead.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        sessions.evict(dead.client_id)
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 100

    def test_eviction_is_idempotent(self, stack):
        __, sessions, (dead, __c) = stack
        dead.open_session()
        assert sessions.evict(dead.client_id)
        assert not sessions.evict(dead.client_id)
        assert sessions.statistics["evicted"] == 1

    def test_evicted_client_statements_fail_loudly(self, stack):
        __, sessions, (dead, __c) = stack
        dead.begin()
        sessions.evict(dead.client_id)
        # The client still believes it is inside a transaction; routing
        # its statements to the default session would autocommit them.
        with pytest.raises(SessionError):
            dead.execute("UPDATE acct SET balance = 0 WHERE id = 1")

    def test_reopen_clears_the_eviction(self, stack):
        db, sessions, (dead, __c) = stack
        dead.begin()
        sessions.evict(dead.client_id)
        dead.mark_session_lost()
        dead.begin()  # re-opens the session
        dead.execute("UPDATE acct SET balance = 5 WHERE id = 1")
        dead.commit()
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 5

    def test_evict_all_clears_every_session(self, stack):
        __, sessions, (a, b) = stack
        a.begin()
        b.open_session()
        assert sessions.evict_all() == 2
        assert sessions.open_count == 0

    def test_idle_session_eviction_consumes_abort_flag(self, stack):
        """Evicting a session parked on a force-abort flag (deadlock
        victim that never acknowledged) must not leave the flag behind
        for an unrelated future session with the same client id."""
        db, sessions, (dead, __c) = stack
        session = sessions.open(dead.client_id)
        db._aborted[session.token] = True
        sessions.evict(dead.client_id)
        assert session.token not in db._aborted

    def test_rebind_requires_empty_registry(self, stack):
        __, sessions, (a, __c) = stack
        a.open_session()
        with pytest.raises(SessionError):
            sessions.rebind(Database())
