"""Per-session transactions: embedded, over the wire, and under conflict."""

import pytest

from repro.concurrency import LockManager, SessionManager
from repro.errors import (
    DeadlockError,
    ExecutionError,
    LockUnavailable,
    SessionError,
    TimeoutError,
)
from repro.network.clock import SimulatedClock
from repro.network.faults import RetryPolicy
from repro.network.link import NetworkLink
from repro.server.client import RemoteConnection
from repro.server.protocol import Opcode, SESSION_OPCODES
from repro.server.server import DatabaseServer
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, balance INTEGER)"
    )
    database.execute("INSERT INTO acct VALUES (1, 100), (2, 200)")
    return database


def make_stack(db, clients=2, lock_timeout_s=None):
    clock = SimulatedClock()
    locks = LockManager(clock=clock, timeout_s=lock_timeout_s)
    sessions = SessionManager(db, locks)
    server = DatabaseServer(db, sessions=sessions)
    connections = [
        RemoteConnection(
            server, NetworkLink(latency_s=0.01, dtr_kbit_s=512, clock=clock)
        )
        for __ in range(clients)
    ]
    return server, sessions, connections


class TestEmbeddedSessions:
    def test_independent_transactions(self, db):
        db.begin(session="a")
        db.begin(session="b")
        db.execute(
            "UPDATE acct SET balance = 0 WHERE id = 1", session="a"
        )
        db.execute(
            "UPDATE acct SET balance = 0 WHERE id = 2", session="b"
        )
        db.rollback(session="a")
        # a's rollback must not disturb b's still-open transaction.
        assert db.session_in_transaction("b")
        db.commit(session="b")
        result = db.execute("SELECT id, balance FROM acct ORDER BY id")
        assert result.rows == [(1, 100), (2, 0)]

    def test_double_begin_rejected_per_session(self, db):
        db.begin(session="a")
        with pytest.raises(ExecutionError):
            db.begin(session="a")
        db.begin(session="b")  # other sessions are unaffected
        db.rollback(session="a")
        db.rollback(session="b")

    def test_default_session_is_separate(self, db):
        db.begin()
        db.begin(session="a")
        db.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        db.rollback()
        assert db.session_in_transaction("a")
        db.rollback(session="a")
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 100


class TestWireSessions:
    def test_open_begin_commit(self, db):
        __, sessions, (conn, __other) = make_stack(db)
        conn.open_session()
        txn_id = conn.begin()
        assert txn_id > 0
        conn.execute("UPDATE acct SET balance = 50 WHERE id = 1")
        conn.commit()
        assert sessions.open_count == 1
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 50

    def test_rollback_over_wire(self, db):
        __, __sessions, (conn, __other) = make_stack(db)
        conn.begin()  # implicit open_session
        conn.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        conn.rollback()
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 100

    def test_two_wire_clients_hold_independent_transactions(self, db):
        __, __sessions, (first, second) = make_stack(db)
        first.begin()
        second.begin()
        first.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        second.execute("UPDATE acct SET balance = 2 WHERE id = 2")
        first.rollback()
        second.commit()
        result = db.execute("SELECT id, balance FROM acct ORDER BY id")
        assert result.rows == [(1, 100), (2, 2)]

    def test_txn_without_session_rejected(self, db):
        server, __, __connections = make_stack(db)
        from repro.server import protocol

        response = server.handle(
            protocol.encode_envelope(
                Opcode.TXN_BEGIN, protocol.encode_session_op(12345)
            )
        )
        opcode, body = protocol.decode_envelope(response)
        assert opcode is Opcode.ERROR
        kind, __msg = protocol.decode_error(body)
        assert kind == "SessionError"

    def test_session_ops_without_manager_rejected(self, db):
        from repro.server import protocol

        server = DatabaseServer(db)  # no session manager
        for opcode in SESSION_OPCODES:
            response = server.handle(
                protocol.encode_envelope(
                    opcode, protocol.encode_session_op(1)
                )
            )
            answer, __body = protocol.decode_envelope(response)
            assert answer is Opcode.ERROR

    def test_close_session_rolls_back_open_transaction(self, db):
        __, sessions, (conn, __other) = make_stack(db)
        conn.begin()
        conn.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        conn.close_session()
        assert sessions.open_count == 0
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 100

    def test_transaction_context_manager(self, db):
        __, __sessions, (conn, __other) = make_stack(db)
        with conn.transaction():
            conn.execute("UPDATE acct SET balance = 7 WHERE id = 1")
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 7
        with pytest.raises(ValueError):
            with conn.transaction():
                conn.execute("UPDATE acct SET balance = 8 WHERE id = 1")
                raise ValueError("client-side failure")
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 7

    def test_stats_frame_reports_session_counters(self, db):
        server, __, (conn, __other) = make_stack(db)
        conn.open_session()
        stats = conn.server_stats()
        assert stats["sessions_open"] == 1
        assert "lock_waits" in stats
        assert "deadlocks" in stats
        assert "txn_aborts" in stats

    def test_close_unknown_session_raises(self, db):
        __, sessions, __connections = make_stack(db)
        with pytest.raises(SessionError):
            sessions.close(999)


class TestConflicts:
    def test_writer_blocks_writer_until_commit(self, db):
        __, __sessions, (first, second) = make_stack(db)
        first.begin()
        first.execute("UPDATE acct SET balance = balance + 1 WHERE id = 1")
        second.begin()
        with pytest.raises(LockUnavailable):
            second.execute(
                "UPDATE acct SET balance = balance + 1 WHERE id = 1"
            )
        first.commit()
        # The parked request was granted at commit; the retry succeeds.
        second.execute("UPDATE acct SET balance = balance + 1 WHERE id = 1")
        second.commit()
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 102

    def test_no_lost_updates_with_interleaved_increments(self, db):
        """The classic lost-update interleaving: both clients read-modify-
        write the same row.  Under 2PL the second writer waits for the
        first commit, so both increments survive."""
        __, __sessions, (first, second) = make_stack(db)
        increments = 0
        for __round in range(5):
            first.begin()
            second.begin()
            first.execute(
                "UPDATE acct SET balance = balance + 1 WHERE id = 1"
            )
            with pytest.raises(LockUnavailable):
                second.execute(
                    "UPDATE acct SET balance = balance + 1 WHERE id = 1"
                )
            first.commit()
            second.execute(
                "UPDATE acct SET balance = balance + 1 WHERE id = 1"
            )
            second.commit()
            increments += 2
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 100 + increments

    def test_reader_blocks_writer_table_scan(self, db):
        __, __sessions, (first, second) = make_stack(db)
        first.begin()
        first.execute("SELECT SUM(balance) FROM acct")
        second.begin()
        with pytest.raises(LockUnavailable):
            second.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        first.commit()
        second.rollback()

    def test_deadlock_victim_gets_distinguishable_error(self, db):
        __, __sessions, (first, second) = make_stack(db)
        first.begin()
        second.begin()
        first.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        second.execute("UPDATE acct SET balance = 2 WHERE id = 2")
        with pytest.raises(LockUnavailable):
            first.execute("UPDATE acct SET balance = 1 WHERE id = 2")
        # second closing the cycle is the youngest -> the victim.
        with pytest.raises(DeadlockError):
            second.execute("UPDATE acct SET balance = 2 WHERE id = 1")
        second.rollback()  # acknowledges the abort; no-op success
        # first's parked request was granted by the victim's release.
        first.execute("UPDATE acct SET balance = 1 WHERE id = 2")
        first.commit()

    def test_deadlock_victim_retries_to_success_via_run_transaction(self, db):
        """The acceptance scenario: a constructed deadlock cycle is broken
        and the victim restarts through RetryPolicy to completion."""
        __, __sessions, (first, second) = make_stack(db)
        first.begin()
        first.execute("UPDATE acct SET balance = balance + 1 WHERE id = 1")

        attempts = []

        def transfer(conn):
            attempts.append(1)
            conn.execute("UPDATE acct SET balance = balance + 10 WHERE id = 2")
            if len(attempts) == 1:
                # First attempt: close the deadlock cycle (first waits on
                # id=2 below, we wait on id=1) — we are younger, we die.
                conn.execute(
                    "UPDATE acct SET balance = balance + 10 WHERE id = 1"
                )
            return "done"

        second.begin()
        second.execute("UPDATE acct SET balance = balance + 10 WHERE id = 2")
        with pytest.raises(LockUnavailable):
            first.execute("UPDATE acct SET balance = balance + 1 WHERE id = 2")
        with pytest.raises(DeadlockError):
            second.execute("UPDATE acct SET balance = balance + 10 WHERE id = 1")
        second.rollback()
        # first finishes; now the victim restarts its work via the retry
        # harness and succeeds.
        first.execute("UPDATE acct SET balance = balance + 1 WHERE id = 2")
        first.commit()
        result = second.run_transaction(
            transfer, retry_policy=RetryPolicy(max_attempts=4)
        )
        assert result == "done"
        assert db.execute(
            "SELECT balance FROM acct WHERE id = 2"
        ).scalar() == 200 + 1 + 10

    def test_run_transaction_gives_up_after_max_attempts(self, db):
        __, __sessions, (first, second) = make_stack(db)
        first.begin()
        first.execute("UPDATE acct SET balance = 0 WHERE id = 1")

        def blocked(conn):
            conn.execute("UPDATE acct SET balance = 1 WHERE id = 1")

        with pytest.raises(TimeoutError):
            second.run_transaction(
                blocked, retry_policy=RetryPolicy(max_attempts=2)
            )
        first.rollback()

    def test_autocommit_statement_fails_fast_without_parking(self, db):
        __, __sessions, (first, second) = make_stack(db)
        first.begin()
        first.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        # Autocommit reads fail fast (they have no transaction to park).
        with pytest.raises(LockUnavailable):
            second.execute("SELECT SUM(balance) FROM acct")
        first.commit()
        assert second.execute("SELECT SUM(balance) FROM acct").scalar() == 200

    def test_client_link_stats_track_conflicts(self, db):
        __, __sessions, (first, second) = make_stack(db)
        first.begin()
        first.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        second.begin()
        with pytest.raises(LockUnavailable):
            second.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        assert second.link.stats.lock_waits == 1
        assert second.link.stats.sessions_open == 1
        first.commit()
        second.rollback()
        assert second.link.stats.txn_aborts == 1


class TestReadOnlyWire:
    """BEGIN TRANSACTION READ ONLY end-to-end over the session protocol."""

    @pytest.fixture
    def mvcc_db(self):
        database = Database(mvcc=True)
        database.execute(
            "CREATE TABLE acct (id INTEGER PRIMARY KEY, balance INTEGER)"
        )
        database.execute("INSERT INTO acct VALUES (1, 100), (2, 200)")
        return database

    def test_begin_ro_routes_to_a_snapshot(self, mvcc_db):
        server, __, (reader, writer) = make_stack(mvcc_db)
        txn_id = reader.begin(read_only=True)
        assert txn_id > 0
        # A concurrent committed write is invisible to the snapshot...
        writer.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        assert reader.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 100
        reader.commit()
        # ...and the next RO transaction starts from the newer stamp.
        reader.begin(read_only=True)
        assert reader.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 0
        reader.commit()
        assert server.statistics["readonly_txns"] == 2
        assert reader.link.stats.readonly_txns == 2

    def test_dml_inside_ro_txn_rejected_over_wire(self, mvcc_db):
        __, __sessions, (conn, __other) = make_stack(mvcc_db)
        conn.begin(read_only=True)
        with pytest.raises(ExecutionError, match="READ ONLY"):
            conn.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        conn.rollback()
        # The session survives the rejection: a plain txn still works.
        conn.begin()
        conn.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        conn.commit()
        assert mvcc_db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 1

    def test_stats_frame_exposes_mvcc_counters(self, mvcc_db):
        __, __sessions, (conn, __other) = make_stack(mvcc_db)
        conn.begin(read_only=True)
        conn.execute("SELECT SUM(balance) FROM acct")
        conn.commit()
        stats = conn.server_stats()
        assert stats["readonly_txns"] == 1
        assert stats["db_readonly_txns"] == 1
        assert stats["db_snapshot_reads"] >= 1
        assert "db_versions_created" in stats
        assert "db_versions_gc" in stats

    def test_begin_ro_without_session_rejected(self, db):
        server, __, __connections = make_stack(db)
        from repro.server import protocol

        response = server.handle(
            protocol.encode_envelope(
                Opcode.TXN_BEGIN_RO, protocol.encode_session_op(12345)
            )
        )
        opcode, body = protocol.decode_envelope(response)
        assert opcode is Opcode.ERROR
        kind, __msg = protocol.decode_error(body)
        assert kind == "SessionError"

    def test_truncated_begin_ro_frame_keeps_server_alive(self, db):
        server, __, (conn, __other) = make_stack(db)
        from repro.server import protocol

        response = server.handle(
            protocol.encode_envelope(Opcode.TXN_BEGIN_RO, b"\x01")
        )
        opcode, __body = protocol.decode_envelope(response)
        assert opcode is Opcode.ERROR
        # The server shrugged the garbage off; real traffic still works.
        assert conn.execute("SELECT COUNT(*) FROM acct").scalar() == 2
