"""The paper's worked examples, end to end against the engine.

Section 5.2: the recursive query over the Figure 2 dataset must produce
exactly the Figure 3 result table.  Sections 5.3.1-5.3.3: the three tree
condition examples must behave as the paper describes.
"""

RECURSIVE_CTE = """
WITH RECURSIVE rtbl (type, obid, name, dec) AS
(SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
 UNION
 SELECT assy.type, assy.obid, assy.name, assy.dec
 FROM rtbl JOIN link ON rtbl.obid = link.left
           JOIN assy ON link.right = assy.obid
 UNION
 SELECT comp.type, comp.obid, comp.name, ''
 FROM rtbl JOIN link ON rtbl.obid = link.left
           JOIN comp ON link.right = comp.obid)
"""

OUTER_NODES = """
SELECT type, obid, name, dec AS "DEC",
       CAST(NULL AS INTEGER) AS "LEFT",
       CAST(NULL AS INTEGER) AS "RIGHT",
       CAST(NULL AS INTEGER) AS "EFF_FROM",
       CAST(NULL AS INTEGER) AS "EFF_TO"
FROM rtbl
"""

OUTER_LINKS = """
SELECT type, obid, '' AS "NAME", '' AS "DEC",
       left, right, eff_from, eff_to
FROM link
WHERE (left IN (SELECT obid FROM rtbl)
       AND right IN (SELECT obid FROM rtbl))
"""

#: Figure 3, transcribed ('-' rendered as None / '').
FIGURE3_ROWS = [
    ("assy", 1, "Assy1", "+", None, None, None, None),
    ("assy", 2, "Assy2", "+", None, None, None, None),
    ("assy", 3, "Assy3", "+", None, None, None, None),
    ("assy", 4, "Assy4", "+", None, None, None, None),
    ("assy", 5, "Assy5", "-", None, None, None, None),
    ("comp", 101, "Comp1", "", None, None, None, None),
    ("comp", 102, "Comp2", "", None, None, None, None),
    ("comp", 103, "Comp3", "", None, None, None, None),
    ("comp", 104, "Comp4", "", None, None, None, None),
    ("link", 1001, "", "", 1, 2, 1, 3),
    ("link", 1002, "", "", 1, 3, 4, 10),
    ("link", 1003, "", "", 2, 4, 1, 10),
    ("link", 1004, "", "", 2, 5, 1, 10),
    ("link", 1005, "", "", 4, 101, 6, 10),
    ("link", 1006, "", "", 4, 102, 1, 5),
    ("link", 1007, "", "", 5, 103, 1, 10),
    ("link", 1008, "", "", 5, 104, 1, 10),
]


class TestSection52:
    def test_figure3_reproduced_exactly(self, figure2_db):
        sql = RECURSIVE_CTE + OUTER_NODES + " UNION " + OUTER_LINKS + " ORDER BY 1, 2"
        result = figure2_db.execute(sql)
        assert result.columns == [
            "type", "obid", "name", "DEC", "LEFT", "RIGHT", "EFF_FROM", "EFF_TO",
        ]
        assert result.rows == FIGURE3_ROWS

    def test_unconnected_objects_not_collected(self, figure2_db):
        """Assemblies 6-8 and components 105-107 exist in the tables but
        are not reachable from object 1 (Figure 2 shows them as spares)."""
        sql = RECURSIVE_CTE + "SELECT obid FROM rtbl"
        obids = set(figure2_db.execute(sql).column("obid"))
        assert obids == {1, 2, 3, 4, 5, 101, 102, 103, 104}


class TestSection531ForAllRows:
    def sql(self, condition):
        return (
            RECURSIVE_CTE
            + OUTER_NODES
            + f" WHERE NOT EXISTS (SELECT * FROM rtbl WHERE ({condition}))"
            + " UNION "
            + OUTER_LINKS
            + f" AND NOT EXISTS (SELECT * FROM rtbl WHERE ({condition}))"
            + " ORDER BY 1, 2"
        )

    def test_result_empty_because_assy5_not_decomposable(self, figure2_db):
        """Paper: 'The result of this query is empty because of assembly
        number five.'"""
        result = figure2_db.execute(self.sql("type = 'assy' AND dec <> '+'"))
        assert result.rows == []

    def test_result_full_when_condition_never_violated(self, figure2_db):
        figure2_db.execute("UPDATE assy SET dec = '+' WHERE obid = 5")
        result = figure2_db.execute(self.sql("type = 'assy' AND dec <> '+'"))
        assert len(result) == 17


class TestSection532ExistsStructure:
    def test_unspecified_component_filtered(self, figure2_db):
        """Components visible only if specified by a document: Comp2 (102)
        has no specification and must disappear from the recursion."""
        sql = (
            RECURSIVE_CTE.replace(
                "JOIN comp ON link.right = comp.obid",
                "JOIN comp ON link.right = comp.obid "
                "WHERE EXISTS (SELECT * FROM specified_by AS s JOIN spec "
                "ON s.right = spec.obid WHERE s.left = comp.obid)",
            )
            + "SELECT obid FROM rtbl ORDER BY 1"
        )
        obids = figure2_db.execute(sql).column("obid")
        assert 102 not in obids
        assert {101, 103, 104} <= set(obids)


class TestSection533TreeAggregate:
    def sql(self, condition):
        return (
            RECURSIVE_CTE
            + OUTER_NODES
            + f" WHERE {condition}"
            + " UNION "
            + OUTER_LINKS
            + f" AND {condition}"
            + " ORDER BY 1, 2"
        )

    def test_at_most_ten_assemblies_returns_full_tree(self, figure2_db):
        """Paper: 'the tree contains only five assemblies, so the entire
        tree would be returned.'"""
        condition = "(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10"
        assert len(figure2_db.execute(self.sql(condition))) == 17

    def test_tight_threshold_empties_result(self, figure2_db):
        condition = "(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 4"
        assert len(figure2_db.execute(self.sql(condition))) == 0

    def test_average_aggregate_variant(self, figure2_db):
        # Reachable assemblies are 1,2,3,4,5 -> avg(obid) = 3, passes.
        condition = "(SELECT AVG(obid) FROM rtbl WHERE type = 'assy') <= 12"
        assert len(figure2_db.execute(self.sql(condition))) == 17
        tight = "(SELECT AVG(obid) FROM rtbl WHERE type = 'assy') <= 2"
        assert len(figure2_db.execute(self.sql(tight))) == 0


class TestSection41RowConditions:
    def test_make_or_buy_where_clause(self, figure2_db):
        """Paper example 1 embedded in a query: assemblies not bought."""
        figure2_db.execute(
            "UPDATE assy SET make_or_buy = 'buy' WHERE obid = 3"
        )
        result = figure2_db.execute(
            "SELECT obid FROM assy WHERE make_or_buy <> 'buy' ORDER BY 1"
        )
        assert 3 not in result.column("obid")
        assert 1 in result.column("obid")
