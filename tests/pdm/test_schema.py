"""PDM schema: DDL, loading, stored functions, server/client parity."""

from repro.pdm.generator import generate_product
from repro.pdm.schema import (
    CLIENT_FUNCTIONS,
    HOMOGENISED_COLUMNS,
    LINK_ONLY_COLUMNS,
    NODE_COLUMNS,
    create_pdm_schema,
    load_product,
)
from repro.model.parameters import TreeParameters
from repro.sqldb.database import Database


class TestSchema:
    def test_all_tables_created(self, figure2_db):
        names = set(figure2_db.table_names())
        assert {"assy", "comp", "link", "spec", "specified_by"} <= names

    def test_homogenised_columns_consistent(self):
        assert HOMOGENISED_COLUMNS == NODE_COLUMNS + LINK_ONLY_COLUMNS
        assert "type" in NODE_COLUMNS
        assert "link_opt" in LINK_ONLY_COLUMNS

    def test_indexes_support_navigation(self, figure2_db):
        entry = figure2_db.catalog.lookup("link")
        assert entry.storage.find_index(["left"]) is not None
        assert entry.storage.find_index(["right"]) is not None

    def test_load_figure2_rowcounts(self, figure2_db):
        assert figure2_db.table_rowcount("assy") == 8
        assert figure2_db.table_rowcount("comp") == 7
        assert figure2_db.table_rowcount("link") == 8
        assert figure2_db.table_rowcount("spec") == 3
        assert figure2_db.table_rowcount("specified_by") == 3

    def test_load_generated_product(self):
        db = Database()
        create_pdm_schema(db)
        product = generate_product(
            TreeParameters(depth=2, branching=3, visibility=0.6), seed=3
        )
        load_product(db, product)
        total = db.table_rowcount("assy") + db.table_rowcount("comp")
        assert total == product.node_count

    def test_navigational_child_query_works(self, figure2_db):
        result = figure2_db.execute(
            "SELECT link.right FROM link JOIN assy ON link.right = assy.obid "
            "WHERE link.left = ? ORDER BY 1",
            [1],
        )
        assert result.column("right") == [2, 3]


class TestStoredFunctions:
    def test_registered_on_server(self, figure2_db):
        for name in CLIENT_FUNCTIONS:
            assert figure2_db.functions.is_registered(name)

    def test_options_overlap_semantics(self):
        overlap = CLIENT_FUNCTIONS["options_overlap"]
        assert overlap(1, 1)
        assert overlap(3, 1)
        assert not overlap(2, 1)
        assert not overlap(0, 7)

    def test_intervals_overlap_semantics(self):
        overlap = CLIENT_FUNCTIONS["intervals_overlap"]
        assert overlap(1, 5, 5, 9)  # touching counts
        assert overlap(1, 10, 4, 6)  # containment
        assert not overlap(1, 3, 4, 10)

    def test_is_effective_semantics(self):
        effective = CLIENT_FUNCTIONS["is_effective"]
        assert effective(1, 10, 1)
        assert effective(1, 10, 10)
        assert not effective(1, 10, 11)

    def test_sql_and_python_agree(self, figure2_db):
        """Server-side (SQL) and client-side (Python) evaluations of the
        stored functions must agree — the correctness backbone of the
        early-vs-late equivalence."""
        cases = [(1, 1), (2, 1), (3, 2), (0, 0), (7, 8)]
        for a, b in cases:
            sql_value = figure2_db.execute(
                "SELECT options_overlap(?, ?)", [a, b]
            ).scalar()
            assert sql_value == CLIENT_FUNCTIONS["options_overlap"](a, b)
        for bounds in [(1, 5, 2, 3), (1, 2, 3, 4), (5, 9, 1, 5)]:
            sql_value = figure2_db.execute(
                "SELECT intervals_overlap(?, ?, ?, ?)", list(bounds)
            ).scalar()
            assert sql_value == CLIENT_FUNCTIONS["intervals_overlap"](*bounds)

    def test_effectivity_query_on_figure2(self, figure2_db):
        """Paper example 3 semantics: links effective for unit 4."""
        result = figure2_db.execute(
            "SELECT obid FROM link WHERE is_effective(eff_from, eff_to, ?) "
            "ORDER BY 1",
            [4],
        )
        # Link 1001 (eff 1-3) and 1005 (eff 6-10) are not effective at 4,
        # 1006 (1-5) is.
        obids = result.column("obid")
        assert 1001 not in obids
        assert 1005 not in obids
        assert 1006 in obids
