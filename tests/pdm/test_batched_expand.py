"""EXPAND_BATCHED: level-at-a-time expansion over the batch protocol."""

import pytest

from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import WAN_1024
from repro.pdm.operations import BATCH_KEY_BUCKETS, ExpandStrategy, PDMClient
from repro.pdm.structure import trees_equal


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        TreeParameters(depth=5, branching=4, visibility=0.5),
        WAN_1024,
        seed=7,
    )


def expand(scenario, strategy, **kwargs):
    root = scenario.product.root_obid
    root_attrs = scenario.product.root_attributes()
    return scenario.client.multi_level_expand(
        root, strategy, root_attrs=root_attrs, **kwargs
    )


class TestRoundTrips:
    def test_one_round_trip_per_level(self, scenario):
        result = expand(scenario, ExpandStrategy.EXPAND_BATCHED)
        assert result.round_trips == scenario.tree.depth

    def test_depth_bound_caps_the_round_trips(self, scenario):
        result = expand(
            scenario, ExpandStrategy.EXPAND_BATCHED, max_depth=2
        )
        assert result.round_trips == 2

    def test_depth_zero_is_free(self, scenario):
        result = expand(
            scenario, ExpandStrategy.EXPAND_BATCHED, max_depth=0
        )
        assert result.round_trips == 0
        assert result.tree.node_count() == 1


class TestEquivalence:
    def test_matches_every_other_strategy(self, scenario):
        batched = expand(scenario, ExpandStrategy.EXPAND_BATCHED)
        for other in (
            ExpandStrategy.NAVIGATIONAL_LATE,
            ExpandStrategy.NAVIGATIONAL_EARLY,
            ExpandStrategy.RECURSIVE_EARLY,
        ):
            assert trees_equal(batched.tree, expand(scenario, other).tree)

    def test_component_root_needs_no_query(self, scenario):
        comp = scenario.product.components[0]
        attrs = {"type": "comp", "obid": comp.obid, "name": comp.name}
        result = scenario.client.multi_level_expand(
            comp.obid, ExpandStrategy.EXPAND_BATCHED, root_attrs=attrs
        )
        assert result.round_trips == 0
        assert result.tree.node_count() == 1


class TestPlanCache:
    def test_padded_shapes_hit_the_plan_cache(self, scenario):
        before = scenario.database.statistics["plan_cache_hits"]
        expand(scenario, ExpandStrategy.EXPAND_BATCHED)
        after = scenario.database.statistics["plan_cache_hits"]
        assert after - before > 0

    def test_stats_round_trip_reports_the_hits(self, scenario):
        expand(scenario, ExpandStrategy.EXPAND_BATCHED)
        stats = scenario.connection.server_stats()
        assert stats["db_plan_cache_hits"] > 0
        assert stats["batches"] >= scenario.tree.depth


class TestChunkPadding:
    def test_chunks_padded_to_bucket_sizes(self):
        chunks = PDMClient._padded_chunks(list(range(7)))
        assert len(chunks) == 1
        assert len(chunks[0]) in BATCH_KEY_BUCKETS
        assert set(chunks[0]) == set(range(7))

    def test_wide_frontiers_split_into_bucket_chunks(self):
        chunks = PDMClient._padded_chunks(list(range(600)))
        assert [len(chunk) for chunk in chunks] == [256, 256, 256]
        recovered = {key for chunk in chunks for key in chunk}
        assert recovered == set(range(600))

    def test_exact_bucket_needs_no_padding(self):
        (chunk,) = PDMClient._padded_chunks(list(range(16)))
        assert chunk == list(range(16))
