"""The Section 5.5 remark: where ∃structure probes are placed matters.

INSIDE the recursion (the paper's 5.3.2 translation) an object failing the
probe never enters the working table, so its whole subtree is pruned.
OUTSIDE (the remark's rewrite against the homogenised result with a type
discriminator) the recursion collects everything and only the failing
objects themselves are filtered — their descendants survive.

Both placements are implemented; this test pins down the semantic
difference on a product where an *assembly* carries the ∃structure
condition and has children.
"""

import pytest

from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import WAN_512
from repro.pdm.generator import generate_product
from repro.pdm.objects import Specification, SpecifiedBy
from repro.pdm.operations import ExpandStrategy, PDMClient
from repro.rules.conditions import ExistsStructure
from repro.rules.model import Actions, Rule
from repro.rules.modificator import ExistsPlacement
from repro.rules.ruletable import RuleTable


@pytest.fixture
def scenario():
    """Depth-3 binary tree; every node EXCEPT one depth-1 assembly gets a
    specification document."""
    tree = TreeParameters(depth=3, branching=2, visibility=1.0)
    product = generate_product(tree, seed=5)
    unspecified = product.children[product.root_obid][0][1]
    spec_id = 9_000_000
    for obid in sorted(
        {a.obid for a in product.assemblies}
        | {c.obid for c in product.components}
    ):
        if obid == unspecified:
            continue
        product.specifications.append(
            Specification(obid=spec_id, name=f"Spec{spec_id}")
        )
        product.specified_by.append(
            SpecifiedBy(obid=spec_id + 1, left=obid, right=spec_id)
        )
        spec_id += 2
    built = build_scenario(
        tree, WAN_512, product=product, rule_table=RuleTable()
    )
    return built, unspecified


def exists_rule():
    return Rule(
        user="*",
        action=Actions.MULTI_LEVEL_EXPAND,
        object_type="assy",
        condition=ExistsStructure("assy", "specified_by", "spec"),
    )


def expand(scenario, placement):
    built, __ = scenario
    table = RuleTable([exists_rule()])
    client = PDMClient(
        built.connection,
        rule_table=table,
        exists_placement=placement,
    )
    result = client.multi_level_expand(
        built.product.root_obid,
        ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=built.product.root_attributes(),
    )
    return result.tree


class TestPlacementSemantics:
    def test_inside_prunes_whole_subtree(self, scenario):
        built, unspecified = scenario
        tree = expand(scenario, ExistsPlacement.INSIDE)
        obids = tree.obids()
        assert unspecified not in obids
        # Every descendant of the unspecified assembly is gone too.
        for link, child in built.product.children[unspecified]:
            assert child not in obids

    def test_outside_filters_only_the_object_itself(self, scenario):
        built, unspecified = scenario
        tree = expand(scenario, ExistsPlacement.OUTSIDE)
        # The unspecified assembly's node row is filtered from the result,
        # so it cannot be attached — and because the structure is a tree,
        # its children become unreachable during reassembly even though
        # their rows were shipped.  The observable difference is the data
        # volume, checked below.
        assert unspecified not in tree.obids()

    def test_outside_ships_more_data(self, scenario):
        """INSIDE placement saves the WAN traffic of the pruned subtree;
        OUTSIDE collects the full tree before filtering."""
        built, __ = scenario
        table = RuleTable([exists_rule()])
        root_attrs = built.product.root_attributes()
        inside_client = PDMClient(
            built.connection,
            rule_table=table,
            exists_placement=ExistsPlacement.INSIDE,
        )
        outside_client = PDMClient(
            built.connection,
            rule_table=table,
            exists_placement=ExistsPlacement.OUTSIDE,
        )
        inside = inside_client.multi_level_expand(
            built.product.root_obid,
            ExpandStrategy.RECURSIVE_EARLY,
            root_attrs=root_attrs,
        )
        outside = outside_client.multi_level_expand(
            built.product.root_obid,
            ExpandStrategy.RECURSIVE_EARLY,
            root_attrs=root_attrs,
        )
        assert outside.traffic.payload_bytes > inside.traffic.payload_bytes

    def test_late_evaluation_pays_extra_round_trips(self, scenario):
        """The WAN argument for early ∃structure evaluation: the late
        client must probe the specified_by relation once per candidate
        object — each probe is a full round trip — while the recursive
        query folds all probes into its single statement."""
        built, __ = scenario
        table = RuleTable([exists_rule()])
        client = PDMClient(built.connection, rule_table=table)
        root_attrs = built.product.root_attributes()
        late = client.multi_level_expand(
            built.product.root_obid,
            ExpandStrategy.NAVIGATIONAL_LATE,
            root_attrs=root_attrs,
        )
        recursive = client.multi_level_expand(
            built.product.root_obid,
            ExpandStrategy.RECURSIVE_EARLY,
            root_attrs=root_attrs,
        )
        assert recursive.round_trips == 1
        # Navigational fetches plus one ∃structure probe per surviving
        # assembly (7 assemblies in the depth-3 binary tree, minus the
        # pruned one, plus the root).
        expansion_round_trips = 1 + built.product.visible_node_count
        assert late.round_trips > expansion_round_trips

    def test_late_reference_semantics_match_inside(self, scenario):
        """The client-side (late) evaluator prunes subtrees — i.e. the
        paper's 5.3.2 INSIDE placement is the reference semantics."""
        from repro.pdm.structure import trees_equal

        built, __ = scenario
        table = RuleTable([exists_rule()])
        client = PDMClient(built.connection, rule_table=table)
        late = client.multi_level_expand(
            built.product.root_obid,
            ExpandStrategy.NAVIGATIONAL_LATE,
            root_attrs=built.product.root_attributes(),
        ).tree
        inside = expand(scenario, ExistsPlacement.INSIDE)
        assert trees_equal(late, inside)
