"""Tree reassembly from homogenised flat rows."""

import pytest

from repro.errors import PDMError
from repro.pdm.structure import build_tree, trees_equal

COLUMNS = ["type", "obid", "name", "left", "right"]


def node_row(obid, kind="assy", name=None):
    return (kind, obid, name or f"N{obid}", None, None)


def link_row(obid, left, right):
    return ("link", obid, "", left, right)


@pytest.fixture
def rows():
    # 1 -> 2 -> 4, 1 -> 3 (3 and 4 are comps)
    return [
        node_row(1),
        node_row(2),
        node_row(3, kind="comp"),
        node_row(4, kind="comp"),
        link_row(100, 1, 2),
        link_row(101, 1, 3),
        link_row(102, 2, 4),
    ]


class TestBuildTree:
    def test_structure(self, rows):
        tree = build_tree(COLUMNS, rows, 1)
        assert tree.obid == 1
        assert sorted(child.obid for child in tree.children) == [2, 3]
        node2 = tree.find(2)
        assert [child.obid for child in node2.children] == [4]

    def test_link_attrs_attached(self, rows):
        tree = build_tree(COLUMNS, rows, 1)
        node2 = tree.find(2)
        assert node2.link["obid"] == 100
        assert tree.link is None

    def test_node_count_and_obids(self, rows):
        tree = build_tree(COLUMNS, rows, 1)
        assert tree.node_count() == 4
        assert tree.obids() == {1, 2, 3, 4}

    def test_obids_by_type(self, rows):
        tree = build_tree(COLUMNS, rows, 1)
        grouped = tree.obids_by_type()
        assert sorted(grouped["assy"]) == [1, 2]
        assert sorted(grouped["comp"]) == [3, 4]

    def test_depth(self, rows):
        assert build_tree(COLUMNS, rows, 1).depth() == 2

    def test_empty_result_returns_none(self):
        assert build_tree(COLUMNS, [], 1) is None

    def test_missing_root_without_attrs_returns_none(self, rows):
        assert build_tree(COLUMNS, rows[1:], 1) is None

    def test_missing_root_with_client_attrs(self, rows):
        tree = build_tree(
            COLUMNS, rows[1:], 1, root_attrs={"type": "assy", "obid": 1}
        )
        assert tree is not None
        assert sorted(child.obid for child in tree.children) == [2, 3]

    def test_dangling_link_ignored(self, rows):
        rows = rows + [link_row(103, 2, 999)]  # child row filtered out
        tree = build_tree(COLUMNS, rows, 1)
        assert tree.node_count() == 4

    def test_unreachable_node_not_attached(self, rows):
        rows = rows + [node_row(50)]
        tree = build_tree(COLUMNS, rows, 1)
        assert 50 not in tree.obids()

    def test_diamond_rejected(self, rows):
        rows = rows + [link_row(103, 3, 4)]  # 4 reachable via 2 and 3
        with pytest.raises(PDMError):
            build_tree(COLUMNS, rows, 1)

    def test_find_missing_returns_none(self, rows):
        assert build_tree(COLUMNS, rows, 1).find(999) is None


class TestPrune:
    def test_prune_drops_subtrees(self, rows):
        tree = build_tree(COLUMNS, rows, 1)
        tree.prune(lambda node: node.obid != 2)
        assert tree.obids() == {1, 3}

    def test_prune_keep_all(self, rows):
        tree = build_tree(COLUMNS, rows, 1)
        tree.prune(lambda node: True)
        assert tree.node_count() == 4


class TestTreesEqual:
    def test_equal_trees(self, rows):
        first = build_tree(COLUMNS, rows, 1)
        second = build_tree(COLUMNS, list(reversed(rows)), 1)
        assert trees_equal(first, second)

    def test_different_shape_detected(self, rows):
        first = build_tree(COLUMNS, rows, 1)
        second = build_tree(COLUMNS, rows[:-1], 1)  # missing link to 4
        assert not trees_equal(first, second)

    def test_none_handling(self, rows):
        tree = build_tree(COLUMNS, rows, 1)
        assert trees_equal(None, None)
        assert not trees_equal(tree, None)
        assert not trees_equal(None, tree)

    def test_iter_nodes_preorder(self, rows):
        tree = build_tree(COLUMNS, rows, 1)
        order = [node.obid for node in tree.iter_nodes()]
        assert order[0] == 1
        assert set(order) == {1, 2, 3, 4}
