"""PDMClient actions: strategies, round-trip counts, rule filtering."""

import pytest

from repro.errors import UnknownObjectError
from repro.pdm.operations import ExpandStrategy
from repro.pdm.structure import trees_equal
from repro.rules.conditions import Attribute, Comparison, Const
from repro.rules.model import Actions, Rule


class TestQueryAction:
    def test_late_and_early_agree_on_visible_set(self, small_scenario):
        scenario = small_scenario
        late = scenario.client.query(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_LATE
        )
        early = scenario.client.query(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        late_ids = {attrs["obid"] for attrs in late.objects}
        early_ids = {attrs["obid"] for attrs in early.objects}
        assert late_ids == early_ids == scenario.product.visible_obids

    def test_single_round_trip_each(self, small_scenario):
        scenario = small_scenario
        for strategy in (
            ExpandStrategy.NAVIGATIONAL_LATE,
            ExpandStrategy.NAVIGATIONAL_EARLY,
        ):
            result = scenario.client.query(scenario.product.root_obid, strategy)
            assert result.round_trips == 1

    def test_early_transfers_fewer_bytes(self, small_scenario):
        scenario = small_scenario
        late = scenario.client.query(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_LATE
        )
        early = scenario.client.query(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        assert early.traffic.payload_bytes < late.traffic.payload_bytes
        assert early.seconds < late.seconds


class TestSingleLevelExpand:
    def test_returns_visible_children(self, small_scenario):
        scenario = small_scenario
        result = scenario.client.single_level_expand(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        expected = {
            child
            for __, child in scenario.product.children[scenario.product.root_obid]
            if child in scenario.product.visible_obids
        }
        assert {attrs["obid"] for attrs in result.objects} == expected

    def test_late_equals_early(self, small_scenario):
        scenario = small_scenario
        late = scenario.client.single_level_expand(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_LATE
        )
        early = scenario.client.single_level_expand(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        assert {a["obid"] for a in late.objects} == {
            a["obid"] for a in early.objects
        }

    def test_expand_of_leaf_returns_nothing(self, small_scenario):
        scenario = small_scenario
        leaf = scenario.product.components[0].obid
        result = scenario.client.single_level_expand(
            leaf, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        assert result.objects == []
        assert result.round_trips == 1


class TestMultiLevelExpand:
    def test_all_three_strategies_agree(self, small_scenario):
        scenario = small_scenario
        root = scenario.product.root_obid
        root_attrs = scenario.product.root_attributes()
        trees = {
            strategy: scenario.client.multi_level_expand(
                root, strategy, root_attrs=root_attrs
            ).tree
            for strategy in ExpandStrategy
        }
        late = trees[ExpandStrategy.NAVIGATIONAL_LATE]
        assert trees_equal(late, trees[ExpandStrategy.NAVIGATIONAL_EARLY])
        assert trees_equal(late, trees[ExpandStrategy.RECURSIVE_EARLY])

    def test_tree_matches_generator_ground_truth(self, small_scenario):
        scenario = small_scenario
        result = scenario.client.multi_level_expand(
            scenario.product.root_obid,
            ExpandStrategy.RECURSIVE_EARLY,
            root_attrs=scenario.product.root_attributes(),
        )
        assert result.tree.obids() == scenario.product.visible_obids

    def test_navigational_round_trips_match_model(self, small_scenario):
        """1 (root) + one per visible node, leaves probed too."""
        scenario = small_scenario
        result = scenario.client.multi_level_expand(
            scenario.product.root_obid,
            ExpandStrategy.NAVIGATIONAL_EARLY,
            root_attrs=scenario.product.root_attributes(),
        )
        assert result.round_trips == 1 + scenario.product.visible_node_count

    def test_recursive_is_exactly_one_round_trip(self, small_scenario):
        scenario = small_scenario
        result = scenario.client.multi_level_expand(
            scenario.product.root_obid,
            ExpandStrategy.RECURSIVE_EARLY,
            root_attrs=scenario.product.root_attributes(),
        )
        assert result.round_trips == 1

    def test_recursive_much_faster_on_wan(self, small_scenario):
        scenario = small_scenario
        root_attrs = scenario.product.root_attributes()
        navigational = scenario.client.multi_level_expand(
            scenario.product.root_obid,
            ExpandStrategy.NAVIGATIONAL_LATE,
            root_attrs=root_attrs,
        )
        recursive = scenario.client.multi_level_expand(
            scenario.product.root_obid,
            ExpandStrategy.RECURSIVE_EARLY,
            root_attrs=root_attrs,
        )
        assert recursive.seconds < navigational.seconds / 5

    def test_fully_visible_tree_complete(self, tiny_scenario):
        scenario = tiny_scenario
        result = scenario.client.multi_level_expand(
            scenario.product.root_obid,
            ExpandStrategy.RECURSIVE_EARLY,
            root_attrs=scenario.product.root_attributes(),
        )
        assert result.tree.node_count() == scenario.product.node_count
        assert result.tree.depth() == scenario.tree.depth


class TestFetchObject:
    def test_fetch_assembly(self, small_scenario):
        scenario = small_scenario
        attrs = scenario.client.fetch_object(scenario.product.root_obid)
        assert attrs["type"] == "assy"

    def test_fetch_component_gets_empty_dec(self, small_scenario):
        scenario = small_scenario
        leaf = scenario.product.components[0].obid
        attrs = scenario.client.fetch_object(leaf)
        assert attrs["type"] == "comp"
        assert attrs["dec"] == ""

    def test_fetch_missing_raises(self, small_scenario):
        with pytest.raises(UnknownObjectError):
            small_scenario.client.fetch_object(99_999_999)


class TestActionResult:
    def test_measurement_fields(self, small_scenario):
        scenario = small_scenario
        result = scenario.client.query(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        assert result.seconds > 0
        assert result.traffic.messages == 2
        assert result.node_count == len(result.objects)

    def test_measurements_are_deltas(self, small_scenario):
        scenario = small_scenario
        first = scenario.client.query(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        second = scenario.client.query(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        assert second.seconds == pytest.approx(first.seconds)
        assert second.traffic.messages == first.traffic.messages


class TestActionSpecificRules:
    def test_mle_rule_does_not_affect_query_action(self, small_scenario):
        scenario = small_scenario
        scenario.rule_table.add(
            Rule(
                user="scott",
                action=Actions.MULTI_LEVEL_EXPAND,
                object_type="assy",
                condition=Comparison("=", Attribute("obid"), Const(-1)),
            )
        )
        fresh = scenario.fresh_client()
        result = fresh.query(
            scenario.product.root_obid, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        # Unaffected: the rule is bound to the MLE action.
        assert len(result.objects) == len(scenario.product.visible_obids)
