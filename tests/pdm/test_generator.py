"""Product generators: tree shape, visibility ground truth, determinism."""

import pytest

from repro.errors import PDMError
from repro.model.parameters import TreeParameters
from repro.model.trees import full_node_count
from repro.pdm.generator import (
    figure2_dataset,
    generate_product,
    payload_length_for,
)
from repro.pdm.objects import OPTION_ALTERNATE, OPTION_STANDARD


class TestKaryTree:
    def test_node_counts_match_formula(self):
        tree = TreeParameters(depth=3, branching=4, visibility=1.0)
        product = generate_product(tree, seed=1)
        assert product.node_count == full_node_count(tree) + 1  # + root
        assert len(product.components) == 4**3
        assert len(product.assemblies) == 1 + 4 + 16

    def test_links_connect_every_non_root_node(self):
        tree = TreeParameters(depth=2, branching=3, visibility=1.0)
        product = generate_product(tree, seed=1)
        assert len(product.links) == product.node_count - 1
        child_ids = {link.right for link in product.links}
        all_ids = {a.obid for a in product.assemblies} | {
            c.obid for c in product.components
        }
        assert child_ids == all_ids - {product.root_obid}

    def test_leaves_are_components_inner_are_assemblies(self):
        tree = TreeParameters(depth=2, branching=2, visibility=1.0)
        product = generate_product(tree, seed=3)
        parents = {link.left for link in product.links}
        for component in product.components:
            assert component.obid not in parents

    def test_full_visibility_when_sigma_one(self):
        tree = TreeParameters(depth=3, branching=2, visibility=1.0)
        product = generate_product(tree, seed=5)
        assert product.visible_node_count == full_node_count(tree)
        assert len(product.visible_links) == len(product.links)

    def test_zero_visibility_hides_everything_but_root(self):
        tree = TreeParameters(depth=2, branching=2, visibility=0.0)
        product = generate_product(tree, seed=5)
        assert product.visible_obids == {product.root_obid}

    def test_visibility_is_path_consistent(self):
        """A node is visible iff its parent is visible AND its incoming
        link is visible (the ground truth must respect root paths)."""
        tree = TreeParameters(depth=4, branching=3, visibility=0.5)
        product = generate_product(tree, seed=11)
        parent_of = {link.right: (link.left, link.obid) for link in product.links}
        for node in list(product.visible_obids):
            if node == product.root_obid:
                continue
            parent, link_id = parent_of[node]
            assert parent in product.visible_obids
            assert link_id in product.visible_links

    def test_option_masks_encode_visibility(self):
        tree = TreeParameters(depth=3, branching=3, visibility=0.5)
        product = generate_product(tree, seed=13)
        for assembly in product.assemblies:
            expected = (
                OPTION_STANDARD
                if assembly.obid in product.visible_obids
                else OPTION_ALTERNATE
            )
            assert assembly.strc_opt == expected
        for link in product.links:
            expected = (
                OPTION_STANDARD
                if link.obid in product.visible_links
                else OPTION_ALTERNATE
            )
            assert link.strc_opt == expected

    def test_deterministic_for_seed(self):
        tree = TreeParameters(depth=3, branching=3, visibility=0.6)
        first = generate_product(tree, seed=9)
        second = generate_product(tree, seed=9)
        assert first.visible_obids == second.visible_obids
        assert [l.to_row() for l in first.links] == [
            l.to_row() for l in second.links
        ]

    def test_different_seed_differs(self):
        tree = TreeParameters(depth=4, branching=3, visibility=0.6)
        first = generate_product(tree, seed=1)
        second = generate_product(tree, seed=2)
        assert first.visible_obids != second.visible_obids

    def test_visible_fraction_approximates_sigma(self):
        tree = TreeParameters(depth=1, branching=2000, visibility=0.6)
        product = generate_product(tree, seed=3)
        fraction = product.visible_node_count / 2000
        assert abs(fraction - 0.6) < 0.05

    def test_specifications_attached_with_probability(self):
        tree = TreeParameters(depth=2, branching=4, visibility=1.0)
        product = generate_product(tree, seed=3, spec_probability=1.0)
        assert len(product.specifications) == product.node_count - 1
        none = generate_product(tree, seed=3, spec_probability=0.0)
        assert none.specifications == []

    def test_overlapping_user_options_rejected(self):
        tree = TreeParameters(depth=1, branching=1)
        with pytest.raises(PDMError):
            generate_product(tree, user_options=OPTION_ALTERNATE)

    def test_children_map_matches_links(self):
        tree = TreeParameters(depth=2, branching=2, visibility=1.0)
        product = generate_product(tree, seed=3)
        total_children = sum(len(v) for v in product.children.values())
        assert total_children == len(product.links)

    def test_root_attributes(self):
        tree = TreeParameters(depth=1, branching=2)
        product = generate_product(tree, seed=1)
        attrs = product.root_attributes()
        assert attrs["obid"] == product.root_obid
        assert attrs["type"] == "assy"
        assert attrs["strc_opt"] == OPTION_STANDARD


class TestPayloadPadding:
    def test_padding_positive_for_default_target(self):
        assert payload_length_for(512) > 0

    def test_tiny_target_clamps_to_zero(self):
        assert payload_length_for(10) == 0

    def test_node_bytes_controls_row_size(self):
        tree = TreeParameters(depth=1, branching=1)
        small = generate_product(tree, seed=1, node_bytes=256)
        large = generate_product(tree, seed=1, node_bytes=1024)
        assert len(large.assemblies[0].payload) > len(small.assemblies[0].payload)


class TestFigure2:
    def test_figure2_shape(self):
        product = figure2_dataset()
        assert len(product.assemblies) == 8
        assert len(product.components) == 7
        assert len(product.links) == 8

    def test_figure2_effectivities_match_paper(self):
        product = figure2_dataset()
        by_id = {link.obid: link for link in product.links}
        assert (by_id[1001].eff_from, by_id[1001].eff_to) == (1, 3)
        assert (by_id[1005].eff_from, by_id[1005].eff_to) == (6, 10)

    def test_figure2_decomposable_flags(self):
        product = figure2_dataset()
        decs = {a.obid: a.decomposable for a in product.assemblies}
        assert decs[1] and decs[4]
        assert not decs[5] and not decs[8]

    def test_figure2_specifications_cover_101_103_104(self):
        product = figure2_dataset()
        specified = {rel.left for rel in product.specified_by}
        assert specified == {101, 103, 104}

    def test_figure2_without_specifications(self):
        product = figure2_dataset(with_specifications=False)
        assert product.specified_by == []
