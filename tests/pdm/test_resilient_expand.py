"""Resilient multi-level expand: checkpoints, resume, graceful fallback."""

import pytest

from repro.bench.workload import build_scenario
from repro.errors import ExpandInterrupted
from repro.model.parameters import TreeParameters
from repro.network.faults import DROP_5, FaultProfile, RetryPolicy
from repro.network.profiles import WAN_512
from repro.pdm.operations import ExpandStrategy

TREE = TreeParameters(depth=4, branching=3, visibility=0.6)

ALL_STRATEGIES = (
    ExpandStrategy.NAVIGATIONAL_LATE,
    ExpandStrategy.NAVIGATIONAL_EARLY,
    ExpandStrategy.RECURSIVE_EARLY,
    ExpandStrategy.EXPAND_BATCHED,
)

#: Truncates the recursive strategy's jumbo response at this tree scale
#: while every per-level batch squeezes through (largest batch ~6.5 KiB,
#: recursive response ~15 KiB).
MIDDLEBOX_8K = FaultProfile(name="middlebox-8k", truncate_over_bytes=8192)


@pytest.fixture(scope="module")
def baseline():
    """One zero-fault scenario plus the reference tree per strategy."""
    scenario = build_scenario(TREE, WAN_512, seed=42)
    root = scenario.product.root_obid
    root_attrs = scenario.product.root_attributes()
    trees = {
        strategy: scenario.client.multi_level_expand(
            root, strategy, root_attrs=root_attrs
        ).tree.canonical_bytes()
        for strategy in ALL_STRATEGIES
    }
    return scenario, trees


def faulty_scenario(baseline, profile, fault_seed, **policy_kwargs):
    scenario, __ = baseline
    policy_kwargs.setdefault("seed", fault_seed)
    return build_scenario(
        TREE,
        WAN_512,
        seed=42,
        product=scenario.product,
        fault_profile=profile,
        fault_seed=fault_seed,
        retry_policy=RetryPolicy(**policy_kwargs),
    )


def expand_args(scenario):
    return scenario.product.root_obid, scenario.product.root_attributes()


class TestConvergenceUnderLoss:
    @pytest.mark.parametrize(
        "strategy", ALL_STRATEGIES, ids=lambda s: s.name.lower()
    )
    def test_drop5_tree_byte_identical_to_own_zero_fault_run(
        self, baseline, strategy
    ):
        """5% loss with retries must be invisible in the result: the
        visible tree is byte-for-byte the zero-fault tree of the same
        strategy, only the counters show the WAN misbehaved."""
        __, reference = baseline
        injected = 0
        # Seeds chosen so even the 2-message recursive exchange sees at
        # least one drop across the set (6 drops a response, 31 a request).
        for fault_seed in (6, 9, 31):
            scenario = faulty_scenario(baseline, DROP_5, fault_seed)
            root, root_attrs = expand_args(scenario)
            result = scenario.client.resilient_multi_level_expand(
                root, strategy, root_attrs=root_attrs
            )
            assert result.tree.canonical_bytes() == reference[strategy]
            injected += scenario.link.stats.drops
            assert scenario.link.stats.retries >= scenario.link.stats.drops
        assert injected > 0  # at least one seed actually dropped something

    def test_retry_counters_surface_in_traffic_stats(self, baseline):
        scenario = faulty_scenario(baseline, DROP_5, fault_seed=6)
        root, root_attrs = expand_args(scenario)
        result = scenario.client.resilient_multi_level_expand(
            root, ExpandStrategy.EXPAND_BATCHED, root_attrs=root_attrs
        )
        assert scenario.link.stats.drops > 0
        stats = result.traffic
        assert stats.timeouts > 0
        assert stats.retries > 0
        assert stats.backoff_seconds > 0
        assert stats.total_seconds > 0


class TestCheckpointResume:
    def outage_scenario(self, baseline):
        profile = FaultProfile(name="hard-outage", outages=((1.2, 120.0),))
        return faulty_scenario(
            baseline, profile, fault_seed=5, max_attempts=2, timeout_s=1.0
        )

    def test_interrupted_expand_carries_a_checkpoint(self, baseline):
        scenario = self.outage_scenario(baseline)
        root, root_attrs = expand_args(scenario)
        with pytest.raises(ExpandInterrupted) as exc_info:
            scenario.client.multi_level_expand(
                root, ExpandStrategy.EXPAND_BATCHED, root_attrs=root_attrs
            )
        checkpoint = exc_info.value.checkpoint
        assert checkpoint is not None
        assert checkpoint.levels_completed > 0
        assert checkpoint.root.obid == root
        assert scenario.client.statistics["expand_interruptions"] == 1

    def test_resume_refetches_only_the_lost_level(self, baseline):
        """Levels completed before the outage must not travel again: the
        resumed expand issues exactly the remaining per-level batches."""
        __, reference = baseline
        scenario = self.outage_scenario(baseline)
        root, root_attrs = expand_args(scenario)
        with pytest.raises(ExpandInterrupted) as exc_info:
            scenario.client.multi_level_expand(
                root, ExpandStrategy.EXPAND_BATCHED, root_attrs=root_attrs
            )
        checkpoint = exc_info.value.checkpoint
        batches_before = scenario.server.statistics["batches"]
        scenario.link.clock.advance(130.0)  # outage over
        result = scenario.client.resume_multi_level_expand(checkpoint)
        resumed_batches = (
            scenario.server.statistics["batches"] - batches_before
        )
        assert resumed_batches == TREE.depth - checkpoint.levels_completed
        assert result.tree.canonical_bytes() == reference[
            ExpandStrategy.EXPAND_BATCHED
        ]
        assert scenario.client.statistics["expand_resumes"] == 1

    def test_resilient_expand_rides_out_the_outage_by_itself(self, baseline):
        """With a breaker, resilient_multi_level_expand waits out the
        cool-downs on the simulated clock and converges unaided."""
        __, reference = baseline
        scenario = self.outage_scenario(baseline)
        root, root_attrs = expand_args(scenario)
        result = scenario.client.resilient_multi_level_expand(
            root, ExpandStrategy.EXPAND_BATCHED, root_attrs=root_attrs
        )
        assert result.tree.canonical_bytes() == reference[
            ExpandStrategy.EXPAND_BATCHED
        ]
        assert scenario.client.statistics["expand_resumes"] > 0
        assert scenario.link.clock.now > 120.0  # it did live through it


class TestRecursiveFallback:
    def test_truncating_middlebox_forces_batched_fallback(self, baseline):
        """The recursive mega-response can never arrive intact, so the
        client degrades to the per-level batches — same visible tree (in
        the batched strategy's shape), smaller unit of loss."""
        __, reference = baseline
        scenario = faulty_scenario(
            baseline, MIDDLEBOX_8K, fault_seed=3, max_attempts=3
        )
        root, root_attrs = expand_args(scenario)
        result = scenario.client.resilient_multi_level_expand(
            root, ExpandStrategy.RECURSIVE_EARLY, root_attrs=root_attrs
        )
        assert scenario.client.statistics["recursive_fallbacks"] == 1
        assert result.tree.canonical_bytes() == reference[
            ExpandStrategy.EXPAND_BATCHED
        ]

    def test_healthy_link_never_falls_back(self, baseline):
        __, reference = baseline
        scenario = faulty_scenario(
            baseline, FaultProfile(name="clean"), fault_seed=0
        )
        root, root_attrs = expand_args(scenario)
        result = scenario.client.resilient_multi_level_expand(
            root, ExpandStrategy.RECURSIVE_EARLY, root_attrs=root_attrs
        )
        assert scenario.client.statistics["recursive_fallbacks"] == 0
        assert result.tree.canonical_bytes() == reference[
            ExpandStrategy.RECURSIVE_EARLY
        ]

    def test_navigational_strategies_delegate(self, baseline):
        __, reference = baseline
        scenario = faulty_scenario(baseline, DROP_5, fault_seed=2)
        root, root_attrs = expand_args(scenario)
        for strategy in (
            ExpandStrategy.NAVIGATIONAL_LATE,
            ExpandStrategy.NAVIGATIONAL_EARLY,
        ):
            result = scenario.client.resilient_multi_level_expand(
                root, strategy, root_attrs=root_attrs
            )
            assert result.tree.canonical_bytes() == reference[strategy]


class TestCanonicalBytes:
    def test_same_tree_same_bytes(self, baseline):
        scenario, __ = baseline
        root, root_attrs = (
            scenario.product.root_obid,
            scenario.product.root_attributes(),
        )
        first = scenario.client.multi_level_expand(
            root, ExpandStrategy.EXPAND_BATCHED, root_attrs=root_attrs
        )
        second = scenario.client.multi_level_expand(
            root, ExpandStrategy.EXPAND_BATCHED, root_attrs=root_attrs
        )
        assert first.tree.canonical_bytes() == second.tree.canonical_bytes()

    def test_attribute_change_changes_bytes(self, baseline):
        scenario, __ = baseline
        root, root_attrs = (
            scenario.product.root_obid,
            scenario.product.root_attributes(),
        )
        result = scenario.client.multi_level_expand(
            root, ExpandStrategy.EXPAND_BATCHED, root_attrs=root_attrs
        )
        reference = result.tree.canonical_bytes()
        result.tree.children[0].attrs["name"] = "tampered"
        assert result.tree.canonical_bytes() != reference
