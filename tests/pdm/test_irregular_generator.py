"""Irregular (random-attachment) product structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workload import build_scenario
from repro.errors import PDMError
from repro.network.profiles import WAN_1024
from repro.pdm.generator import generate_irregular_product
from repro.pdm.operations import ExpandStrategy
from repro.pdm.structure import trees_equal


class TestGeneratorInvariants:
    def test_node_count(self):
        product = generate_irregular_product(40, seed=1)
        assert product.node_count == 40
        assert len(product.links) == 39

    def test_single_node_product(self):
        product = generate_irregular_product(1, seed=1)
        assert product.node_count == 1
        assert product.links == []

    def test_all_nodes_reachable_from_root(self):
        product = generate_irregular_product(60, seed=5)
        adjacency = {}
        for link in product.links:
            adjacency.setdefault(link.left, []).append(link.right)
        seen = {product.root_obid}
        frontier = [product.root_obid]
        while frontier:
            node = frontier.pop()
            for child in adjacency.get(node, ()):
                seen.add(child)
                frontier.append(child)
        all_ids = {a.obid for a in product.assemblies} | {
            c.obid for c in product.components
        }
        assert seen == all_ids

    def test_components_never_have_children(self):
        product = generate_irregular_product(80, seed=7, leaf_probability=0.6)
        parents = {link.left for link in product.links}
        for component in product.components:
            assert component.obid not in parents

    def test_visibility_path_consistent(self):
        product = generate_irregular_product(80, seed=9, visibility=0.5)
        parent_of = {link.right: (link.left, link.obid) for link in product.links}
        for obid in product.visible_obids - {product.root_obid}:
            parent, link_id = parent_of[obid]
            assert parent in product.visible_obids
            assert link_id in product.visible_links

    def test_realised_shape_recorded(self):
        product = generate_irregular_product(100, seed=11)
        fanouts = {}
        for link in product.links:
            fanouts[link.left] = fanouts.get(link.left, 0) + 1
        assert product.tree.branching == max(fanouts.values())

    def test_deterministic(self):
        first = generate_irregular_product(30, seed=2)
        second = generate_irregular_product(30, seed=2)
        assert [l.to_row() for l in first.links] == [
            l.to_row() for l in second.links
        ]

    def test_validation(self):
        with pytest.raises(PDMError):
            generate_irregular_product(0)
        with pytest.raises(PDMError):
            generate_irregular_product(5, leaf_probability=1.0)


class TestStrategyEquivalenceOnIrregularShapes:
    """The equivalence property must not depend on complete κ-ary trees."""

    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=5000),
        st.sampled_from([0.0, 0.4, 0.7, 1.0]),
    )
    @settings(max_examples=15, deadline=None)
    def test_all_strategies_agree(self, node_count, seed, visibility):
        product = generate_irregular_product(
            node_count, seed=seed, visibility=visibility
        )
        scenario = build_scenario(
            product.tree, WAN_1024, product=product
        )
        root = product.root_obid
        root_attrs = product.root_attributes()
        trees = [
            scenario.client.multi_level_expand(
                root, strategy, root_attrs=root_attrs
            ).tree
            for strategy in ExpandStrategy
        ]
        assert trees_equal(trees[0], trees[1])
        assert trees_equal(trees[0], trees[2])
        assert trees[0].obids() == product.visible_obids

    def test_where_used_on_irregular_tree(self):
        product = generate_irregular_product(50, seed=17)
        scenario = build_scenario(product.tree, WAN_1024, product=product)
        leaf = product.components[0].obid
        result = scenario.client.where_used(leaf)
        parent_of = {link.right: link.left for link in product.links}
        expected = []
        node = leaf
        while node in parent_of:
            node = parent_of[node]
            expected.append(node)
        assert [a["obid"] for a in result.objects] == expected
