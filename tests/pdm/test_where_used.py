"""Where-used (reverse BOM): upward recursion vs navigational climbing."""

import pytest

from repro.pdm.operations import ExpandStrategy


class TestFigure2WhereUsed:
    """Figure 2 ground truth: Comp3 (103) sits under Assy5, which sits
    under Assy2, which sits under Assy1."""

    def client(self, scenario):
        return scenario.fresh_client()

    @pytest.fixture
    def scenario(self, figure2_db, figure2_product):
        from repro.bench.workload import build_scenario
        from repro.model.parameters import TreeParameters
        from repro.network.profiles import WAN_512
        from repro.rules.ruletable import RuleTable

        return build_scenario(
            TreeParameters(depth=2, branching=2, visibility=1.0),
            WAN_512,
            product=figure2_product,
            rule_table=RuleTable(),
        )

    def test_component_ancestry_recursive(self, scenario):
        result = scenario.client.where_used(103, ExpandStrategy.RECURSIVE_EARLY)
        chain = [(a["obid"], a["distance"]) for a in result.objects]
        assert chain == [(5, 1), (2, 2), (1, 3)]
        assert result.round_trips == 1

    def test_component_ancestry_navigational(self, scenario):
        result = scenario.client.where_used(
            103, ExpandStrategy.NAVIGATIONAL_LATE
        )
        chain = [(a["obid"], a["distance"]) for a in result.objects]
        assert chain == [(5, 1), (2, 2), (1, 3)]
        # One probe per visited node (103, 5, 2, 1).
        assert result.round_trips == 4

    def test_strategies_agree(self, scenario):
        recursive = scenario.client.where_used(
            104, ExpandStrategy.RECURSIVE_EARLY
        )
        navigational = scenario.client.where_used(
            104, ExpandStrategy.NAVIGATIONAL_EARLY
        )
        assert [a["obid"] for a in recursive.objects] == [
            a["obid"] for a in navigational.objects
        ]

    def test_root_has_no_ancestors(self, scenario):
        result = scenario.client.where_used(1, ExpandStrategy.RECURSIVE_EARLY)
        assert result.objects == []

    def test_via_links_reported(self, scenario):
        result = scenario.client.where_used(103, ExpandStrategy.RECURSIVE_EARLY)
        assert result.objects[0]["via_link"] == 1007  # 5 -> 103

    def test_recursive_cheaper_on_wan(self, scenario):
        recursive = scenario.client.where_used(
            103, ExpandStrategy.RECURSIVE_EARLY
        )
        navigational = scenario.client.where_used(
            103, ExpandStrategy.NAVIGATIONAL_LATE
        )
        assert recursive.seconds < navigational.seconds


class TestGeneratedTreeWhereUsed:
    def test_leaf_ancestry_matches_generator(self, tiny_scenario):
        scenario = tiny_scenario
        product = scenario.product
        parent_of = {link.right: link.left for link in product.links}
        leaf = product.components[-1].obid
        expected = []
        node = leaf
        while node in parent_of:
            node = parent_of[node]
            expected.append(node)
        result = scenario.client.where_used(leaf)
        assert [a["obid"] for a in result.objects] == expected

    def test_shared_component_multiple_parents(self, tiny_scenario):
        """A component used in two assemblies reports both parents (the
        motivating case for where-used)."""
        scenario = tiny_scenario
        product = scenario.product
        shared = product.components[0].obid
        other_parent = product.assemblies[-1].obid
        scenario.database.execute(
            "INSERT INTO link VALUES ('link', 7999999, ?, ?, 1, 999999, 1)",
            [other_parent, shared],
        )
        result = scenario.client.where_used(shared)
        parents = [a["obid"] for a in result.objects if a["distance"] == 1]
        assert other_parent in parents
        assert len(parents) == 2
