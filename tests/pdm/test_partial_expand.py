"""Depth-bounded (partial) multi-level expands.

The paper's users "repeat this so-called single-level expand until they
find what they look for" — a bounded multi-level expand covers the middle
ground between one level and the full structure, and the recursive query
supports it with a parameterised depth column.
"""

import pytest

from repro.pdm.operations import ExpandStrategy
from repro.pdm.structure import trees_equal


@pytest.mark.parametrize("max_depth", [0, 1, 2, 3, 5])
def test_depth_bound_respected_recursive(tiny_scenario, max_depth):
    scenario = tiny_scenario  # full tree has depth 2
    result = scenario.client.multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=scenario.product.root_attributes(),
        max_depth=max_depth,
    )
    assert result.tree.depth() == min(max_depth, scenario.tree.depth)
    assert result.round_trips == 1


@pytest.mark.parametrize("max_depth", [1, 2])
def test_strategies_agree_under_depth_bound(small_scenario, max_depth):
    scenario = small_scenario
    root_attrs = scenario.product.root_attributes()
    trees = [
        scenario.client.multi_level_expand(
            scenario.product.root_obid,
            strategy,
            root_attrs=root_attrs,
            max_depth=max_depth,
        ).tree
        for strategy in ExpandStrategy
    ]
    assert trees_equal(trees[0], trees[1])
    assert trees_equal(trees[0], trees[2])


def test_bounded_expand_cheaper_than_full(small_scenario):
    scenario = small_scenario
    root_attrs = scenario.product.root_attributes()
    bounded = scenario.client.multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=root_attrs,
        max_depth=1,
    )
    full = scenario.client.multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=root_attrs,
    )
    assert bounded.traffic.payload_bytes < full.traffic.payload_bytes
    assert bounded.tree.node_count() <= full.tree.node_count()


def test_navigational_round_trips_shrink_with_bound(small_scenario):
    scenario = small_scenario
    root_attrs = scenario.product.root_attributes()
    bounded = scenario.client.multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.NAVIGATIONAL_EARLY,
        root_attrs=root_attrs,
        max_depth=1,
    )
    full = scenario.client.multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.NAVIGATIONAL_EARLY,
        root_attrs=root_attrs,
    )
    assert bounded.round_trips < full.round_trips
    # A depth-1 bounded expand is exactly the single-level expand: one
    # probe of the root only.
    assert bounded.round_trips == 1


def test_depth_zero_returns_just_the_root(tiny_scenario):
    scenario = tiny_scenario
    result = scenario.client.multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.NAVIGATIONAL_LATE,
        root_attrs=scenario.product.root_attributes(),
        max_depth=0,
    )
    assert result.tree.node_count() == 1
    assert result.round_trips == 0  # nothing was fetched


def test_depth_bound_with_rules(small_scenario):
    """Visibility rules and the depth bound compose."""
    scenario = small_scenario
    result = scenario.client.multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=scenario.product.root_attributes(),
        max_depth=2,
    )
    visible = scenario.product.visible_obids
    assert result.tree.obids() <= visible
