"""Check-out / check-in: two-phase vs server procedure (paper Section 6)."""

import pytest

from repro.errors import CheckOutError
from repro.pdm.operations import CheckOutMode
from repro.rules.conditions import Attribute, Comparison, Const, ForAllRows
from repro.rules.model import Actions, Rule


@pytest.fixture
def scenario(tiny_scenario):
    """Fully visible 2x2 tree with the paper-example-2 check-out rule."""
    tiny_scenario.rule_table.add(
        Rule(
            user="*",
            action=Actions.CHECK_OUT,
            object_type="assy",
            condition=ForAllRows(
                Comparison("=", Attribute("checkedout"), Const(False))
            ),
            name="all-checked-in",
        )
    )
    return tiny_scenario


def checked_out_obids(db):
    rows = db.execute(
        "SELECT obid FROM assy WHERE checkedout = TRUE "
        "UNION ALL SELECT obid FROM comp WHERE checkedout = TRUE"
    )
    return set(rows.column("obid"))


class TestTwoPhase:
    def test_checks_out_whole_subtree(self, scenario):
        root = scenario.product.root_obid
        result = scenario.client.check_out(
            root, CheckOutMode.TWO_PHASE,
            root_attrs=scenario.product.root_attributes(),
        )
        assert set(result.checked_out) == scenario.product.visible_obids
        assert checked_out_obids(scenario.database) == scenario.product.visible_obids

    def test_costs_three_round_trips(self, scenario):
        result = scenario.client.check_out(
            scenario.product.root_obid,
            CheckOutMode.TWO_PHASE,
            root_attrs=scenario.product.root_attributes(),
        )
        # 1 recursive fetch + 1 UPDATE per node table.
        assert result.round_trips == 3

    def test_conflict_detected_by_forall_rule(self, scenario):
        scenario.database.execute(
            "UPDATE comp SET checkedout = TRUE, checkedout_by = 'mike' "
            "WHERE obid = ?",
            [scenario.product.components[0].obid],
        )
        with pytest.raises(CheckOutError):
            scenario.client.check_out(
                scenario.product.root_obid,
                CheckOutMode.TWO_PHASE,
                root_attrs=scenario.product.root_attributes(),
            )
        # Nothing was partially checked out by scott.
        owners = scenario.database.execute(
            "SELECT DISTINCT checkedout_by FROM comp WHERE checkedout = TRUE"
        ).column("checkedout_by")
        assert owners == ["mike"]

    def test_check_in_releases(self, scenario):
        root = scenario.product.root_obid
        scenario.client.check_out(
            root, CheckOutMode.TWO_PHASE,
            root_attrs=scenario.product.root_attributes(),
        )
        result = scenario.client.check_in(root, CheckOutMode.TWO_PHASE)
        assert checked_out_obids(scenario.database) == set()
        assert set(result.checked_out) == scenario.product.visible_obids


class TestServerProcedure:
    def test_single_round_trip(self, scenario):
        result = scenario.client.check_out(
            scenario.product.root_obid, CheckOutMode.SERVER_PROCEDURE
        )
        assert result.round_trips == 1
        assert checked_out_obids(scenario.database) == scenario.product.visible_obids

    def test_conflict_raises_and_changes_nothing(self, scenario):
        conflicted = scenario.product.components[0].obid
        scenario.database.execute(
            "UPDATE comp SET checkedout = TRUE WHERE obid = ?", [conflicted]
        )
        with pytest.raises(CheckOutError):
            scenario.client.check_out(
                scenario.product.root_obid, CheckOutMode.SERVER_PROCEDURE
            )
        assert checked_out_obids(scenario.database) == {conflicted}

    def test_unknown_root_raises(self, scenario):
        with pytest.raises(CheckOutError):
            scenario.client.check_out(999_999, CheckOutMode.SERVER_PROCEDURE)

    def test_check_in_by_other_user_is_noop(self, scenario):
        root = scenario.product.root_obid
        scenario.client.check_out(root, CheckOutMode.SERVER_PROCEDURE)
        other = scenario.fresh_client(user="mike")
        result = other.check_in(root, CheckOutMode.SERVER_PROCEDURE)
        assert result.checked_out == []
        assert checked_out_obids(scenario.database)  # still held by scott

    def test_check_in_releases_only_own_subtree(self, scenario):
        root = scenario.product.root_obid
        scenario.client.check_out(root, CheckOutMode.SERVER_PROCEDURE)
        result = scenario.client.check_in(root, CheckOutMode.SERVER_PROCEDURE)
        assert set(result.checked_out) == scenario.product.visible_obids
        assert checked_out_obids(scenario.database) == set()

    def test_injected_failure_rolls_back_partial_updates(self, scenario, monkeypatch):
        """Failure injection: the server procedure updates assy first and
        comp second; a fault between the two must not leave the assemblies
        flagged (the transactional substrate extension)."""
        from repro.errors import ExecutionError

        db = scenario.database
        original_execute = db.execute

        def flaky_execute(sql, params=()):
            if isinstance(sql, str) and sql.startswith("UPDATE comp"):
                raise ExecutionError("injected storage failure")
            return original_execute(sql, params)

        monkeypatch.setattr(db, "execute", flaky_execute)
        with pytest.raises(ExecutionError):
            scenario.client.check_out(
                scenario.product.root_obid, CheckOutMode.SERVER_PROCEDURE
            )
        monkeypatch.undo()
        # No assembly may remain checked out after the rollback.
        assert checked_out_obids(scenario.database) == set()
        # The server survived and a retry succeeds.
        result = scenario.client.check_out(
            scenario.product.root_obid, CheckOutMode.SERVER_PROCEDURE
        )
        assert set(result.checked_out) == scenario.product.visible_obids

    def test_procedure_faster_than_two_phase_on_wan(self, scenario):
        root = scenario.product.root_obid
        root_attrs = scenario.product.root_attributes()
        two_phase = scenario.client.check_out(
            root, CheckOutMode.TWO_PHASE, root_attrs=root_attrs
        )
        scenario.client.check_in(root, CheckOutMode.TWO_PHASE)
        procedure = scenario.client.check_out(root, CheckOutMode.SERVER_PROCEDURE)
        # Latency: 3 round trips vs 1.
        assert procedure.traffic.latency_seconds < two_phase.traffic.latency_seconds
