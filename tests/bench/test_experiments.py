"""Experiment registry and reports: model-vs-paper agreement, formatting."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    run_figure4,
    run_figure5,
    run_table2,
    run_table3,
    run_table4,
)
from repro.bench.report import ComparisonRow, ExperimentReport
from repro.bench import paper_values
from repro.model.tables import (
    figure4_series,
    figure5_series,
    format_figure,
    format_table,
    table2_cells,
    table3_cells,
    table4_cells,
)


class TestTableExperiments:
    def test_table2_model_matches_paper_to_the_cent(self):
        report = run_table2(simulate=False)
        assert len(report.rows) == 27  # 3 networks x 3 trees x 3 actions
        assert report.max_model_error() <= 0.011

    def test_table3_model_matches_paper(self):
        report = run_table3(simulate=False)
        assert report.max_model_error() <= 0.011
        for row in report.rows:
            assert row.model_saving == pytest.approx(row.paper_saving, abs=0.02)

    def test_table4_model_matches_paper(self):
        report = run_table4(simulate=False)
        assert len(report.rows) == 9  # MLE only
        assert report.max_model_error() <= 0.011

    def test_report_text_renders(self):
        text = run_table4(simulate=False).to_text()
        assert "table4" in text
        assert "mle" in text

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table2",
            "table3",
            "table4",
            "figure4",
            "figure5",
        }


class TestFigures:
    def test_figure4_model_equals_paper_columns(self):
        series = figure4_series()
        for strategy, bars in paper_values.FIGURE4.items():
            for action, value in bars.items():
                assert series[strategy][action] == pytest.approx(value, abs=0.011)

    def test_figure5_model_equals_paper_columns(self):
        series = figure5_series()
        for strategy, bars in paper_values.FIGURE5.items():
            for action, value in bars.items():
                assert series[strategy][action] == pytest.approx(value, abs=0.011)

    def test_figure_texts_render(self):
        assert "figure4" in run_figure4(simulate=False)
        assert "figure5" in run_figure5(simulate=False)

    def test_figure_shape_claims(self):
        """Paper Section 6: expand gains little; queries gain >95% from
        early eval; MLE only becomes acceptable with recursion."""
        for series in (figure4_series(), figure5_series()):
            late, early, recursion = (
                series["late eval"],
                series["early eval"],
                series["recursion"],
            )
            # Single-level expand is already sub-second everywhere.
            assert late["EXPAND"] < 1.0
            # Early eval cuts query times by >95%.
            assert early["QUERY"] < 0.05 * late["QUERY"]
            # Early eval alone saves only ~2% on MLE.
            assert early["MLE"] > 0.95 * late["MLE"]
            # Recursion + early eval eliminates >95% of the MLE time.
            assert recursion["MLE"] < 0.05 * late["MLE"]


class TestModelTableFormatting:
    def test_format_table2(self):
        text = format_table(table2_cells(), with_saving=False)
        assert "d3k9 QUERY" in text
        assert "13.28" in text

    def test_format_table3_with_savings(self):
        text = format_table(table3_cells(), with_saving=True)
        assert "saving %" in text

    def test_format_table4_only_mle(self):
        text = format_table(table4_cells(), with_saving=True)
        assert "QUERY" not in text.split("\n")[0]

    def test_format_figure(self):
        text = format_figure(figure4_series(), "Figure 4")
        assert "Figure 4" in text
        assert "#" in text


class TestReportObjects:
    def test_comparison_row_metrics(self):
        row = ComparisonRow(
            network="n", tree="t", action="mle",
            paper_seconds=100.0, model_seconds=100.005,
            simulated_seconds=90.0,
        )
        assert row.model_error == pytest.approx(0.005)
        assert row.simulated_ratio == pytest.approx(0.9)

    def test_empty_report_renders(self):
        report = ExperimentReport(experiment_id="x", title="empty")
        assert report.max_model_error() == 0.0
        assert "x" in report.to_text()


class TestCLI:
    def test_main_runs_model_only(self, capsys):
        from repro.bench.__main__ import main

        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "96.9" in out or "96.93" in out

    def test_main_all_experiments(self, capsys):
        from repro.bench.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out


class TestCLIOutput:
    def test_output_flag_writes_report(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        target = tmp_path / "report.txt"
        assert main(["table4", "--output", str(target)]) == 0
        capsys.readouterr()
        written = target.read_text()
        assert "table4" in written
        assert "96.9" in written or "96.93" in written
