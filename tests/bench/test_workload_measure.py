"""Benchmark harness plumbing: scenarios, measurement, traffic pricing."""

import pytest

from repro.bench.measure import measure_action, measure_grid, price_traffic
from repro.bench.workload import build_scenario, scenario_rules
from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.response_time import Action, Strategy, predict
from repro.network.profiles import WAN_256, WAN_512


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        TreeParameters(depth=3, branching=3, visibility=0.6), WAN_256, seed=42
    )


class TestScenarioRules:
    def test_rules_cover_all_types(self):
        table = scenario_rules()
        assert table.object_types() == ["assy", "comp", "link"]

    def test_rules_use_stored_function(self):
        table = scenario_rules()
        for rule in table:
            assert rule.condition.function == "options_overlap"


class TestBuildScenario:
    def test_database_populated(self, scenario):
        total = scenario.database.table_rowcount(
            "assy"
        ) + scenario.database.table_rowcount("comp")
        assert total == scenario.product.node_count

    def test_checkout_procedures_installed(self, scenario):
        assert "check_out_tree" in scenario.server.procedure_names()

    def test_shared_product_reuse(self, scenario):
        other = build_scenario(
            scenario.tree, WAN_512, product=scenario.product
        )
        assert other.product is scenario.product
        assert other.link.latency_s == WAN_512.latency_s


class TestMeasurement:
    def test_round_trips_match_model_exactly(self, scenario):
        measured = measure_action(scenario, Action.MLE, Strategy.EARLY)
        assert measured.round_trips == 1 + scenario.product.visible_node_count

    def test_recursive_round_trips(self, scenario):
        measured = measure_action(scenario, Action.MLE, Strategy.RECURSIVE)
        assert measured.round_trips == 1
        assert measured.traffic.messages == 2

    def test_grid_covers_all_combinations(self, scenario):
        grid = measure_grid(scenario)
        assert len(grid) == 9
        assert all(m.seconds > 0 for m in grid.values())

    def test_result_nodes_match_ground_truth(self, scenario):
        for strategy in (Strategy.LATE, Strategy.EARLY, Strategy.RECURSIVE):
            measured = measure_action(scenario, Action.MLE, strategy)
            assert measured.result_nodes == scenario.product.visible_node_count


class TestPriceTraffic:
    def test_pricing_matches_direct_measurement(self, scenario):
        measured = measure_action(scenario, Action.EXPAND, Strategy.EARLY)
        network = NetworkParameters(
            latency_s=scenario.link.latency_s,
            dtr_kbit_s=scenario.link.dtr_kbit_s,
        )
        assert price_traffic(measured.traffic, network) == pytest.approx(
            measured.seconds
        )

    def test_repricing_scales_with_bandwidth(self, scenario):
        measured = measure_action(scenario, Action.QUERY, Strategy.LATE)
        slow = price_traffic(
            measured.traffic, NetworkParameters(latency_s=0.15, dtr_kbit_s=256)
        )
        fast = price_traffic(
            measured.traffic, NetworkParameters(latency_s=0.15, dtr_kbit_s=512)
        )
        transfer_slow = slow - measured.traffic.messages * 0.15
        transfer_fast = fast - measured.traffic.messages * 0.15
        assert transfer_slow == pytest.approx(2 * transfer_fast)


class TestSimulationMatchesModelShape:
    """Simulated values won't equal the analytic expectations (one σ draw,
    real wire bytes) but must land in the same regime."""

    def test_mle_simulated_within_factor_two_of_model(self, scenario):
        network = NetworkParameters(latency_s=0.15, dtr_kbit_s=256)
        for strategy in (Strategy.LATE, Strategy.EARLY, Strategy.RECURSIVE):
            measured = measure_action(scenario, Action.MLE, strategy)
            model = predict(Action.MLE, strategy, scenario.tree, network)
            ratio = measured.seconds / model.total_seconds
            assert 0.5 < ratio < 2.0, (strategy, ratio)

    def test_savings_ordering_preserved(self, scenario):
        late = measure_action(scenario, Action.MLE, Strategy.LATE)
        early = measure_action(scenario, Action.MLE, Strategy.EARLY)
        recursive = measure_action(scenario, Action.MLE, Strategy.RECURSIVE)
        assert recursive.seconds < early.seconds <= late.seconds
        # Recursion eliminates ~90% of the navigational response time at
        # this small scale (>95% at paper scale, see benchmarks/).
        assert recursive.seconds < 0.12 * late.seconds
