"""Session workload generation and replay."""

import pytest

from repro.bench.session import (
    DEFAULT_MIX,
    SessionStep,
    compare_strategies,
    generate_session,
    replay_session,
)
from repro.errors import PDMError
from repro.pdm.operations import ExpandStrategy


class TestGeneration:
    def test_length_and_determinism(self, small_scenario):
        first = generate_session(small_scenario, length=15, seed=3)
        second = generate_session(small_scenario, length=15, seed=3)
        assert len(first) == 15
        assert first == second

    def test_different_seeds_differ(self, small_scenario):
        assert generate_session(small_scenario, length=15, seed=1) != (
            generate_session(small_scenario, length=15, seed=2)
        )

    def test_targets_are_visible_assemblies(self, small_scenario):
        steps = generate_session(small_scenario, length=30, seed=5)
        visible = small_scenario.product.visible_obids
        components = {c.obid for c in small_scenario.product.components}
        for step in steps:
            assert step.target_obid in visible
            assert step.target_obid not in components

    def test_custom_mix_restricts_kinds(self, small_scenario):
        steps = generate_session(
            small_scenario, length=20, seed=1, mix={"expand": 1.0}
        )
        assert {step.kind for step in steps} == {"expand"}

    def test_partial_mle_gets_depth(self, small_scenario):
        steps = generate_session(
            small_scenario, length=10, seed=1, mix={"partial_mle": 1.0}
        )
        assert all(step.depth is not None for step in steps)

    def test_unknown_kind_rejected(self, small_scenario):
        with pytest.raises(PDMError):
            generate_session(small_scenario, mix={"teleport": 1.0})

    def test_default_mix_constants(self):
        assert set(DEFAULT_MIX) == {
            "expand",
            "partial_mle",
            "mle",
            "query",
            "checkout_cycle",
        }


class TestReplay:
    def test_replay_accounts_every_step(self, small_scenario):
        steps = generate_session(small_scenario, length=8, seed=7)
        result = replay_session(
            small_scenario, steps, ExpandStrategy.RECURSIVE_EARLY
        )
        assert len(result.step_seconds) == 8
        assert result.total_seconds == pytest.approx(sum(result.step_seconds))
        assert result.round_trips > 0

    def test_slowest_step_identified(self, small_scenario):
        steps = [
            SessionStep("expand", small_scenario.product.root_obid),
            SessionStep("query", small_scenario.product.root_obid),
        ]
        result = replay_session(
            small_scenario, steps, ExpandStrategy.NAVIGATIONAL_LATE
        )
        step, seconds = result.slowest_step
        assert seconds == max(result.step_seconds)

    def test_checkout_cycle_leaves_database_clean(self, small_scenario):
        steps = [
            SessionStep("checkout_cycle", small_scenario.product.root_obid)
        ]
        for strategy in ExpandStrategy:
            replay_session(small_scenario, steps, strategy)
            held = small_scenario.database.execute(
                "SELECT COUNT(*) FROM assy WHERE checkedout = TRUE"
            ).scalar()
            assert held == 0

    def test_recursive_session_dominates(self, small_scenario):
        results = compare_strategies(small_scenario, length=12, seed=11)
        late = results[ExpandStrategy.NAVIGATIONAL_LATE]
        early = results[ExpandStrategy.NAVIGATIONAL_EARLY]
        recursive = results[ExpandStrategy.RECURSIVE_EARLY]
        assert recursive.total_seconds < early.total_seconds
        # Browsing steps cost the same everywhere, so the session-level
        # saving is smaller than the per-MLE saving — but still decisive.
        assert recursive.total_seconds < 0.75 * late.total_seconds
        assert recursive.round_trips < late.round_trips

    def test_same_steps_all_strategies(self, small_scenario):
        results = compare_strategies(small_scenario, length=6, seed=2)
        step_lists = [result.steps for result in results.values()]
        assert step_lists[0] == step_lists[1] == step_lists[2]
