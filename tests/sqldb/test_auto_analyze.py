"""Auto-ANALYZE: statistics refresh when a table drifts past threshold.

A table that has been ANALYZEd once keeps its statistics fresh by
itself: when ``TableStorage.version`` has advanced at least
``auto_analyze_threshold`` ticks past the version the stats were
collected at, the next planning pass re-collects before planning.
Never-ANALYZEd tables are deliberately left alone (rule-based planning
stays byte-identical for workloads that never opt into statistics).
"""

import pytest

from repro.sqldb import Database


def plan_text(db, sql, params=()):
    return "\n".join(
        line for (line,) in db.execute(f"EXPLAIN {sql}", params).rows
    )


@pytest.fixture
def db():
    database = Database(auto_analyze_threshold=100)
    database.execute("CREATE TABLE tiny (x INTEGER)")
    database.execute("CREATE INDEX tiny_x ON tiny (x)")
    database.executemany(
        "INSERT INTO tiny VALUES (?)", [(i,) for i in range(3)]
    )
    return database


class TestAutoAnalyze:
    def test_bulk_insert_flips_plan_without_manual_analyze(self, db):
        """The regression scenario: ANALYZE at 3 rows prices the seq scan
        cheapest; a bulk insert grows the table 300x; the next SELECT
        must re-collect by itself and flip back to the index path."""
        db.execute("ANALYZE tiny")
        assert "SeqScan(tiny)" in plan_text(
            db, "SELECT * FROM tiny WHERE x = ?", (1,)
        )
        db.executemany(
            "INSERT INTO tiny VALUES (?)", [(i,) for i in range(3, 1000)]
        )
        after = plan_text(db, "SELECT * FROM tiny WHERE x = ?", (1,))
        assert "IndexLookup(tiny via tiny_x)" in after
        assert db.statistics["auto_analyze"] == 1
        rows = db.execute("SELECT * FROM tiny WHERE x = ?", (1,)).rows
        assert rows == [(1,)]

    def test_never_analyzed_table_is_left_alone(self, db):
        db.executemany(
            "INSERT INTO tiny VALUES (?)", [(i,) for i in range(3, 1000)]
        )
        db.execute("SELECT * FROM tiny WHERE x = ?", (1,))
        assert db.statistics["auto_analyze"] == 0
        assert db.stats.get("tiny") is None

    def test_small_drift_does_not_retrigger(self, db):
        db.execute("ANALYZE tiny")
        db.executemany(
            "INSERT INTO tiny VALUES (?)", [(i,) for i in range(3, 50)]
        )
        db.execute("SELECT * FROM tiny WHERE x = ?", (1,))
        assert db.statistics["auto_analyze"] == 0

    def test_threshold_zero_disables_the_trigger(self):
        db = Database(auto_analyze_threshold=0)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("ANALYZE t")
        db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(500)])
        db.execute("SELECT * FROM t WHERE x = ?", (1,))
        assert db.statistics["auto_analyze"] == 0

    def test_refresh_updates_the_stored_statistics(self, db):
        db.execute("ANALYZE tiny")
        assert db.stats.get("tiny").row_count == 3
        db.executemany(
            "INSERT INTO tiny VALUES (?)", [(i,) for i in range(3, 500)]
        )
        db.execute("SELECT * FROM tiny WHERE x = ?", (1,))
        assert db.stats.get("tiny").row_count == 500

    def test_snapshot_reads_never_trigger_auto_analyze(self):
        """A READ ONLY snapshot read is lock-free by contract, and an
        auto-ANALYZE would take shared locks mid-transaction — the
        trigger must sit the snapshot out (and catch up afterwards)."""
        db = Database(mvcc=True, auto_analyze_threshold=100)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)")
        db.execute("CREATE INDEX t_x ON t (x)")
        db.execute("INSERT INTO t VALUES (1, 1)")
        db.execute("ANALYZE t")
        db.executemany(
            "INSERT INTO t VALUES (?, ?)",
            [(i, i) for i in range(2, 500)],
        )
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        db.execute("SELECT * FROM t WHERE x = ?", (1,), session="reader")
        assert db.statistics["auto_analyze"] == 0
        db.execute("COMMIT", session="reader")
        db.execute("SELECT * FROM t WHERE x = ?", (1,))
        assert db.statistics["auto_analyze"] == 1
