"""TableStorage and HashIndex unit tests (below the SQL layer)."""

import pytest

from repro.errors import CatalogError, IntegrityError
from repro.sqldb.schema import Column, TableSchema
from repro.sqldb.storage import HashIndex, TableStorage
from repro.sqldb.types import INTEGER, VARCHAR


@pytest.fixture
def schema():
    return TableSchema(
        name="t",
        columns=[
            Column("id", INTEGER, primary_key=True),
            Column("grp", INTEGER),
            Column("name", VARCHAR(10)),
        ],
    )


@pytest.fixture
def storage(schema):
    return TableStorage(schema)


class TestSchema:
    def test_column_index_case_insensitive(self, schema):
        assert schema.column_index("GRP") == 1

    def test_unknown_column_raises(self, schema):
        with pytest.raises(CatalogError):
            schema.column_index("missing")

    def test_primary_key_index(self, schema):
        assert schema.primary_key_index() == 0

    def test_arity(self, schema):
        assert schema.arity == 3


class TestStorage:
    def test_insert_scan_roundtrip(self, storage):
        storage.insert((1, 10, "a"))
        storage.insert((2, 10, "b"))
        assert list(storage.rows()) == [(1, 10, "a"), (2, 10, "b")]
        assert len(storage) == 2

    def test_primary_key_auto_index_unique(self, storage):
        storage.insert((1, 10, "a"))
        with pytest.raises(IntegrityError):
            storage.insert((1, 20, "b"))
        assert len(storage) == 1  # failed insert leaves no trace

    def test_delete_frees_slot(self, storage):
        row_id = storage.insert((1, 10, "a"))
        storage.delete(row_id)
        assert len(storage) == 0
        assert list(storage.rows()) == []

    def test_delete_is_idempotent(self, storage):
        row_id = storage.insert((1, 10, "a"))
        storage.delete(row_id)
        storage.delete(row_id)
        assert len(storage) == 0

    def test_update_replaces_row(self, storage):
        row_id = storage.insert((1, 10, "a"))
        storage.update(row_id, (1, 20, "z"))
        assert storage.fetch(row_id) == (1, 20, "z")

    def test_update_deleted_row_raises(self, storage):
        row_id = storage.insert((1, 10, "a"))
        storage.delete(row_id)
        with pytest.raises(IntegrityError):
            storage.update(row_id, (1, 20, "z"))

    def test_wrong_arity_rejected(self, storage):
        with pytest.raises(IntegrityError):
            storage.insert((1, 10))


class TestIndexes:
    def test_index_probe(self, storage):
        storage.create_index("t_grp", ["grp"])
        ids = [storage.insert((i, i % 2, "x")) for i in range(6)]
        index = storage.find_index(["grp"])
        assert sorted(index.probe((0,))) == [ids[0], ids[2], ids[4]]

    def test_index_built_over_existing_rows(self, storage):
        for i in range(4):
            storage.insert((i, 7, "x"))
        storage.create_index("late", ["grp"])
        assert len(storage.find_index(["grp"]).probe((7,))) == 4

    def test_null_keys_not_indexed(self, storage):
        storage.create_index("t_grp", ["grp"])
        storage.insert((1, None, "a"))
        index = storage.find_index(["grp"])
        assert index.probe((None,)) == []

    def test_index_maintained_on_delete(self, storage):
        storage.create_index("t_grp", ["grp"])
        row_id = storage.insert((1, 5, "a"))
        storage.delete(row_id)
        assert storage.find_index(["grp"]).probe((5,)) == []

    def test_index_maintained_on_update(self, storage):
        storage.create_index("t_grp", ["grp"])
        row_id = storage.insert((1, 5, "a"))
        storage.update(row_id, (1, 6, "a"))
        index = storage.find_index(["grp"])
        assert index.probe((5,)) == []
        assert index.probe((6,)) == [row_id]

    def test_duplicate_index_name_rejected(self, storage):
        storage.create_index("i", ["grp"])
        with pytest.raises(CatalogError):
            storage.create_index("i", ["name"])

    def test_find_index_exact_columns_only(self, storage):
        storage.create_index("i", ["grp"])
        assert storage.find_index(["name"]) is None
        assert storage.find_index(["grp"]) is not None

    def test_multi_column_index(self, storage):
        storage.create_index("multi", ["grp", "name"])
        row_id = storage.insert((1, 5, "a"))
        index = storage.find_index(["grp", "name"])
        assert index.probe((5, "a")) == [row_id]
        assert index.probe((5, "b")) == []


class TestHashIndexUnit:
    def test_unique_violation_message(self):
        index = HashIndex("u", [0], unique=True)
        index.add(0, (1,))
        with pytest.raises(IntegrityError):
            index.add(1, (1,))

    def test_remove_missing_is_noop(self):
        index = HashIndex("i", [0])
        index.remove(0, (1,))  # no error
        assert index.probe((1,)) == []
