"""UNION / UNION ALL / INTERSECT / EXCEPT semantics."""

import pytest

from repro.errors import ParseError
from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        "CREATE TABLE a (v INTEGER); CREATE TABLE b (v INTEGER)"
    )
    for v in (1, 2, 2, 3):
        db.execute("INSERT INTO a VALUES (?)", [v])
    for v in (2, 3, 4):
        db.execute("INSERT INTO b VALUES (?)", [v])
    return db


class TestUnion:
    def test_union_deduplicates(self, db):
        result = db.execute("SELECT v FROM a UNION SELECT v FROM b ORDER BY 1")
        assert result.column("v") == [1, 2, 3, 4]

    def test_union_all_keeps_duplicates(self, db):
        result = db.execute(
            "SELECT v FROM a UNION ALL SELECT v FROM b ORDER BY 1"
        )
        assert result.column("v") == [1, 2, 2, 2, 3, 3, 4]

    def test_union_column_names_from_left(self, db):
        result = db.execute("SELECT v AS left_name FROM a UNION SELECT v FROM b")
        assert result.columns == ["left_name"]

    def test_union_of_heterogeneous_literals(self, db):
        result = db.execute("SELECT 'x', 1 UNION SELECT 'y', 2 ORDER BY 2")
        assert result.rows == [("x", 1), ("y", 2)]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT v FROM a UNION SELECT v, v FROM b")

    def test_union_dedup_includes_nulls(self, db):
        db.execute("INSERT INTO a VALUES (NULL)")
        db.execute("INSERT INTO b VALUES (NULL)")
        result = db.execute("SELECT v FROM a UNION SELECT v FROM b")
        assert result.column("v").count(None) == 1


class TestIntersectExcept:
    def test_intersect(self, db):
        result = db.execute(
            "SELECT v FROM a INTERSECT SELECT v FROM b ORDER BY 1"
        )
        assert result.column("v") == [2, 3]

    def test_except(self, db):
        result = db.execute("SELECT v FROM a EXCEPT SELECT v FROM b")
        assert result.column("v") == [1]

    def test_except_removes_duplicates_from_left(self, db):
        result = db.execute("SELECT v FROM a EXCEPT SELECT v FROM b WHERE v = 4")
        assert sorted(result.column("v")) == [1, 2, 3]

    def test_chained_operations_left_associative(self, db):
        result = db.execute(
            "SELECT v FROM a UNION SELECT v FROM b EXCEPT SELECT 4 ORDER BY 1"
        )
        assert result.column("v") == [1, 2, 3]


class TestHomogenisation:
    """The paper's 5.2 pattern: UNION of different object types cast to a
    common result type with NULL-filled attributes."""

    def test_union_with_null_casts(self, db):
        result = db.execute(
            "SELECT v, CAST(NULL AS INTEGER) AS extra FROM a WHERE v = 1 "
            "UNION SELECT 99, v FROM b WHERE v = 4"
        )
        rows = sorted(result.rows)
        assert rows == [(1, None), (99, 4)]

    def test_union_all_in_one_statement_with_where(self, db):
        result = db.execute(
            "SELECT v FROM a WHERE v > 1 UNION ALL SELECT v FROM b WHERE v < 3 "
            "ORDER BY 1"
        )
        assert result.column("v") == [2, 2, 2, 3]
