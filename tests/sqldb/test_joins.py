"""Join semantics: inner, left, cross; index selection must not change
results (the planner keeps full residual predicates)."""

import pytest

from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR(20));
        CREATE TABLE emp (
            id INTEGER PRIMARY KEY,
            name VARCHAR(20),
            dept_id INTEGER,
            salary INTEGER
        );
        CREATE INDEX emp_dept ON emp (dept_id)
        """
    )
    for row in [(1, "design"), (2, "testing"), (3, "empty")]:
        db.execute("INSERT INTO dept VALUES (?, ?)", row)
    employees = [
        (10, "ada", 1, 120),
        (11, "bob", 1, 90),
        (12, "cep", 2, 100),
        (13, "dee", None, 80),
    ]
    for row in employees:
        db.execute("INSERT INTO emp VALUES (?, ?, ?, ?)", row)
    return db


class TestInnerJoin:
    def test_join_on_equality(self, db):
        result = db.execute(
            "SELECT emp.name, dept.name FROM emp JOIN dept "
            "ON emp.dept_id = dept.id ORDER BY emp.name"
        )
        assert result.rows == [
            ("ada", "design"),
            ("bob", "design"),
            ("cep", "testing"),
        ]

    def test_null_never_joins(self, db):
        result = db.execute(
            "SELECT emp.name FROM emp JOIN dept ON emp.dept_id = dept.id"
        )
        assert "dee" not in result.column("name")

    def test_join_with_extra_condition(self, db):
        result = db.execute(
            "SELECT emp.name FROM emp JOIN dept "
            "ON emp.dept_id = dept.id AND emp.salary > 95"
        )
        assert sorted(result.column("name")) == ["ada", "cep"]

    def test_three_way_join(self, db):
        db.execute_script(
            "CREATE TABLE badge (emp_id INTEGER PRIMARY KEY, code VARCHAR(8))"
        )
        db.execute("INSERT INTO badge VALUES (10, 'A-1'), (12, 'C-2')")
        result = db.execute(
            "SELECT badge.code, dept.name FROM emp "
            "JOIN dept ON emp.dept_id = dept.id "
            "JOIN badge ON badge.emp_id = emp.id ORDER BY 1"
        )
        assert result.rows == [("A-1", "design"), ("C-2", "testing")]

    def test_comma_join_with_where(self, db):
        result = db.execute(
            "SELECT emp.name FROM emp, dept "
            "WHERE emp.dept_id = dept.id AND dept.name = 'testing'"
        )
        assert result.column("name") == ["cep"]

    def test_self_join_with_aliases(self, db):
        result = db.execute(
            "SELECT a.name, b.name FROM emp AS a JOIN emp AS b "
            "ON a.dept_id = b.dept_id WHERE a.id < b.id"
        )
        assert result.rows == [("ada", "bob")]

    def test_join_non_equi_condition(self, db):
        result = db.execute(
            "SELECT a.name FROM emp a JOIN emp b ON a.salary < b.salary "
            "WHERE b.name = 'ada'"
        )
        assert sorted(result.column("name")) == ["bob", "cep", "dee"]


class TestLeftJoin:
    def test_left_join_pads_with_nulls(self, db):
        result = db.execute(
            "SELECT emp.name, dept.name FROM emp LEFT JOIN dept "
            "ON emp.dept_id = dept.id ORDER BY emp.id"
        )
        assert result.rows[-1] == ("dee", None)
        assert len(result) == 4

    def test_left_join_unmatched_right_rows_absent(self, db):
        result = db.execute(
            "SELECT dept.name, emp.name FROM dept LEFT JOIN emp "
            "ON emp.dept_id = dept.id WHERE emp.id IS NULL"
        )
        assert result.rows == [("empty", None)]


class TestCrossJoin:
    def test_cross_join_cardinality(self, db):
        result = db.execute("SELECT * FROM dept CROSS JOIN dept AS d2")
        assert len(result) == 9


class TestIndexEquivalence:
    """The same query must return identical rows with and without indexes
    (the planner's index paths keep full residual predicates)."""

    @pytest.mark.parametrize(
        "sql,params",
        [
            ("SELECT * FROM emp WHERE dept_id = ? ORDER BY id", [1]),
            (
                "SELECT emp.name FROM emp JOIN dept ON emp.dept_id = dept.id "
                "ORDER BY 1",
                [],
            ),
            (
                "SELECT emp.name FROM dept JOIN emp ON emp.dept_id = dept.id "
                "AND emp.salary > 91 ORDER BY 1",
                [],
            ),
        ],
    )
    def test_same_results_without_index(self, db, sql, params):
        with_index = db.execute(sql, params).rows
        plain = Database()
        plain.execute_script(
            """
            CREATE TABLE dept (id INTEGER, name VARCHAR(20));
            CREATE TABLE emp (id INTEGER, name VARCHAR(20),
                              dept_id INTEGER, salary INTEGER)
            """
        )
        for row in db.execute("SELECT * FROM dept").rows:
            plain.execute("INSERT INTO dept VALUES (?, ?)", row)
        for row in db.execute("SELECT * FROM emp").rows:
            plain.execute("INSERT INTO emp VALUES (?, ?, ?, ?)", row)
        assert plain.execute(sql, params).rows == with_index

    def test_index_probe_counter_moves(self, db):
        # Sanity: the indexed point query actually uses the index.
        from repro.sqldb.parser import parse_statement
        from repro.sqldb.planner import Planner
        from repro.sqldb.executor import IndexLookup

        plan = Planner(db.catalog, db.functions).plan_select(
            parse_statement("SELECT * FROM emp WHERE dept_id = ?")
        )

        def find_index_lookup(op):
            if isinstance(op, IndexLookup):
                return True
            for attr in ("child", "left", "right"):
                child = getattr(op, attr, None)
                if child is not None and find_index_lookup(child):
                    return True
            return False

        assert find_index_lookup(plan.root)
