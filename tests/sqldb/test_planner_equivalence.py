"""Property test: the costed planner never changes query results.

Two databases hold identical data; one plans rule-based, the other
cost-based with fresh ANALYZE statistics.  Whatever plans they pick
(seq scans, index probes, reordered comma joins), the answers must be
identical — ordered when the query orders, as multisets otherwise.
This is the safety net behind turning cost-based planning on by
default.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),  # a: skewed, indexed
        st.integers(min_value=-5, max_value=5),  # b: few distinct values
        st.one_of(st.none(), st.integers(min_value=0, max_value=100)),  # v
    ),
    min_size=0,
    max_size=60,
)

QUERIES = [
    ("SELECT * FROM t WHERE a = ?", (3,)),
    ("SELECT * FROM t WHERE a = ? AND b = ?", (3, 1)),
    ("SELECT id FROM t WHERE id = ?", (5,)),
    ("SELECT id FROM t WHERE a IN (1, 1, 2, 3)", ()),
    ("SELECT * FROM t WHERE a = ? OR b = ?", (2, -1)),
    ("SELECT * FROM t WHERE v IS NULL", ()),
    ("SELECT COUNT(*), SUM(v) FROM t WHERE a < ?", (10,)),
    ("SELECT * FROM t ORDER BY id", ()),
    (
        "SELECT t.id, o.id FROM t, o WHERE o.id = ? AND o.b = t.b",
        (2,),
    ),
    (
        "SELECT t.id, o.id FROM t JOIN o ON t.b = o.b WHERE t.a = ?",
        (1,),
    ),
]


def build(rows, planner_mode):
    db = Database(planner_mode=planner_mode)
    db.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, "
        "v INTEGER)"
    )
    db.execute("CREATE INDEX t_a ON t (a)")
    db.execute("CREATE TABLE o (id INTEGER PRIMARY KEY, b INTEGER)")
    db.executemany(
        "INSERT INTO t VALUES (?, ?, ?, ?)",
        [(i, a, b, v) for i, (a, b, v) in enumerate(rows)],
    )
    db.executemany(
        "INSERT INTO o VALUES (?, ?)",
        [(i, (i * 3) % 7 - 3) for i in range(10)],
    )
    return db


@given(rows_strategy)
@settings(max_examples=25, deadline=None)
def test_cost_and_rule_planners_agree(rows):
    rule_db = build(rows, "rule")
    cost_db = build(rows, "cost")
    cost_db.execute("ANALYZE")
    for sql, params in QUERIES:
        rule_result = rule_db.execute(sql, params)
        cost_result = cost_db.execute(sql, params)
        assert cost_result.columns == rule_result.columns, sql
        if "ORDER BY" in sql:
            assert cost_result.rows == rule_result.rows, sql
        else:
            assert Counter(cost_result.rows) == Counter(rule_result.rows), sql


@given(rows_strategy)
@settings(max_examples=10, deadline=None)
def test_stale_stats_never_change_results(rows):
    """Statistics collected before the data changed (every row deleted
    and reinserted shifted) may mislead the cost model, but never the
    answer."""
    cost_db = build(rows, "cost")
    cost_db.execute("ANALYZE")
    cost_db.execute("DELETE FROM t WHERE a >= ?", (15,))
    rule_db = build(rows, "rule")
    rule_db.execute("DELETE FROM t WHERE a >= ?", (15,))
    for sql, params in QUERIES:
        rule_result = rule_db.execute(sql, params)
        cost_result = cost_db.execute(sql, params)
        if "ORDER BY" in sql:
            assert cost_result.rows == rule_result.rows, sql
        else:
            assert Counter(cost_result.rows) == Counter(rule_result.rows), sql
