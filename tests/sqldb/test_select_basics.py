"""End-to-end SELECT semantics on small tables."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE parts (
            id INTEGER PRIMARY KEY,
            name VARCHAR(20),
            weight DOUBLE,
            state VARCHAR(10)
        )
        """
    )
    rows = [
        (1, "bolt", 0.1, "released"),
        (2, "nut", 0.05, "released"),
        (3, "frame", 12.5, "in_work"),
        (4, "wheel", 3.0, None),
    ]
    for row in rows:
        db.execute("INSERT INTO parts VALUES (?, ?, ?, ?)", row)
    return db


class TestProjection:
    def test_select_star_returns_all_columns(self, db):
        result = db.execute("SELECT * FROM parts WHERE id = 1")
        assert result.columns == ["id", "name", "weight", "state"]
        assert result.rows == [(1, "bolt", 0.1, "released")]

    def test_projection_order_and_alias(self, db):
        result = db.execute("SELECT name AS part_name, id FROM parts WHERE id = 2")
        assert result.columns == ["part_name", "id"]
        assert result.rows == [("nut", 2)]

    def test_computed_column(self, db):
        result = db.execute("SELECT weight * 2 FROM parts WHERE id = 3")
        assert result.scalar() == 25.0

    def test_select_constant_without_from(self, db):
        assert db.execute("SELECT 2 + 3").scalar() == 5

    def test_unknown_column_raises(self, db):
        with pytest.raises(Exception):
            db.execute("SELECT nonsense FROM parts")

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM missing")


class TestFiltering:
    def test_equality(self, db):
        assert len(db.execute("SELECT * FROM parts WHERE state = 'released'")) == 2

    def test_inequality_excludes_nulls(self, db):
        # state of 'wheel' is NULL: <> is UNKNOWN, so the row is dropped.
        result = db.execute("SELECT id FROM parts WHERE state <> 'released'")
        assert result.column("id") == [3]

    def test_is_null(self, db):
        assert db.execute("SELECT id FROM parts WHERE state IS NULL").scalar() == 4

    def test_is_not_null(self, db):
        assert len(db.execute("SELECT * FROM parts WHERE state IS NOT NULL")) == 3

    def test_between(self, db):
        result = db.execute("SELECT id FROM parts WHERE weight BETWEEN 0.1 AND 4")
        assert sorted(result.column("id")) == [1, 4]

    def test_like(self, db):
        result = db.execute("SELECT name FROM parts WHERE name LIKE '%t'")
        assert sorted(result.column("name")) == ["bolt", "nut"]

    def test_like_underscore(self, db):
        assert db.execute("SELECT name FROM parts WHERE name LIKE 'n_t'").scalar() == "nut"

    def test_in_list(self, db):
        result = db.execute("SELECT id FROM parts WHERE id IN (1, 3, 99)")
        assert sorted(result.column("id")) == [1, 3]

    def test_not_in_list(self, db):
        result = db.execute("SELECT id FROM parts WHERE id NOT IN (1, 2, 3)")
        assert result.column("id") == [4]

    def test_and_or_combination(self, db):
        result = db.execute(
            "SELECT id FROM parts WHERE state = 'released' AND weight < 0.08 "
            "OR id = 3"
        )
        assert sorted(result.column("id")) == [2, 3]

    def test_parameters(self, db):
        result = db.execute("SELECT name FROM parts WHERE id = ?", [3])
        assert result.scalar() == "frame"

    def test_missing_parameter_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM parts WHERE id = ?")


class TestOrderingAndLimit:
    def test_order_by_column(self, db):
        result = db.execute("SELECT name FROM parts ORDER BY weight")
        assert result.column("name") == ["nut", "bolt", "wheel", "frame"]

    def test_order_by_desc(self, db):
        result = db.execute("SELECT id FROM parts ORDER BY weight DESC")
        assert result.column("id") == [3, 4, 1, 2]

    def test_order_by_position(self, db):
        result = db.execute("SELECT weight, id FROM parts ORDER BY 1")
        assert result.column("id") == [2, 1, 4, 3]

    def test_nulls_sort_last_ascending(self, db):
        result = db.execute("SELECT state FROM parts ORDER BY state")
        assert result.column("state")[-1] is None

    def test_order_by_multiple_keys(self, db):
        db.execute("INSERT INTO parts VALUES (5, 'axle', 3.0, 'in_work')")
        result = db.execute("SELECT id FROM parts ORDER BY weight DESC, id DESC")
        assert result.column("id")[:3] == [3, 5, 4]

    def test_limit(self, db):
        assert len(db.execute("SELECT * FROM parts ORDER BY id LIMIT 2")) == 2

    def test_limit_zero(self, db):
        assert len(db.execute("SELECT * FROM parts LIMIT 0")) == 0

    def test_order_by_position_out_of_range(self, db):
        with pytest.raises(Exception):
            db.execute("SELECT id FROM parts ORDER BY 9")


class TestDistinct:
    def test_distinct_rows(self, db):
        result = db.execute("SELECT DISTINCT state FROM parts WHERE state = 'released'")
        assert len(result) == 1

    def test_distinct_keeps_null_once(self, db):
        db.execute("INSERT INTO parts VALUES (6, 'shim', 0.01, NULL)")
        result = db.execute("SELECT DISTINCT state FROM parts")
        states = result.column("state")
        assert states.count(None) == 1


class TestExpressionsInQueries:
    def test_case_expression(self, db):
        result = db.execute(
            "SELECT name, CASE WHEN weight > 1 THEN 'heavy' ELSE 'light' END "
            "AS category FROM parts ORDER BY id"
        )
        assert result.column("category") == ["light", "light", "heavy", "heavy"]

    def test_scalar_functions(self, db):
        assert db.execute("SELECT UPPER(name) FROM parts WHERE id = 1").scalar() == "BOLT"
        assert db.execute("SELECT LENGTH(name) FROM parts WHERE id = 2").scalar() == 3
        assert db.execute("SELECT ABS(-5)").scalar() == 5

    def test_integer_division_truncates(self, db):
        assert db.execute("SELECT 7 / 2").scalar() == 3
        assert db.execute("SELECT -7 / 2").scalar() == -3  # toward zero

    def test_float_division(self, db):
        assert db.execute("SELECT 7.0 / 2").scalar() == 3.5

    def test_division_by_zero_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT 1 / 0")

    def test_string_concatenation(self, db):
        assert db.execute("SELECT 'a' || 'b' || 'c'").scalar() == "abc"

    def test_concat_with_null_is_null(self, db):
        assert db.execute("SELECT 'a' || NULL").scalar() is None

    def test_coalesce(self, db):
        result = db.execute(
            "SELECT COALESCE(state, 'unknown') FROM parts WHERE id = 4"
        )
        assert result.scalar() == "unknown"

    def test_nullif(self, db):
        assert db.execute("SELECT NULLIF(1, 1)").scalar() is None
        assert db.execute("SELECT NULLIF(2, 1)").scalar() == 2

    def test_cast(self, db):
        assert db.execute("SELECT CAST('12' AS INTEGER)").scalar() == 12
        assert db.execute("SELECT CAST(weight AS INTEGER) FROM parts WHERE id = 3").scalar() == 12


class TestOffset:
    def test_limit_with_offset(self, db):
        result = db.execute("SELECT id FROM parts ORDER BY id LIMIT 2 OFFSET 1")
        assert result.column("id") == [2, 3]

    def test_offset_without_limit(self, db):
        result = db.execute("SELECT id FROM parts ORDER BY id OFFSET 3")
        assert result.column("id") == [4]

    def test_offset_beyond_result_is_empty(self, db):
        assert len(db.execute("SELECT id FROM parts OFFSET 99")) == 0

    def test_parameterised_pagination(self, db):
        page_size = 2
        pages = [
            db.execute(
                "SELECT id FROM parts ORDER BY id LIMIT ? OFFSET ?",
                [page_size, page * page_size],
            ).column("id")
            for page in range(3)
        ]
        assert pages == [[1, 2], [3, 4], []]

    def test_offset_renders_and_reparses(self, db):
        from repro.sqldb.parser import parse_statement
        from repro.sqldb.render import render_statement

        sql = "SELECT id FROM parts ORDER BY id LIMIT 2 OFFSET 1"
        rendered = render_statement(parse_statement(sql))
        assert db.execute(rendered).column("id") == [2, 3]
