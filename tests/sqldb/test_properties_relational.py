"""Property tests: SQL results vs. straightforward Python evaluation."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database

rows_left = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=-50, max_value=50),
    ),
    max_size=25,
)
rows_right = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=-50, max_value=50),
    ),
    max_size=25,
)


def load(db, table, rows):
    db.execute(f"CREATE TABLE {table} (k INTEGER, v INTEGER)")
    db.executemany(f"INSERT INTO {table} VALUES (?, ?)", rows)


class TestJoinsAgainstReference:
    @given(rows_left, rows_right)
    @settings(max_examples=30, deadline=None)
    def test_inner_equi_join(self, left, right):
        db = Database()
        load(db, "l", left)
        load(db, "r", right)
        result = db.execute(
            "SELECT l.k, l.v, r.v FROM l JOIN r ON l.k = r.k"
        )
        expected = sorted(
            (lk, lv, rv) for lk, lv in left for rk, rv in right if lk == rk
        )
        assert sorted(result.rows) == expected

    @given(rows_left, rows_right)
    @settings(max_examples=30, deadline=None)
    def test_left_join(self, left, right):
        db = Database()
        load(db, "l", left)
        load(db, "r", right)
        result = db.execute(
            "SELECT l.k, r.v FROM l LEFT JOIN r ON l.k = r.k"
        )
        expected = []
        for lk, lv in left:
            matches = [rv for rk, rv in right if rk == lk]
            if matches:
                expected.extend((lk, rv) for rv in matches)
            else:
                expected.append((lk, None))
        def key(row):
            return (row[0], -(10**9) if row[1] is None else row[1])

        assert sorted(result.rows, key=key) == sorted(expected, key=key)

    @given(rows_left, rows_right)
    @settings(max_examples=25, deadline=None)
    def test_hash_and_index_joins_agree(self, left, right):
        """The same join with and without an index on the inner side."""
        plain = Database()
        load(plain, "l", left)
        load(plain, "r", right)
        indexed = Database()
        load(indexed, "l", left)
        load(indexed, "r", right)
        indexed.execute("CREATE INDEX r_k ON r (k)")
        sql = "SELECT l.v, r.v FROM l JOIN r ON l.k = r.k"
        assert sorted(plain.execute(sql).rows) == sorted(
            indexed.execute(sql).rows
        )


class TestGroupByAgainstReference:
    @given(rows_left)
    @settings(max_examples=30, deadline=None)
    def test_group_count_sum(self, rows):
        db = Database()
        load(db, "t", rows)
        result = db.execute(
            "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY k"
        )
        expected = defaultdict(list)
        for k, v in rows:
            expected[k].append(v)
        reference = sorted(
            (k, len(vs), sum(vs), min(vs), max(vs))
            for k, vs in expected.items()
        )
        assert sorted(result.rows) == reference

    @given(rows_left, st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_having_threshold(self, rows, threshold):
        db = Database()
        load(db, "t", rows)
        result = db.execute(
            "SELECT k FROM t GROUP BY k HAVING COUNT(*) >= ?", [threshold]
        )
        counts = defaultdict(int)
        for k, __ in rows:
            counts[k] += 1
        expected = sorted(k for k, n in counts.items() if n >= threshold)
        assert sorted(result.column("k")) == expected


class TestSubqueriesAgainstReference:
    @given(rows_left, rows_right)
    @settings(max_examples=30, deadline=None)
    def test_exists_semi_join(self, left, right):
        db = Database()
        load(db, "l", left)
        load(db, "r", right)
        result = db.execute(
            "SELECT l.k, l.v FROM l WHERE EXISTS "
            "(SELECT 1 FROM r WHERE r.k = l.k)"
        )
        right_keys = {rk for rk, __ in right}
        expected = sorted((lk, lv) for lk, lv in left if lk in right_keys)
        assert sorted(result.rows) == expected

    @given(rows_left, rows_right)
    @settings(max_examples=30, deadline=None)
    def test_in_anti_join(self, left, right):
        db = Database()
        load(db, "l", left)
        load(db, "r", right)
        result = db.execute(
            "SELECT l.k FROM l WHERE l.k NOT IN (SELECT k FROM r)"
        )
        right_keys = {rk for rk, __ in right}
        expected = sorted(lk for lk, __ in left if lk not in right_keys)
        assert sorted(result.column("k")) == expected

    @given(rows_left)
    @settings(max_examples=25, deadline=None)
    def test_correlated_count(self, rows):
        db = Database()
        load(db, "t", rows)
        db.execute("CREATE TABLE keys (k INTEGER)")
        keys = sorted({k for k, __ in rows})
        db.executemany("INSERT INTO keys VALUES (?)", [(k,) for k in keys])
        result = db.execute(
            "SELECT k, (SELECT COUNT(*) FROM t WHERE t.k = keys.k) "
            "FROM keys ORDER BY 1"
        )
        counts = defaultdict(int)
        for k, __ in rows:
            counts[k] += 1
        assert result.rows == [(k, counts[k]) for k in keys]


class TestTransactionProperties:
    @given(
        rows_left,
        st.lists(
            st.sampled_from(["insert", "update", "delete"]),
            min_size=1,
            max_size=8,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_rollback_always_restores_snapshot(self, rows, operations, rng):
        db = Database()
        load(db, "t", rows)
        before = sorted(db.execute("SELECT k, v FROM t").rows)
        db.begin()
        next_key = 100
        for operation in operations:
            if operation == "insert":
                db.execute("INSERT INTO t VALUES (?, ?)", [next_key, 1])
                next_key += 1
            elif operation == "update":
                db.execute(
                    "UPDATE t SET v = v + 1 WHERE k = ?",
                    [rng.randint(0, 8)],
                )
            else:
                db.execute(
                    "DELETE FROM t WHERE k = ?", [rng.randint(0, 8)]
                )
        db.rollback()
        assert sorted(db.execute("SELECT k, v FROM t").rows) == before
