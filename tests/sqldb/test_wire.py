"""Wire-format round trips and corruption handling."""

import pytest

from repro.errors import ProtocolError
from repro.sqldb import wire
from repro.sqldb.result import ResultSet


class TestValues:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 2**40, -(2**40), 0.5, -3.25, "", "héllo", "x" * 1000],
    )
    def test_roundtrip(self, value):
        encoded = wire.encode_value(value)
        decoded, offset = wire.decode_value(encoded, 0)
        assert decoded == value
        assert type(decoded) is type(value)
        assert offset == len(encoded)

    def test_unsupported_type_rejected(self):
        with pytest.raises(ProtocolError):
            wire.encode_value(object())

    def test_truncated_value_rejected(self):
        encoded = wire.encode_value(12345)
        with pytest.raises(ProtocolError):
            wire.decode_value(encoded[:-2], 0)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            wire.decode_value(b"Zjunk", 0)

    def test_size_is_deterministic(self):
        assert len(wire.encode_value(7)) == 9  # tag + int64
        assert len(wire.encode_value(None)) == 1
        assert len(wire.encode_value("ab")) == 1 + 4 + 2


class TestQueryFrames:
    def test_roundtrip(self):
        sql = "SELECT * FROM assy WHERE obid = ?"
        encoded = wire.encode_query(sql, [42, "x", None])
        decoded_sql, params = wire.decode_query(encoded)
        assert decoded_sql == sql
        assert params == [42, "x", None]

    def test_no_params(self):
        sql, params = wire.decode_query(wire.encode_query("SELECT 1"))
        assert sql == "SELECT 1"
        assert params == []

    def test_trailing_bytes_rejected(self):
        encoded = wire.encode_query("SELECT 1") + b"x"
        with pytest.raises(ProtocolError):
            wire.decode_query(encoded)

    def test_request_size_grows_with_query_text(self):
        small = len(wire.encode_query("SELECT 1"))
        suffix = " -- " + "x" * 500
        large = len(wire.encode_query("SELECT 1" + suffix))
        assert large - small == len(suffix)


class TestResultFrames:
    def test_roundtrip(self):
        result = ResultSet(
            ["obid", "name", "weight"],
            [(1, "Assy1", 2.5), (2, None, None)],
        )
        decoded = wire.decode_result(wire.encode_result(result))
        assert decoded.columns == result.columns
        assert decoded.rows == result.rows

    def test_empty_result(self):
        decoded = wire.decode_result(wire.encode_result(ResultSet(["a"], [])))
        assert decoded.rows == []
        assert decoded.columns == ["a"]

    def test_dml_rowcount_preserved(self):
        result = ResultSet([], [], rowcount=7)
        assert wire.decode_result(wire.encode_result(result)).rowcount == 7

    def test_corrupted_result_rejected(self):
        encoded = wire.encode_result(ResultSet(["a"], [(1,)]))
        with pytest.raises(ProtocolError):
            wire.decode_result(encoded[:-3])

    def test_node_row_size_near_512_bytes(self):
        """The generator pads node rows to the paper's 512-byte average;
        verify the padding computation against actual encoding."""
        from repro.pdm.generator import payload_length_for
        from repro.pdm.objects import Assembly

        padding = payload_length_for(512)
        assembly = Assembly(
            obid=1_000_000, name="Assy1000000", product=1, payload="p" * padding
        )
        encoded_size = sum(
            len(wire.encode_value(value)) for value in assembly.to_row()
        )
        assert abs(encoded_size - 512) <= 8
