"""Function registry: builtins, stored functions, aggregator unit tests."""

import pytest

from repro.errors import ExecutionError
from repro.sqldb import Database
from repro.sqldb.functions import Aggregator, FunctionRegistry


class TestRegistry:
    def test_builtins_present(self):
        registry = FunctionRegistry()
        for name in ("UPPER", "LOWER", "LENGTH", "ABS", "SUBSTR", "MOD"):
            assert registry.is_registered(name)

    def test_call_case_insensitive(self):
        registry = FunctionRegistry()
        assert registry.call("upper", ["abc"]) == "ABC"

    def test_null_propagation_default(self):
        registry = FunctionRegistry()
        assert registry.call("UPPER", [None]) is None

    def test_null_propagation_opt_out(self):
        registry = FunctionRegistry()
        registry.register("is_missing", lambda x: x is None, propagate_null=False)
        assert registry.call("is_missing", [None]) is True

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            FunctionRegistry().call("nope", [])

    def test_function_error_wrapped(self):
        registry = FunctionRegistry()
        registry.register("boom", lambda: 1 / 0)
        with pytest.raises(ExecutionError):
            registry.call("boom", [])

    def test_reregistration_replaces(self):
        registry = FunctionRegistry()
        registry.register("f", lambda: 1)
        registry.register("f", lambda: 2)
        assert registry.call("f", []) == 2


class TestStoredFunctionsInSQL:
    """The SQL/PSM stand-in (paper Section 3.2): row conditions beyond
    plain predicates call stored functions from the WHERE clause."""

    @pytest.fixture
    def db(self):
        db = Database()
        db.execute("CREATE TABLE lk (obid INTEGER, strc_opt INTEGER)")
        for row in [(1, 1), (2, 2), (3, 3)]:
            db.execute("INSERT INTO lk VALUES (?, ?)", row)
        db.register_function(
            "options_overlap", lambda a, b: (int(a) & int(b)) != 0
        )
        return db

    def test_stored_function_in_where(self, db):
        result = db.execute(
            "SELECT obid FROM lk WHERE options_overlap(strc_opt, 1) ORDER BY 1"
        )
        assert result.column("obid") == [1, 3]

    def test_stored_function_in_select_list(self, db):
        result = db.execute(
            "SELECT options_overlap(strc_opt, 2) FROM lk ORDER BY obid"
        )
        assert result.rows == [(False,), (True,), (True,)]

    def test_stored_function_with_parameter(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM lk WHERE options_overlap(strc_opt, ?)", [2]
        )
        assert result.scalar() == 2

    def test_interval_overlap_function(self, db):
        db.register_function(
            "intervals_overlap",
            lambda a1, a2, b1, b2: a1 <= b2 and b1 <= a2,
        )
        db.execute(
            "CREATE TABLE eff (obid INTEGER, f INTEGER, t INTEGER)"
        )
        db.execute("INSERT INTO eff VALUES (1, 1, 5), (2, 6, 10)")
        result = db.execute(
            "SELECT obid FROM eff WHERE intervals_overlap(f, t, 4, 7) ORDER BY 1"
        )
        assert result.column("obid") == [1, 2]


class TestAggregatorUnit:
    def test_count_star(self):
        aggregator = Aggregator("COUNT", star=True)
        for __ in range(3):
            aggregator.add(None)
        assert aggregator.result() == 3

    def test_sum_ignores_nulls(self):
        aggregator = Aggregator("SUM")
        for value in (1, None, 2):
            aggregator.add(value)
        assert aggregator.result() == 3

    def test_empty_sum_is_null(self):
        assert Aggregator("SUM").result() is None

    def test_empty_count_is_zero(self):
        assert Aggregator("COUNT").result() == 0

    def test_avg(self):
        aggregator = Aggregator("AVG")
        for value in (2, 4):
            aggregator.add(value)
        assert aggregator.result() == 3

    def test_min_max(self):
        low, high = Aggregator("MIN"), Aggregator("MAX")
        for value in (5, 1, 3):
            low.add(value)
            high.add(value)
        assert (low.result(), high.result()) == (1, 5)

    def test_distinct_sum(self):
        aggregator = Aggregator("SUM", distinct=True)
        for value in (2, 2, 3):
            aggregator.add(value)
        assert aggregator.result() == 5

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ExecutionError):
            Aggregator("MEDIAN")
