"""Subquery semantics: EXISTS, IN, scalar; correlation; caching."""

import pytest

from repro.errors import ExecutionError
from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE node (obid INTEGER PRIMARY KEY, kind VARCHAR(8), val INTEGER);
        CREATE TABLE rel (l INTEGER, r INTEGER)
        """
    )
    nodes = [(1, "a", 10), (2, "a", 20), (3, "b", 30), (4, "b", None)]
    for row in nodes:
        db.execute("INSERT INTO node VALUES (?, ?, ?)", row)
    for row in [(1, 3), (2, 3), (2, 4)]:
        db.execute("INSERT INTO rel VALUES (?, ?)", row)
    return db


class TestExists:
    def test_correlated_exists(self, db):
        result = db.execute(
            "SELECT obid FROM node WHERE EXISTS "
            "(SELECT * FROM rel WHERE rel.l = node.obid) ORDER BY 1"
        )
        assert result.column("obid") == [1, 2]

    def test_not_exists(self, db):
        result = db.execute(
            "SELECT obid FROM node WHERE NOT EXISTS "
            "(SELECT * FROM rel WHERE rel.l = node.obid) ORDER BY 1"
        )
        assert result.column("obid") == [3, 4]

    def test_uncorrelated_exists_all_or_nothing(self, db):
        # The paper's 5.3.1 pattern: empty because a 'b' row exists.
        result = db.execute(
            "SELECT * FROM node WHERE NOT EXISTS "
            "(SELECT * FROM node WHERE kind = 'b')"
        )
        assert len(result) == 0

    def test_uncorrelated_exists_passes_when_no_violation(self, db):
        result = db.execute(
            "SELECT * FROM node WHERE NOT EXISTS "
            "(SELECT * FROM node WHERE kind = 'z')"
        )
        assert len(result) == 4

    def test_uncorrelated_subquery_cached(self, db):
        # With caching on, the inner SELECT runs once, not once per row.
        from repro.sqldb.parser import parse_statement
        from repro.sqldb.planner import Planner
        from repro.sqldb.recursive import execute_plan
        from repro.sqldb.executor import ExecutionEnv

        plan = Planner(db.catalog, db.functions).plan_select(
            parse_statement(
                "SELECT * FROM node WHERE NOT EXISTS "
                "(SELECT * FROM node WHERE kind = 'z')"
            )
        )
        env = ExecutionEnv(functions=db.functions)
        execute_plan(plan, env)
        assert env.counters["subquery_executions"] == 1

        env2 = ExecutionEnv(functions=db.functions)
        env2.enable_subquery_cache = False
        execute_plan(plan, env2)
        assert env2.counters["subquery_executions"] == 4  # once per row

    def test_correlated_subquery_not_cached(self, db):
        from repro.sqldb.parser import parse_statement
        from repro.sqldb.planner import Planner
        from repro.sqldb.recursive import execute_plan
        from repro.sqldb.executor import ExecutionEnv

        plan = Planner(db.catalog, db.functions).plan_select(
            parse_statement(
                "SELECT obid FROM node WHERE EXISTS "
                "(SELECT * FROM rel WHERE rel.l = node.obid)"
            )
        )
        env = ExecutionEnv(functions=db.functions)
        execute_plan(plan, env)
        assert env.counters["subquery_executions"] == 4


class TestInSubquery:
    def test_in(self, db):
        result = db.execute(
            "SELECT obid FROM node WHERE obid IN (SELECT r FROM rel) ORDER BY 1"
        )
        assert result.column("obid") == [3, 4]

    def test_not_in(self, db):
        result = db.execute(
            "SELECT obid FROM node WHERE obid NOT IN (SELECT r FROM rel) "
            "ORDER BY 1"
        )
        assert result.column("obid") == [1, 2]

    def test_not_in_with_null_in_set_matches_nothing(self, db):
        db.execute("INSERT INTO rel VALUES (9, NULL)")
        result = db.execute(
            "SELECT obid FROM node WHERE obid NOT IN (SELECT r FROM rel)"
        )
        assert len(result) == 0  # NULL in the set makes NOT IN unknown

    def test_in_requires_single_column(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT * FROM node WHERE obid IN (SELECT l, r FROM rel)")

    def test_correlated_in(self, db):
        result = db.execute(
            "SELECT obid FROM node AS n WHERE 3 IN "
            "(SELECT r FROM rel WHERE rel.l = n.obid) ORDER BY 1"
        )
        assert result.column("obid") == [1, 2]


class TestScalarSubquery:
    def test_scalar_aggregate(self, db):
        result = db.execute(
            "SELECT * FROM node WHERE (SELECT COUNT(*) FROM node) <= 10"
        )
        assert len(result) == 4

    def test_scalar_over_threshold_filters_all(self, db):
        result = db.execute(
            "SELECT * FROM node WHERE (SELECT COUNT(*) FROM node) <= 3"
        )
        assert len(result) == 0

    def test_scalar_in_select_list(self, db):
        result = db.execute("SELECT (SELECT MAX(val) FROM node)")
        assert result.scalar() == 30

    def test_empty_scalar_is_null(self, db):
        result = db.execute(
            "SELECT (SELECT val FROM node WHERE obid = 99) IS NULL"
        )
        assert result.scalar() is True

    def test_multirow_scalar_raises(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT (SELECT val FROM node)")

    def test_correlated_scalar(self, db):
        result = db.execute(
            "SELECT obid, (SELECT COUNT(*) FROM rel WHERE rel.l = node.obid) "
            "FROM node ORDER BY 1"
        )
        assert [row[1] for row in result.rows] == [1, 2, 0, 0]


class TestNestedSubqueries:
    def test_two_levels_of_correlation(self, db):
        # Inner subquery references the middle table AND the outer table.
        result = db.execute(
            "SELECT obid FROM node AS outer_n WHERE EXISTS ("
            "  SELECT * FROM rel WHERE rel.l = outer_n.obid AND EXISTS ("
            "    SELECT * FROM node AS inner_n "
            "    WHERE inner_n.obid = rel.r AND inner_n.kind = 'b'))"
            " ORDER BY 1"
        )
        assert result.column("obid") == [1, 2]

    def test_subquery_in_derived_table(self, db):
        result = db.execute(
            "SELECT kind, total FROM "
            "(SELECT kind, COUNT(*) AS total FROM node GROUP BY kind) AS g "
            "ORDER BY kind"
        )
        assert result.rows == [("a", 2), ("b", 2)]
