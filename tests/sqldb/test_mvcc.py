"""MVCC snapshot reads: visibility, GC, differential and property tests.

The contract under test (DESIGN §14): a ``BEGIN TRANSACTION READ ONLY``
on an MVCC build captures a snapshot at BEGIN and every statement inside
it sees exactly the committed state as of that stamp — regardless of
what writers commit, roll back, insert or delete afterwards — without
acquiring a single lock; and once the last snapshot closes, garbage
collection returns every table to the chainless fast path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.sqldb import Database


def make_db():
    db = Database(mvcc=True)
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    return db


def snapshot_rows(db, session="reader"):
    return db.execute(
        "SELECT id, v FROM t ORDER BY id", session=session
    ).rows


class TestSnapshotVisibility:
    def test_snapshot_ignores_later_commits(self):
        db = make_db()
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        assert snapshot_rows(db) == [(1, 10), (2, 20), (3, 30)]
        # The live (autocommit) view sees the new value immediately.
        assert db.execute("SELECT v FROM t WHERE id = 1").rows == [(99,)]
        db.execute("COMMIT", session="reader")
        # A fresh snapshot starts from the newer commit stamp.
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        assert snapshot_rows(db)[0] == (1, 99)
        db.execute("COMMIT", session="reader")

    def test_snapshot_ignores_uncommitted_writes(self):
        db = make_db()
        db.execute("BEGIN", session="writer")
        db.execute("UPDATE t SET v = 77 WHERE id = 2", session="writer")
        db.execute("INSERT INTO t VALUES (4, 40)", session="writer")
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        assert snapshot_rows(db) == [(1, 10), (2, 20), (3, 30)]
        db.execute("ROLLBACK", session="writer")
        assert snapshot_rows(db) == [(1, 10), (2, 20), (3, 30)]
        db.execute("COMMIT", session="reader")

    def test_deleted_row_stays_visible_to_older_snapshot(self):
        db = make_db()
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        db.execute("DELETE FROM t WHERE id = 3")
        assert snapshot_rows(db) == [(1, 10), (2, 20), (3, 30)]
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
        db.execute("COMMIT", session="reader")
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        assert snapshot_rows(db) == [(1, 10), (2, 20)]
        db.execute("COMMIT", session="reader")

    def test_insert_after_begin_is_invisible(self):
        db = make_db()
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        db.execute("INSERT INTO t VALUES (4, 40)")
        assert snapshot_rows(db) == [(1, 10), (2, 20), (3, 30)]
        db.execute("COMMIT", session="reader")

    def test_index_probe_under_snapshot(self):
        db = make_db()
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        db.execute("DELETE FROM t WHERE id = 2")
        rows = db.execute(
            "SELECT v FROM t WHERE id = ?", [1], session="reader"
        ).rows
        assert rows == [(10,)]
        rows = db.execute(
            "SELECT v FROM t WHERE id = ?", [2], session="reader"
        ).rows
        assert rows == [(20,)]
        db.execute("COMMIT", session="reader")

    def test_two_snapshots_see_their_own_stamps(self):
        db = make_db()
        db.execute("BEGIN TRANSACTION READ ONLY", session="old")
        db.execute("UPDATE t SET v = 11 WHERE id = 1")
        db.execute("BEGIN TRANSACTION READ ONLY", session="new")
        db.execute("UPDATE t SET v = 12 WHERE id = 1")
        assert snapshot_rows(db, "old")[0] == (1, 10)
        assert snapshot_rows(db, "new")[0] == (1, 11)
        assert db.execute("SELECT v FROM t WHERE id = 1").rows == [(12,)]
        db.execute("COMMIT", session="old")
        db.execute("COMMIT", session="new")


class TestReadOnlyEnforcement:
    @pytest.mark.parametrize(
        "sql",
        [
            "INSERT INTO t VALUES (9, 90)",
            "UPDATE t SET v = 0 WHERE id = 1",
            "DELETE FROM t WHERE id = 1",
        ],
    )
    def test_dml_rejected_inside_read_only_txn(self, sql):
        db = make_db()
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        with pytest.raises(ExecutionError, match="READ ONLY"):
            db.execute(sql, session="reader")

    def test_read_only_works_without_mvcc_build(self):
        """On a 2PL-only build the same SQL degrades to a locking
        read-only transaction: reads work, DML is still rejected."""
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        assert snapshot_rows(db) == [(1, 10)]
        with pytest.raises(ExecutionError, match="READ ONLY"):
            db.execute("DELETE FROM t", session="reader")
        db.execute("ROLLBACK", session="reader")


class TestGarbageCollection:
    def test_chains_drain_once_snapshots_close(self):
        db = make_db()
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        db.execute("DELETE FROM t WHERE id = 2")
        assert db.mvcc.chain_count() > 0
        db.execute("COMMIT", session="reader")
        assert db.mvcc.chain_count() == 0
        assert db.mvcc.dump()["tables"] == {}

    def test_commit_without_open_snapshots_leaves_no_chains(self):
        db = make_db()
        db.execute("UPDATE t SET v = 1 WHERE id = 1")
        db.execute("DELETE FROM t WHERE id = 3")
        db.execute("INSERT INTO t VALUES (5, 50)")
        assert db.mvcc.chain_count() == 0

    def test_counters_track_the_lifecycle(self):
        db = make_db()
        base_created = db.statistics["versions_created"]
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        snapshot_rows(db)
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        db.execute("COMMIT", session="reader")
        assert db.statistics["readonly_txns"] == 1
        assert db.statistics["snapshot_reads"] >= 1
        assert db.statistics["versions_created"] > base_created
        assert db.statistics["versions_gc"] > 0


class TestRowColumnarDifferential:
    """The row executor is the semantics oracle: under a snapshot both
    pipelines must return identical rows (the columnar chunk cache is
    keyed by snapshot stamp, so it may never leak live data in)."""

    QUERIES = [
        ("SELECT id, v FROM t ORDER BY id", []),
        ("SELECT SUM(v) FROM t", []),
        ("SELECT v FROM t WHERE v > ? ORDER BY v", [15]),
        ("SELECT COUNT(*) FROM t WHERE id <> ?", [2]),
    ]

    def test_row_and_columnar_agree_under_snapshot(self):
        db = make_db()
        db.execute("BEGIN TRANSACTION READ ONLY", session="reader")
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("INSERT INTO t VALUES (4, 40)")
        for sql, params in self.QUERIES:
            row = db.execute(sql, params, session="reader", mode="row")
            col = db.execute(sql, params, session="reader", mode="columnar")
            assert col.rows == row.rows, sql
        # And the snapshot answer differs from the live answer, so the
        # differential above actually exercised the version chains.
        live = db.execute("SELECT id, v FROM t ORDER BY id").rows
        snap = snapshot_rows(db)
        assert live != snap
        db.execute("COMMIT", session="reader")

    def test_columnar_snapshot_cache_is_stamp_keyed(self):
        db = make_db()
        db.execute("BEGIN TRANSACTION READ ONLY", session="old")
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        db.execute("BEGIN TRANSACTION READ ONLY", session="new")
        old = db.execute(
            "SELECT SUM(v) FROM t", session="old", mode="columnar"
        ).scalar()
        new = db.execute(
            "SELECT SUM(v) FROM t", session="new", mode="columnar"
        ).scalar()
        assert old == 60
        assert new == 149
        db.execute("COMMIT", session="old")
        db.execute("COMMIT", session="new")


OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=0, max_value=50),
        ),
        st.tuples(st.just("delete"), st.integers(min_value=1, max_value=4)),
        st.tuples(st.just("open")),
        st.tuples(st.just("read")),
        st.tuples(st.just("close")),
    ),
    max_size=40,
)


class TestVisibilityProperty:
    @given(OPS)
    @settings(max_examples=60, deadline=None)
    def test_every_snapshot_always_reads_its_begin_state(self, ops):
        """Random writer/snapshot interleavings: at any point, every open
        snapshot must read exactly the committed state that existed when
        it began — the model is a plain dict copied at BEGIN."""
        db = Database(mvcc=True)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        committed = {}
        snapshots = {}  # session -> expected {id: v}
        sequence = 0
        for op in ops:
            if op[0] == "write":
                __, key, value = op
                if key in committed:
                    db.execute(
                        "UPDATE t SET v = ? WHERE id = ?", [value, key]
                    )
                else:
                    db.execute("INSERT INTO t VALUES (?, ?)", [key, value])
                committed[key] = value
            elif op[0] == "delete":
                __, key = op
                db.execute("DELETE FROM t WHERE id = ?", [key])
                committed.pop(key, None)
            elif op[0] == "open":
                sequence += 1
                session = f"s{sequence}"
                db.execute("BEGIN TRANSACTION READ ONLY", session=session)
                snapshots[session] = dict(committed)
            elif op[0] == "read" and snapshots:
                for session, expected in snapshots.items():
                    rows = db.execute(
                        "SELECT id, v FROM t ORDER BY id", session=session
                    ).rows
                    assert rows == sorted(expected.items())
            elif op[0] == "close" and snapshots:
                session = next(iter(snapshots))
                rows = db.execute(
                    "SELECT id, v FROM t ORDER BY id", session=session
                ).rows
                assert rows == sorted(snapshots[session].items())
                db.execute("COMMIT", session=session)
                del snapshots[session]
        for session, expected in snapshots.items():
            rows = db.execute(
                "SELECT id, v FROM t ORDER BY id", session=session
            ).rows
            assert rows == sorted(expected.items())
            db.execute("COMMIT", session=session)
        # Every snapshot closed: GC must return to the chainless state.
        assert db.mvcc.chain_count() == 0
        assert db.execute("SELECT id, v FROM t ORDER BY id").rows == sorted(
            committed.items()
        )
