"""Type system and three-valued logic tests."""

import pytest

from repro.errors import TypeMismatchError
from repro.sqldb.types import (
    BOOLEAN,
    CHAR,
    DOUBLE,
    INTEGER,
    VARCHAR,
    coerce_value,
    compare_values,
    infer_type,
    is_null,
    logical_and,
    logical_not,
    logical_or,
    type_from_name,
)


class TestTypeNames:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("integer", "INTEGER"),
            ("INT", "INTEGER"),
            ("bigint", "INTEGER"),
            ("double", "DOUBLE"),
            ("float", "DOUBLE"),
            ("real", "DOUBLE"),
            ("boolean", "BOOLEAN"),
        ],
    )
    def test_aliases(self, name, expected):
        assert type_from_name(name).name == expected

    def test_varchar_length(self):
        sql_type = type_from_name("varchar", 30)
        assert sql_type.name == "VARCHAR"
        assert sql_type.length == 30
        assert str(sql_type) == "VARCHAR(30)"

    def test_char_defaults_to_length_one(self):
        assert type_from_name("char").length == 1

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            type_from_name("blob")

    def test_predicates(self):
        assert INTEGER.is_numeric
        assert DOUBLE.is_numeric
        assert VARCHAR(5).is_character
        assert CHAR(1).is_character
        assert not BOOLEAN.is_numeric


class TestCoercion:
    def test_null_passes_through(self):
        assert coerce_value(None, INTEGER) is None

    def test_int_from_string(self):
        assert coerce_value("42", INTEGER) == 42

    def test_float_from_int(self):
        assert coerce_value(3, DOUBLE) == 3.0

    def test_bool_from_string(self):
        assert coerce_value("true", BOOLEAN) is True
        assert coerce_value("F", BOOLEAN) is False

    def test_bool_from_number(self):
        assert coerce_value(1, BOOLEAN) is True
        assert coerce_value(0, BOOLEAN) is False

    def test_string_from_number(self):
        assert coerce_value(5, VARCHAR(10)) == "5"

    def test_varchar_truncates_on_cast(self):
        assert coerce_value("abcdef", VARCHAR(3)) == "abc"

    def test_invalid_int_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("not-a-number", INTEGER)

    def test_invalid_bool_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("maybe", BOOLEAN)


class TestInference:
    def test_infer(self):
        assert infer_type(1).name == "INTEGER"
        assert infer_type(1.5).name == "DOUBLE"
        assert infer_type(True).name == "BOOLEAN"
        assert infer_type("x").name == "VARCHAR"

    def test_is_null(self):
        assert is_null(None)
        assert not is_null(0)
        assert not is_null("")


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert logical_and(True, True) is True
        assert logical_and(True, False) is False
        assert logical_and(False, None) is False  # False dominates
        assert logical_and(True, None) is None
        assert logical_and(None, None) is None

    def test_or_truth_table(self):
        assert logical_or(False, False) is False
        assert logical_or(True, None) is True  # True dominates
        assert logical_or(False, None) is None
        assert logical_or(None, None) is None

    def test_not(self):
        assert logical_not(True) is False
        assert logical_not(False) is True
        assert logical_not(None) is None


class TestComparison:
    def test_numbers(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 2) == 0
        assert compare_values(3, 2) == 1

    def test_mixed_numeric_types(self):
        assert compare_values(1, 1.0) == 0

    def test_strings(self):
        assert compare_values("a", "b") == -1

    def test_null_propagates(self):
        assert compare_values(None, 1) is None
        assert compare_values("x", None) is None

    def test_cross_type_raises(self):
        with pytest.raises(TypeMismatchError):
            compare_values(1, "1")

    def test_bool_compares_as_number(self):
        assert compare_values(True, 1) == 0
        assert compare_values(False, 1) == -1
