"""Tokeniser tests."""

import pytest

from repro.errors import LexerError
from repro.sqldb.lexer import tokenize
from repro.sqldb.tokens import TokenKind


def kinds(sql):
    return [token.kind for token in tokenize(sql)[:-1]]


def values(sql):
    return [token.value for token in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        token = tokenize("MyTable")[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == "MyTable"

    def test_eof_token_terminates(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].kind is TokenKind.EOF

    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("   \n\t ")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_integer_literal(self):
        assert values("42") == [42]

    def test_float_literal(self):
        assert values("3.25") == [3.25]

    def test_float_with_exponent(self):
        assert values("1e3 2.5E-2") == [1000.0, 0.025]

    def test_dot_starts_number_when_followed_by_digit(self):
        assert values(".5") == [0.5]

    def test_parameter_placeholder(self):
        tokens = tokenize("obid = ?")
        assert tokens[2].kind is TokenKind.PARAM

    def test_punctuation(self):
        assert values("( ) , . ;") == ["(", ")", ",", ".", ";"]


class TestStrings:
    def test_simple_string(self):
        assert values("'hello'") == ["hello"]

    def test_doubled_quote_escape(self):
        assert values("'it''s'") == ["it's"]

    def test_empty_string(self):
        assert values("''") == [""]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_quoted_identifier(self):
        tokens = tokenize('"EFF_FROM"')
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "EFF_FROM"

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(LexerError):
            tokenize('"oops')

    def test_empty_quoted_identifier_raises(self):
        with pytest.raises(LexerError):
            tokenize('""')


class TestOperators:
    @pytest.mark.parametrize(
        "operator", ["=", "<", ">", "<=", ">=", "<>", "!=", "+", "-", "*", "/", "%", "||"]
    )
    def test_operator_tokenised(self, operator):
        tokens = tokenize(f"a {operator} b")
        assert tokens[1].kind is TokenKind.OPERATOR
        assert tokens[1].value == operator

    def test_greedy_matching(self):
        # "<=" must not tokenise as "<" then "=".
        tokens = tokenize("a<=b")
        assert tokens[1].value == "<="

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("SELECT @")
        assert excinfo.value.position == 7


class TestComments:
    def test_line_comment_skipped(self):
        assert values("SELECT -- comment\n 1") == ["SELECT", 1]

    def test_line_comment_at_end_of_input(self):
        assert values("SELECT 1 -- trailing") == ["SELECT", 1]

    def test_block_comment_skipped(self):
        assert values("SELECT /* hi */ 1") == ["SELECT", 1]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("SELECT /* oops")

    def test_division_not_mistaken_for_comment(self):
        assert values("4/2") == [4, "/", 2]


class TestPaperQueries:
    def test_recursive_query_header_tokenises(self):
        sql = "WITH RECURSIVE rtbl (type, obid, name, dec) AS (SELECT 1)"
        token_values = values(sql)
        assert "WITH" in token_values
        assert "RECURSIVE" in token_values
        assert "rtbl" in token_values

    def test_left_and_right_column_names(self):
        # The paper's link table uses SQL-keyword-ish column names.
        token_values = values("SELECT left, right FROM link")
        assert "LEFT" in token_values  # keyword; parser soft-handles it
        assert "right" in token_values  # plain identifier
