"""Cost-based access-path and join-order decisions, plus the regression
tests for the planner bugfix sweep:

* ``_try_index_scan`` no longer grabs the first matching index — without
  statistics it deterministically prefers unique indexes, with
  statistics it prices every candidate against the sequential scan;
* ``_try_multikey_lookup`` deduplicates repeated IN-list literals at
  plan time (repeated *parameters* were already deduplicated at run
  time by the operator itself);
* the greedy comma-join reordering starts from the smallest filtered
  table and restores the written column order with a projection.
"""

from __future__ import annotations

import pytest

from repro.sqldb import Database


def plan_text(db, sql, params=()):
    return "\n".join(
        line for (line,) in db.execute(f"EXPLAIN {sql}", params).rows
    )


@pytest.fixture
def two_index_db():
    """a keeps 10% of the rows per value, b is unique-ish (1000 values);
    index discovery order (s_a first) is the trap the old first-match
    planner fell into."""
    db = Database()
    db.execute("CREATE TABLE s (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
    db.execute("CREATE INDEX s_a ON s (a)")
    db.execute("CREATE INDEX s_b ON s (b)")
    db.executemany(
        "INSERT INTO s VALUES (?, ?, ?)",
        [(i, i % 10, i) for i in range(1000)],
    )
    return db


class TestIndexChoice:
    def test_without_stats_unique_index_wins_over_discovery_order(self):
        """The old planner took whichever access path it found first;
        the fallback now deterministically prefers the unique index."""
        db = Database()
        db.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, grp INTEGER)")
        db.execute("CREATE INDEX u_grp ON u (grp)")
        db.executemany(
            "INSERT INTO u VALUES (?, ?)", [(i, i % 5) for i in range(100)]
        )
        text = plan_text(db, "SELECT * FROM u WHERE grp = ? AND id = ?", (1, 7))
        assert "IndexLookup(u via u_pk)" in text

    def test_with_stats_selective_index_wins(self, two_index_db):
        db = two_index_db
        sql = "SELECT * FROM s WHERE a = ? AND b = ?"
        # Without statistics: both candidates non-unique except the pk is
        # not applicable here, so discovery order (s_a) applies.
        assert "IndexLookup(s via s_a)" in plan_text(db, sql, (1, 500))
        db.execute("ANALYZE s")
        # With statistics: probing s_b returns ~1 row, s_a ~100.
        text = plan_text(db, sql, (1, 500))
        assert "IndexLookup(s via s_b) (est_rows=1)" in text
        rows = db.execute(sql, (1, 500)).rows
        assert rows == [(500, 0, 500)] or rows == []
        assert db.execute(sql, (0, 500)).rows == [(500, 0, 500)]

    def test_tiny_table_flips_to_seq_scan(self):
        """A 3-row table is cheaper to scan than to probe (scan cost 3
        beats probe cost 4+1) — ANALYZE flips index -> seq."""
        db = Database()
        db.execute("CREATE TABLE tiny (x INTEGER)")
        db.execute("CREATE INDEX tiny_x ON tiny (x)")
        db.executemany("INSERT INTO tiny VALUES (?)", [(i,) for i in range(3)])
        before = plan_text(db, "SELECT * FROM tiny WHERE x = ?", (1,))
        assert "IndexLookup(tiny via tiny_x)" in before
        db.execute("ANALYZE tiny")
        after = plan_text(db, "SELECT * FROM tiny WHERE x = ?", (1,))
        assert "SeqScan(tiny)" in after
        assert db.execute("SELECT * FROM tiny WHERE x = ?", (1,)).rows == [(1,)]

    def test_large_table_keeps_the_index_after_analyze(self, two_index_db):
        two_index_db.execute("ANALYZE s")
        text = plan_text(two_index_db, "SELECT * FROM s WHERE b = ?", (42,))
        assert "IndexLookup(s via s_b)" in text


class TestInListDedup:
    @pytest.fixture
    def db(self, two_index_db):
        return two_index_db

    def test_duplicate_literals_deduplicated_at_plan_time(self, db):
        text = plan_text(db, "SELECT id FROM s WHERE id IN (1, 1, 2)")
        assert "MultiKeyIndexLookup(s via s_pk, 2 keys)" in text

    def test_deduped_plan_returns_each_row_once(self, db):
        sql = "SELECT id FROM s WHERE id IN (1, 1, 2) ORDER BY id"
        row_rows = db.execute(sql, mode="row").rows
        columnar_rows = db.execute(sql, mode="columnar").rows
        assert row_rows == [(1,), (2,)]
        assert columnar_rows == row_rows

    def test_duplicate_parameters_still_runtime_deduplicated(self, db):
        text = plan_text(db, "SELECT id FROM s WHERE id IN (?, ?)", (2, 2))
        # Parameters cannot be deduplicated at plan time...
        assert "MultiKeyIndexLookup(s via s_pk, 2 keys)" in text
        # ...but the operator still returns each row once.
        assert db.execute(
            "SELECT id FROM s WHERE id IN (?, ?)", (2, 2)
        ).rows == [(2,)]

    def test_mixed_bool_int_literals_share_a_key(self, db):
        # 1 == True in Python and in the hash index's buckets, so the
        # pair is one key, not two.
        text = plan_text(db, "SELECT id FROM s WHERE id IN (1, TRUE)")
        assert "1 keys" in text
        assert db.execute("SELECT id FROM s WHERE id IN (1, TRUE)").rows == [
            (1,)
        ]


class TestJoinReordering:
    @pytest.fixture
    def db(self):
        db = Database()
        db.execute("CREATE TABLE big (k INTEGER, ref INTEGER)")
        db.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, grp INTEGER)")
        db.executemany(
            "INSERT INTO big VALUES (?, ?)", [(i, i % 100) for i in range(200)]
        )
        db.executemany(
            "INSERT INTO u VALUES (?, ?)", [(i, i % 5) for i in range(100)]
        )
        return db

    SQL = "SELECT big.k, u.id FROM big, u WHERE u.id = ? AND u.grp = big.ref"

    def test_analyze_flips_scan_to_index_probe(self, db):
        """The written order starts with the unconstrained big table;
        after ANALYZE the greedy order plans the point-constrained u
        first through its primary key."""
        before = plan_text(db, self.SQL, (3,))
        assert "SeqScan(big)" in before
        assert "IndexLookup" not in before
        db.execute("ANALYZE")
        after = plan_text(db, self.SQL, (3,))
        assert "IndexLookup(u via u_pk)" in after

    def test_reordered_plan_restores_written_column_order(self, db):
        db.execute("ANALYZE")
        text = plan_text(db, self.SQL, (3,))
        # The permuting projection re-establishes big-then-u slots.
        assert "Project(k, ref, id, grp)" in text

    def test_reordering_preserves_results(self, db):
        before = sorted(db.execute(self.SQL, (3,)).rows)
        db.execute("ANALYZE")
        after = sorted(db.execute(self.SQL, (3,)).rows)
        assert after == before == [(3, 3), (103, 3)]

    def test_join_estimate_tracks_actuals(self, db):
        db.execute("ANALYZE")
        text = "\n".join(
            line
            for (line,) in db.execute(
                "EXPLAIN ANALYZE " + self.SQL.replace("?", "3")
            ).rows
        )
        assert "Filter (est_rows=2 loops=1 rows=2)" in text


class TestPlannerModeSwitch:
    def test_invalid_mode_rejected(self):
        from repro.errors import SQLError

        with pytest.raises(SQLError):
            Database(planner_mode="fancy")

    def test_rule_mode_ignores_collected_stats(self):
        db = Database(planner_mode="rule")
        db.execute("CREATE TABLE tiny (x INTEGER)")
        db.execute("CREATE INDEX tiny_x ON tiny (x)")
        db.executemany("INSERT INTO tiny VALUES (?)", [(i,) for i in range(3)])
        db.execute("ANALYZE tiny")
        # Cost mode would flip to SeqScan; rule mode keeps the index.
        text = plan_text(db, "SELECT * FROM tiny WHERE x = ?", (1,))
        assert "IndexLookup(tiny via tiny_x)" in text
