"""Property-based tests of core engine invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database
from repro.sqldb import wire
from repro.sqldb.result import ResultSet

sql_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=50),
)

int_lists = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=30
)


def fresh_table(values):
    db = Database()
    db.execute("CREATE TABLE t (v INTEGER)")
    for value in values:
        db.execute("INSERT INTO t VALUES (?)", [value])
    return db


class TestWireProperties:
    @given(st.lists(sql_values, max_size=8))
    def test_value_row_roundtrip(self, values):
        result = ResultSet([f"c{i}" for i in range(len(values))], [tuple(values)])
        decoded = wire.decode_result(wire.encode_result(result))
        assert decoded.rows == result.rows

    @given(st.text(max_size=200), st.lists(sql_values, max_size=5))
    def test_query_roundtrip(self, sql, params):
        decoded_sql, decoded_params = wire.decode_query(
            wire.encode_query(sql, params)
        )
        assert decoded_sql == sql
        assert decoded_params == list(params)


class TestQueryProperties:
    @given(int_lists)
    @settings(max_examples=30, deadline=None)
    def test_count_matches_python(self, values):
        db = fresh_table(values)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(values)

    @given(int_lists)
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_python(self, values):
        db = fresh_table(values)
        expected = sum(values) if values else None
        assert db.execute("SELECT SUM(v) FROM t").scalar() == expected

    @given(int_lists)
    @settings(max_examples=30, deadline=None)
    def test_order_by_sorts(self, values):
        db = fresh_table(values)
        result = db.execute("SELECT v FROM t ORDER BY v")
        assert result.column("v") == sorted(values)

    @given(int_lists)
    @settings(max_examples=30, deadline=None)
    def test_distinct_matches_set(self, values):
        db = fresh_table(values)
        result = db.execute("SELECT DISTINCT v FROM t")
        assert sorted(result.column("v")) == sorted(set(values))

    @given(int_lists, st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_where_filter_matches_python(self, values, threshold):
        db = fresh_table(values)
        result = db.execute("SELECT v FROM t WHERE v > ?", [threshold])
        assert sorted(result.column("v")) == sorted(
            v for v in values if v > threshold
        )

    @given(int_lists, int_lists)
    @settings(max_examples=30, deadline=None)
    def test_union_matches_set_union(self, left, right):
        db = Database()
        db.execute("CREATE TABLE a (v INTEGER)")
        db.execute("CREATE TABLE b (v INTEGER)")
        for value in left:
            db.execute("INSERT INTO a VALUES (?)", [value])
        for value in right:
            db.execute("INSERT INTO b VALUES (?)", [value])
        result = db.execute("SELECT v FROM a UNION SELECT v FROM b")
        assert sorted(result.column("v")) == sorted(set(left) | set(right))
        result_all = db.execute("SELECT v FROM a UNION ALL SELECT v FROM b")
        assert len(result_all) == len(left) + len(right)

    @given(int_lists, int_lists)
    @settings(max_examples=30, deadline=None)
    def test_except_intersect_match_sets(self, left, right):
        db = Database()
        db.execute("CREATE TABLE a (v INTEGER)")
        db.execute("CREATE TABLE b (v INTEGER)")
        for value in left:
            db.execute("INSERT INTO a VALUES (?)", [value])
        for value in right:
            db.execute("INSERT INTO b VALUES (?)", [value])
        diff = db.execute("SELECT v FROM a EXCEPT SELECT v FROM b")
        assert sorted(diff.column("v")) == sorted(set(left) - set(right))
        both = db.execute("SELECT v FROM a INTERSECT SELECT v FROM b")
        assert sorted(both.column("v")) == sorted(set(left) & set(right))

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=40,
        ),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_recursive_reachability_matches_bfs(self, edges, start):
        db = Database()
        db.execute("CREATE TABLE e (s INTEGER, d INTEGER)")
        db.execute("CREATE INDEX e_s ON e (s)")
        for src, dst in edges:
            db.execute("INSERT INTO e VALUES (?, ?)", [src, dst])
        result = db.execute(
            "WITH RECURSIVE r (n) AS "
            "(SELECT ? UNION SELECT d FROM r JOIN e ON r.n = e.s) "
            "SELECT n FROM r",
            [start],
        )
        # Reference BFS.
        adjacency = {}
        for src, dst in edges:
            adjacency.setdefault(src, set()).add(dst)
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert sorted(result.column("n")) == sorted(seen)

    @given(int_lists)
    @settings(max_examples=20, deadline=None)
    def test_delete_then_count_consistent(self, values):
        db = fresh_table(values)
        deleted = db.execute("DELETE FROM t WHERE v < 0").rowcount
        remaining = db.execute("SELECT COUNT(*) FROM t").scalar()
        assert deleted + remaining == len(values)
        assert all(v >= 0 for v in db.execute("SELECT v FROM t").column("v"))
