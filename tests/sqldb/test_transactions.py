"""Transactions: atomicity of multi-statement operations.

The substrate extension motivated by check-out (paper Section 6): the
retrieve-and-flag sequence must not leave the database half-updated.
"""

import pytest

from repro.errors import ExecutionError, IntegrityError
from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("CREATE INDEX t_v ON t (v)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    return db


def snapshot(db):
    return db.execute("SELECT id, v FROM t ORDER BY 1").rows


class TestCommit:
    def test_commit_keeps_changes(self, db):
        db.begin()
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        db.execute("INSERT INTO t VALUES (4, 40)")
        db.commit()
        assert snapshot(db) == [(1, 99), (2, 20), (3, 30), (4, 40)]

    def test_sql_level_statements(self, db):
        db.execute("BEGIN TRANSACTION")
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("COMMIT")
        assert [row[0] for row in snapshot(db)] == [1, 3]

    def test_reads_inside_transaction_see_own_writes(self, db):
        with db.transaction():
            db.execute("UPDATE t SET v = 0")
            assert db.execute("SELECT SUM(v) FROM t").scalar() == 0


class TestRollback:
    def test_rollback_restores_all_dml_kinds(self, db):
        before = snapshot(db)
        db.begin()
        db.execute("UPDATE t SET v = v + 1")
        db.execute("DELETE FROM t WHERE id = 2")
        db.execute("INSERT INTO t VALUES (9, 90)")
        db.rollback()
        assert snapshot(db) == before

    def test_sql_level_rollback(self, db):
        before = snapshot(db)
        db.execute("BEGIN")
        db.execute("DELETE FROM t")
        db.execute("ROLLBACK")
        assert snapshot(db) == before

    def test_rollback_restores_indexes(self, db):
        db.begin()
        db.execute("UPDATE t SET v = 1000 WHERE id = 1")
        db.rollback()
        assert db.execute("SELECT id FROM t WHERE v = 10").scalar() == 1
        assert len(db.execute("SELECT id FROM t WHERE v = 1000")) == 0

    def test_rollback_restores_primary_key_index(self, db):
        db.begin()
        db.execute("DELETE FROM t WHERE id = 1")
        db.rollback()
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO t VALUES (1, 0)")

    def test_context_manager_rolls_back_on_error(self, db):
        before = snapshot(db)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("DELETE FROM t")
                raise RuntimeError("injected failure")
        assert snapshot(db) == before

    def test_multi_table_rollback(self, db):
        db.execute("CREATE TABLE u (id INTEGER)")
        db.begin()
        db.execute("INSERT INTO u VALUES (1)")
        db.execute("DELETE FROM t WHERE id = 3")
        db.rollback()
        assert db.table_rowcount("u") == 0
        assert db.table_rowcount("t") == 3

    def test_interleaved_ops_on_same_rows(self, db):
        before = snapshot(db)
        db.begin()
        db.execute("UPDATE t SET v = 1 WHERE id = 1")
        db.execute("UPDATE t SET v = 2 WHERE id = 1")
        db.execute("DELETE FROM t WHERE id = 1")
        db.execute("INSERT INTO t VALUES (1, 3)")
        db.rollback()
        assert snapshot(db) == before


class TestTransactionRules:
    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(ExecutionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.commit()

    def test_rollback_without_begin_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.rollback()

    def test_ddl_inside_transaction_rejected(self, db):
        db.begin()
        with pytest.raises(ExecutionError):
            db.execute("CREATE TABLE nope (x INTEGER)")
        with pytest.raises(ExecutionError):
            db.execute("DROP TABLE t")
        db.rollback()

    def test_every_ddl_kind_rejected_inside_transaction(self, db):
        """Catalog changes are not covered by the undo log, so none of
        them may slip into a transaction (they could not be rolled back)."""
        db.execute("CREATE VIEW big AS SELECT id FROM t WHERE v > 15")
        statements = (
            "CREATE TABLE nope (x INTEGER)",
            "CREATE INDEX nope_idx ON t (id)",
            "CREATE VIEW nope_v AS SELECT id FROM t",
            "DROP TABLE t",
            "DROP VIEW big",
        )
        db.begin()
        for sql in statements:
            with pytest.raises(ExecutionError, match="not allowed inside"):
                db.execute(sql)
        db.rollback()
        # Outside a transaction the same statements work (and the failed
        # attempts left no catalog residue behind).
        db.execute("CREATE TABLE nope (x INTEGER)")
        db.execute("CREATE INDEX nope_idx ON t (id)")
        db.execute("DROP VIEW big")

    def test_ddl_rejection_is_per_session(self, db):
        """Only the session holding the open transaction is blocked."""
        db.begin(session="a")
        with pytest.raises(ExecutionError):
            db.execute("CREATE TABLE nope (x INTEGER)", session="a")
        # The default session has no open transaction: DDL is fine.
        db.execute("CREATE TABLE ok (x INTEGER)")
        db.rollback(session="a")

    def test_ddl_rejected_over_the_wire(self, db):
        from repro.concurrency import SessionManager
        from repro.errors import ExecutionError as ClientExecutionError
        from repro.network.profiles import WAN_512
        from repro.server.client import RemoteConnection
        from repro.server.server import DatabaseServer

        server = DatabaseServer(db, sessions=SessionManager(db))
        connection = RemoteConnection(server, WAN_512.create_link())
        connection.begin()
        with pytest.raises(ClientExecutionError, match="not allowed inside"):
            connection.execute("CREATE TABLE nope (x INTEGER)")
        connection.rollback()
        connection.execute("CREATE TABLE ok2 (x INTEGER)")

    def test_after_commit_new_transaction_possible(self, db):
        with db.transaction():
            db.execute("INSERT INTO t VALUES (4, 40)")
        with db.transaction():
            db.execute("INSERT INTO t VALUES (5, 50)")
        assert db.table_rowcount("t") == 5

    def test_changes_outside_transaction_unaffected_by_rollback(self, db):
        db.execute("INSERT INTO t VALUES (4, 40)")  # autocommitted
        db.begin()
        db.execute("DELETE FROM t WHERE id = 4")
        db.rollback()
        assert db.execute("SELECT v FROM t WHERE id = 4").scalar() == 40


class TestServerSideTransactions:
    def test_remote_transactional_update(self, db):
        from repro.network.profiles import WAN_512
        from repro.server.client import RemoteConnection
        from repro.server.server import DatabaseServer

        connection = RemoteConnection(DatabaseServer(db), WAN_512.create_link())
        connection.execute("BEGIN")
        connection.execute("UPDATE t SET v = 0")
        connection.execute("ROLLBACK")
        assert db.execute("SELECT SUM(v) FROM t").scalar() == 60
