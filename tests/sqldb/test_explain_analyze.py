"""EXPLAIN ANALYZE: plans annotated with actual loop and row counts."""

import pytest

from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER);
        CREATE INDEX t_b ON t (b)
        """
    )
    db.executemany(
        "INSERT INTO t VALUES (?, ?)", [(i, i % 3) for i in range(9)]
    )
    return db


def analyze_text(db, sql):
    return "\n".join(
        line for (line,) in db.execute(f"EXPLAIN ANALYZE {sql}").rows
    )


class TestExplainAnalyze:
    def test_operators_carry_loops_and_rows(self, db):
        text = analyze_text(db, "SELECT a FROM t WHERE a > 5")
        assert "-> Project(a) (loops=1 rows=3)" in text
        assert "(loops=1 rows=9)" in text  # the scan saw every row

    def test_execution_footer_reports_counters(self, db):
        text = analyze_text(db, "SELECT a FROM t WHERE a > 5")
        assert "Execution: 3 row(s) returned" in text
        assert "rows_scanned: 9" in text

    def test_index_lookup_probes_counted(self, db):
        text = analyze_text(db, "SELECT b FROM t WHERE a = 3")
        assert "IndexLookup(t via t_pk) (loops=1 rows=1)" in text
        assert "index_probes: 1" in text

    def test_plain_explain_has_no_counts(self, db):
        text = "\n".join(
            line
            for (line,) in db.execute("EXPLAIN SELECT a FROM t").rows
        )
        assert "loops=" not in text
        assert "Execution:" not in text

    def test_recursive_cte_branch_loop_counts(self, db):
        text = analyze_text(
            db,
            "WITH RECURSIVE s (n) AS "
            "(SELECT 1 UNION ALL SELECT n + 1 FROM s WHERE n < 4) "
            "SELECT COUNT(*) FROM s",
        )
        # Four fixpoint rounds ran the recursive branch four times
        # (the last one produced the empty delta that ends the loop).
        assert "recursive branch" in text
        assert "(loops=4 rows=3)" in text

    def test_short_circuited_operator_marked_never_executed(self, db):
        text = analyze_text(db, "SELECT a FROM t WHERE 1 = 0 AND b = 1")
        assert "(never executed)" in text or "rows=0" in text

    def test_analyze_still_usable_as_identifier(self, db):
        db.execute("CREATE TABLE analyze (v INTEGER)")
        db.execute("INSERT INTO analyze VALUES (7)")
        assert db.execute("SELECT v FROM analyze").rows == [(7,)]

    def test_analyze_does_not_pollute_plan_cache(self, db):
        sql = "SELECT a FROM t WHERE a > 5"
        db.execute(f"EXPLAIN ANALYZE {sql}")
        # The analyzed (instrumented) plan instances must not be reused
        # by the normal execution path.
        assert db.execute(sql).rows == [(6,), (7,), (8,)]
        text = analyze_text(db, sql)
        assert "(loops=1 rows=3)" in text  # fresh counts, not accumulated
