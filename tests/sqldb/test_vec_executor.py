"""Unit tests for the vectorized executor: mode wiring, whole-plan
fallback, chunk-cache invalidation, batch boundaries, counters, EXPLAIN
ANALYZE labelling, and the observability hooks.

Semantic equivalence with the row executor is covered separately by the
differential harness (``test_differential.py``); these tests pin the
machinery *around* the batch pipeline.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.obs import TraceRecorder
from repro.sqldb.columnar import BATCH_SIZE, Batch, table_batches
from repro.sqldb.database import Database


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    database.executemany(
        "INSERT INTO t VALUES (?, ?)", [(i, i % 10) for i in range(100)]
    )
    return database


class TestExecutionModes:
    def test_default_mode_is_row(self, db):
        assert db.execution_mode == "row"
        db.execute("SELECT v FROM t WHERE v < 3")
        assert db.last_executor == "row"

    def test_database_level_columnar_mode(self):
        columnar = Database(execution_mode="columnar")
        columnar.execute("CREATE TABLE t (a INTEGER)")
        columnar.execute("INSERT INTO t VALUES (1)")
        columnar.execute("SELECT a FROM t WHERE a > 0")
        assert columnar.last_executor == "columnar"

    def test_per_query_mode_overrides_database_default(self, db):
        db.execute("SELECT v FROM t WHERE v < 3", mode="columnar")
        assert db.last_executor == "columnar"
        db.execute("SELECT v FROM t WHERE v < 3", mode="row")
        assert db.last_executor == "row"
        # The database default is untouched.
        assert db.execution_mode == "row"

    def test_unknown_mode_rejected_at_construction(self):
        with pytest.raises(ExecutionError, match="unknown execution mode"):
            Database(execution_mode="simd")

    def test_unknown_mode_rejected_per_query(self, db):
        with pytest.raises(ExecutionError, match="unknown execution mode"):
            db.execute("SELECT v FROM t", mode="vectorised")

    def test_statistics_track_columnar_runs_and_fallbacks(self, db):
        before = dict(db.statistics)
        db.execute("SELECT v FROM t WHERE v < 3", mode="columnar")
        db.execute("SELECT v FROM t WHERE id = 1", mode="columnar")  # index path
        after = db.statistics
        assert after["columnar_statements"] == before["columnar_statements"] + 1
        assert after["columnar_fallbacks"] == before["columnar_fallbacks"] + 1


class TestWholePlanFallback:
    def test_index_lookup_falls_back(self, db):
        db.execute("SELECT v FROM t WHERE id = 7", mode="columnar")
        assert db.last_executor is not None
        assert db.last_executor.startswith("row (columnar fallback:")

    def test_recursive_cte_falls_back(self, db):
        db.execute(
            "WITH RECURSIVE c (n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM c"
            " WHERE n < 5) SELECT n FROM c",
            mode="columnar",
        )
        assert db.last_executor is not None
        assert "columnar fallback" in db.last_executor

    def test_derived_table_falls_back(self, db):
        db.execute(
            "SELECT x.v FROM (SELECT v FROM t WHERE v < 5) AS x", mode="columnar"
        )
        assert db.last_executor is not None
        assert "columnar fallback" in db.last_executor

    def test_fallback_result_matches_row_mode(self, db):
        columnar = db.execute("SELECT v FROM t WHERE id = 7", mode="columnar")
        row = db.execute("SELECT v FROM t WHERE id = 7", mode="row")
        assert columnar.rows == row.rows


class TestCounters:
    def test_vec_counters_populated_in_columnar_mode(self, db):
        db.execute("SELECT v FROM t WHERE v < 3", mode="columnar")
        assert db.last_counters["vec_batches"] > 0
        assert db.last_counters["vec_rows"] > 0
        assert db.last_counters["rows_scanned"] == 100

    def test_vec_counters_stay_zero_in_row_mode(self, db):
        db.execute("SELECT v FROM t WHERE v < 3", mode="row")
        assert db.last_counters["vec_batches"] == 0
        assert db.last_counters["vec_rows"] == 0


class TestChunkCacheInvalidation:
    def test_insert_invalidates_cached_chunks(self, db):
        first = db.execute("SELECT COUNT(*) FROM t", mode="columnar")
        db.execute("INSERT INTO t VALUES (100, 42)")
        second = db.execute("SELECT COUNT(*) FROM t", mode="columnar")
        assert (first.rows[0][0], second.rows[0][0]) == (100, 101)

    def test_update_invalidates_cached_chunks(self, db):
        db.execute("SELECT v FROM t WHERE v = 42", mode="columnar")
        db.execute("UPDATE t SET v = 42 WHERE id = 3")
        result = db.execute("SELECT id FROM t WHERE v = 42", mode="columnar")
        assert result.rows == [(3,)]

    def test_delete_invalidates_cached_chunks(self, db):
        db.execute("SELECT COUNT(*) FROM t", mode="columnar")
        db.execute("DELETE FROM t WHERE v < 5")
        result = db.execute("SELECT COUNT(*) FROM t", mode="columnar")
        assert result.rows == [(50,)]

    def test_rollback_invalidates_cached_chunks(self, db):
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (100, 42)")
        inside = db.execute("SELECT COUNT(*) FROM t", mode="columnar")
        db.execute("ROLLBACK")
        after = db.execute("SELECT COUNT(*) FROM t", mode="columnar")
        assert (inside.rows[0][0], after.rows[0][0]) == (101, 100)

    def test_unchanged_table_reuses_cached_chunks(self, db):
        db.execute("SELECT COUNT(*) FROM t", mode="columnar")
        storage = db.catalog.lookup("t").storage
        first = table_batches(storage)
        db.execute("SELECT SUM(v) FROM t", mode="columnar")
        assert table_batches(storage) is first


class TestBatchBoundaries:
    @pytest.fixture
    def big_db(self) -> Database:
        database = Database()
        database.execute("CREATE TABLE big (id INTEGER, v INTEGER)")
        database.executemany(
            "INSERT INTO big VALUES (?, ?)",
            [(i, i % 7) for i in range(2 * BATCH_SIZE + 100)],
        )
        return database

    def test_multi_batch_scan_sees_every_row(self, big_db):
        result = big_db.execute("SELECT COUNT(*) FROM big", mode="columnar")
        assert result.rows == [(2 * BATCH_SIZE + 100,)]
        assert big_db.last_counters["vec_batches"] >= 3

    def test_offset_and_limit_across_batch_boundary(self, big_db):
        sql = "SELECT id FROM big LIMIT 10 OFFSET ?"
        for offset in (BATCH_SIZE - 5, BATCH_SIZE, 2 * BATCH_SIZE + 95):
            columnar = big_db.execute(sql, (offset,), mode="columnar")
            row = big_db.execute(sql, (offset,), mode="row")
            assert columnar.rows == row.rows

    def test_limit_stops_consuming_batches_early(self, big_db):
        big_db.execute("SELECT id FROM big LIMIT 5", mode="columnar")
        assert big_db.last_counters["vec_batches"] <= 4


class TestExplainAnalyze:
    def plan_text(self, db, sql, mode):
        result = db.execute(f"EXPLAIN ANALYZE {sql}", mode=mode)
        return "\n".join(line for (line,) in result.rows)

    def test_columnar_plan_labels_operators_and_executor(self, db):
        text = self.plan_text(db, "SELECT v FROM t WHERE v < 3", "columnar")
        assert "VecSeqScan(t)" in text
        assert "VecFilter" in text
        assert "batches=" in text and "rows=" in text
        assert "Executor: columnar" in text
        assert "vec_batches:" in text and "vec_rows:" in text

    def test_row_plan_labels_executor(self, db):
        text = self.plan_text(db, "SELECT v FROM t WHERE v < 3", "row")
        assert "Executor: row" in text
        assert "Vec" not in text

    def test_fallback_plan_names_the_reason(self, db):
        text = self.plan_text(db, "SELECT v FROM t WHERE id = 7", "columnar")
        assert "Executor: row (columnar fallback:" in text


class TestObservability:
    def test_span_meta_carries_executor(self, db):
        db.recorder = TraceRecorder()
        db.execute("SELECT v FROM t WHERE v < 3", mode="columnar")
        spans = list(db.recorder.iter_spans())
        assert any(span.meta.get("executor") == "columnar" for span in spans)

    def test_columnar_metrics_counters(self, db):
        db.recorder = TraceRecorder()
        db.execute("SELECT v FROM t WHERE v < 3", mode="columnar")
        db.execute("SELECT v FROM t WHERE id = 7", mode="columnar")
        counters = db.recorder.metrics.to_dict()["counters"]
        assert counters["db.columnar_executions"] == 1
        assert counters["db.columnar_fallbacks"] == 1
        assert counters["db.vec_rows"] >= 100


class TestBatchPrimitives:
    def test_from_rows_pivots_and_memoises_rows(self):
        batch = Batch.from_rows([(1, "a"), (2, "b")], arity=2)
        assert list(batch.columns[0]) == [1, 2]
        assert list(batch.columns[1]) == ["a", "b"]
        assert batch.rows() == [(1, "a"), (2, "b")]

    def test_zero_arity_rows(self):
        batch = Batch([], 3)
        assert batch.rows() == [(), (), ()]

    def test_validity_mask_marks_non_nulls(self):
        batch = Batch.from_rows([(1,), (None,), (3,)], arity=1)
        assert batch.validity(0) == [True, False, True]
        assert batch.validity(0) is batch.validity(0)  # memoised

    def test_gather_is_lazy_and_ordered(self):
        batch = Batch([[10, 20, 30, 40], ["a", "b", "c", "d"]], 4)
        picked = batch.gather([3, 1])
        assert picked.length == 2
        assert picked.columns[0] == [40, 20]
        # Only the accessed column is materialised; the other stays lazy
        # until first read, then matches an eager gather.
        assert picked.columns[1] == ["d", "b"]
        assert picked.rows() == [(40, "d"), (20, "b")]
