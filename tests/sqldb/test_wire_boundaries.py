"""Wire-format boundary values, end to end through a live server.

The encoding is ``>q`` for integers — Python ints are unbounded, so the
encoder has to range-check and fail as a protocol error (an ERROR frame
over the wire), never as a bare ``struct.error`` that would kill the
server loop.
"""

import math

import pytest

from repro.errors import ProtocolError
from repro.network.profiles import LAN
from repro.server.client import RemoteConnection
from repro.server.server import DatabaseServer
from repro.sqldb import Database, wire
from repro.sqldb.result import ResultSet
from repro.sqldb.wire import INT64_MAX, INT64_MIN


def roundtrip_value(value):
    decoded, offset = wire.decode_value(wire.encode_value(value), 0)
    assert offset == len(wire.encode_value(value))
    return decoded


def roundtrip_result(result):
    return wire.decode_result(wire.encode_result(result))


class TestIntegerBoundaries:
    def test_int64_extremes_roundtrip(self):
        assert roundtrip_value(INT64_MAX) == INT64_MAX
        assert roundtrip_value(INT64_MIN) == INT64_MIN

    @pytest.mark.parametrize(
        "value", [INT64_MAX + 1, INT64_MIN - 1, 1 << 80, -(1 << 80)]
    )
    def test_overflow_raises_protocol_error(self, value):
        with pytest.raises(ProtocolError):
            wire.encode_value(value)

    def test_overflow_in_result_row_raises_protocol_error(self):
        result = ResultSet(["v"], [(INT64_MAX + 1,)])
        with pytest.raises(ProtocolError):
            wire.encode_result(result)

    def test_overflow_in_query_params_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            wire.encode_query("SELECT ?", [INT64_MAX + 1])


class TestFloatBoundaries:
    def test_nan_roundtrips(self):
        assert math.isnan(roundtrip_value(float("nan")))

    @pytest.mark.parametrize("value", [float("inf"), float("-inf"), 0.0, -0.0])
    def test_infinities_and_zeroes_roundtrip(self, value):
        decoded = roundtrip_value(value)
        assert decoded == value
        assert math.copysign(1.0, decoded) == math.copysign(1.0, value)


class TestStringBoundaries:
    @pytest.mark.parametrize(
        "text",
        ["", "ascii", "naïve", "日本語", "🚀 ünïcödé 🚀", "a" * 10_000],
    )
    def test_utf8_roundtrips(self, text):
        assert roundtrip_value(text) == text

    def test_multibyte_length_is_bytes_not_codepoints(self):
        payload = wire.encode_value("日本語")
        # tag + u32 length + 9 UTF-8 bytes for 3 codepoints
        assert len(payload) == 1 + 4 + 9


class TestResultShapes:
    def test_zero_column_zero_row_result(self):
        result = roundtrip_result(ResultSet([], [], rowcount=3))
        assert result.columns == []
        assert result.rows == []
        assert result.rowcount == 3

    def test_zero_row_result_keeps_columns(self):
        result = roundtrip_result(ResultSet(["a", "b"], []))
        assert result.columns == ["a", "b"]
        assert result.rows == []

    def test_mixed_type_rows_roundtrip(self):
        rows = [(INT64_MIN, None, True, 1.5, "日本語"), (0, "", False, -0.0, "x")]
        result = roundtrip_result(ResultSet(list("abcde"), rows))
        assert result.rows == rows


class TestLiveServerBoundaries:
    """The same boundary values through an actual server ``handle`` call."""

    @pytest.fixture
    def connection(self):
        db = Database()
        server = DatabaseServer(db)
        return RemoteConnection(server, LAN.create_link())

    def test_int64_extremes_over_the_wire(self, connection):
        result = connection.execute("SELECT ?, ?", [INT64_MAX, INT64_MIN])
        assert result.rows == [(INT64_MAX, INT64_MIN)]

    def test_special_floats_over_the_wire(self, connection):
        result = connection.execute(
            "SELECT ?, ?, ?", [float("inf"), float("-inf"), float("nan")]
        )
        ((pos, neg, nan),) = result.rows
        assert pos == float("inf")
        assert neg == float("-inf")
        assert math.isnan(nan)

    def test_multibyte_strings_over_the_wire(self, connection):
        result = connection.execute("SELECT ?", ["🚀 日本語"])
        assert result.rows == [("🚀 日本語",)]

    def test_zero_column_result_over_the_wire(self, connection):
        connection.execute("CREATE TABLE t (v INTEGER)")
        result = connection.execute("INSERT INTO t VALUES (1), (2)")
        assert result.columns == []
        assert result.rowcount == 2
