"""Differential row-oracle tests: columnar == row, query by query.

The row executor is the semantics oracle for the vectorized pipeline.
Every query in the shared corpus — the 25-template ``repro.analysis``
corpus (the statements the PDM layer actually emits) plus an
engine-level corpus covering each vectorizable operator — runs through
both executors and must produce *identical ordered* results: same
columns, same rows, same order.  A query that raises must raise an
:class:`~repro.errors.SQLError` subclass in both modes (the exact
subclass and message may differ when column-at-a-time evaluation meets
an error on a different row first; see DESIGN.md §10).

A hypothesis-driven test generates random filters/projections over a
seeded table so the corpus is not limited to shapes we thought of.
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SQLError
from repro.sqldb.database import Database


def run_differential(db: Database, sql: str, params=()):
    """Run *sql* in both modes; assert the oracle contract; return rows.

    Either both executors succeed with identical ordered results, or
    both raise an ``SQLError``.
    """
    row_error = columnar_error = None
    row_result = columnar_result = None
    try:
        row_result = db.execute(sql, params, mode="row")
    except SQLError as exc:
        row_error = exc
    try:
        columnar_result = db.execute(sql, params, mode="columnar")
    except SQLError as exc:
        columnar_error = exc

    if row_error is not None or columnar_error is not None:
        assert row_error is not None, (
            f"columnar raised {columnar_error!r} but row succeeded: {sql}"
        )
        assert columnar_error is not None, (
            f"row raised {row_error!r} but columnar succeeded: {sql}"
        )
        return None

    assert columnar_result.columns == row_result.columns, sql
    assert columnar_result.rows == row_result.rows, sql
    return row_result.rows


def parameter_count(sql: str) -> int:
    """``?`` placeholders outside string literals."""
    return re.sub(r"'[^']*'", "", sql).count("?")


# ---------------------------------------------------------------------------
# The PDM template corpus (repro.analysis), bound to the Figure 2 root.
# ---------------------------------------------------------------------------


def pdm_select_templates():
    from repro.analysis.templates import template_queries

    return [
        (name, sql)
        for name, sql in template_queries()
        if sql.lstrip().upper().startswith(("SELECT", "WITH"))
    ]


@pytest.mark.parametrize(
    "name,sql", pdm_select_templates(), ids=[n for n, _ in pdm_select_templates()]
)
def test_pdm_template_corpus_differential(figure2_db, name, sql):
    params = tuple([1] * parameter_count(sql))  # Figure 2 root obid
    run_differential(figure2_db, sql, params)


def test_pdm_corpus_covers_every_template():
    """The SELECT slice of the corpus must not silently shrink."""
    assert len(pdm_select_templates()) >= 20


# ---------------------------------------------------------------------------
# Engine-level corpus: one seeded table pair, every vectorizable shape.
# ---------------------------------------------------------------------------

ENGINE_CORPUS = [
    # scans / filters / three-valued logic
    "SELECT * FROM t",
    "SELECT a, b FROM t WHERE v < 40",
    "SELECT id FROM t WHERE v < 40 AND b < 500",
    "SELECT id FROM t WHERE v < 10 OR b > 900",
    "SELECT id FROM t WHERE NOT (v < 40)",
    "SELECT id FROM t WHERE n IS NULL",
    "SELECT id FROM t WHERE n IS NOT NULL",
    "SELECT id FROM t WHERE n > 5",
    "SELECT id FROM t WHERE n > 5 OR v < 3",
    "SELECT id FROM t WHERE v BETWEEN 10 AND 20",
    "SELECT id FROM t WHERE v IN (1, 2, 3, NULL)",
    "SELECT id FROM t WHERE s LIKE 'name-1%'",
    "SELECT id FROM t WHERE s LIKE '%7'",
    # projections / expressions
    "SELECT a + b, v * 2 FROM t WHERE v >= 5",
    "SELECT a - b, -v FROM t",
    "SELECT s || '-x' FROM t WHERE v < 5",
    "SELECT CAST(v AS VARCHAR(10)) FROM t WHERE v < 5",
    "SELECT CASE WHEN v < 10 THEN 'lo' ELSE 'hi' END FROM t",
    "SELECT n + 1 FROM t",
    # joins (dim.k is NOT indexed, so the planner hash-joins)
    "SELECT t.id, dim.label FROM t JOIN dim ON t.v = dim.k",
    "SELECT t.id, dim.label FROM t LEFT JOIN dim ON t.v = dim.k",
    "SELECT t.id, dim.label FROM t JOIN dim ON t.v = dim.k WHERE dim.k < 20",
    "SELECT t.id FROM t JOIN dim ON t.n = dim.k",  # NULL join keys never match
    # aggregation
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(n), SUM(n), MIN(n), MAX(n), AVG(n) FROM t",
    "SELECT v, COUNT(*), SUM(a) FROM t GROUP BY v",
    "SELECT v, COUNT(*) FROM t GROUP BY v HAVING COUNT(*) > 3",
    "SELECT COUNT(*) FROM empty",
    "SELECT SUM(k) FROM empty",
    # sort / distinct / limit / offset / set ops
    "SELECT v FROM t ORDER BY v DESC, id ASC",
    "SELECT n FROM t ORDER BY n",
    "SELECT DISTINCT v FROM t",
    "SELECT DISTINCT n FROM t WHERE v < 10",
    "SELECT id FROM t ORDER BY id LIMIT 7",
    "SELECT id FROM t ORDER BY id LIMIT 5 OFFSET 95",
    "SELECT v FROM t WHERE v < 3 UNION ALL SELECT k FROM dim WHERE k < 3",
    # shapes that fall back to the row executor (fallback must be silent)
    "SELECT v FROM t WHERE id = 4",  # primary-key index lookup
    "SELECT v, (SELECT MAX(k) FROM dim) FROM t WHERE v < 3",
    "SELECT x.id FROM (SELECT id FROM t WHERE v < 5) AS x",
    "WITH small AS (SELECT id, v FROM t WHERE v < 5) SELECT * FROM small",
]


@pytest.fixture(scope="module")
def engine_db() -> Database:
    db = Database()
    db.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER,"
        " v INTEGER, n INTEGER, s VARCHAR(20))"
    )
    db.execute("CREATE TABLE dim (k INTEGER, label VARCHAR(20))")
    db.execute("CREATE TABLE empty (k INTEGER)")
    rows = [
        (i, i * 3, (i * 7) % 1000, i % 50, None if i % 3 == 0 else i % 11, f"name-{i}")
        for i in range(500)
    ]
    db.executemany("INSERT INTO t VALUES (?, ?, ?, ?, ?, ?)", rows)
    db.executemany(
        "INSERT INTO dim VALUES (?, ?)", [(k, f"label-{k}") for k in range(0, 50, 2)]
    )
    return db


@pytest.mark.parametrize("sql", ENGINE_CORPUS)
def test_engine_corpus_differential(engine_db, sql):
    run_differential(engine_db, sql)


def test_division_error_raises_in_both_modes(engine_db):
    # Column-at-a-time evaluation may hit the failing row in a different
    # order, but both executors must surface an SQLError.
    assert run_differential(engine_db, "SELECT 10 / (v - v) FROM t") is None
    assert run_differential(engine_db, "SELECT id FROM t WHERE 10 / n > 1") is None


def test_masked_conjunction_guards_division(engine_db):
    # The AND kernel must not evaluate the right operand on rows the left
    # already rejected — otherwise this guarded division would blow up on
    # v = 0 rows in columnar mode only.
    rows = run_differential(engine_db, "SELECT id FROM t WHERE v <> 0 AND 100 / v > 10")
    assert rows  # the guard admits rows, it doesn't just mask errors


# ---------------------------------------------------------------------------
# Hypothesis: random filters and projections over the seeded table.
# ---------------------------------------------------------------------------

COLUMNS = ("a", "b", "v", "n")

comparison = st.tuples(
    st.sampled_from(COLUMNS),
    st.sampled_from(("<", "<=", ">", ">=", "=", "<>")),
    st.integers(min_value=-5, max_value=60),
).map(lambda t: f"{t[0]} {t[1]} {t[2]}")

predicate = st.recursive(
    comparison,
    lambda inner: st.tuples(inner, st.sampled_from(("AND", "OR")), inner).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    ),
    max_leaves=4,
)

projection = st.lists(
    st.sampled_from(COLUMNS + ("a + b", "v * 2", "b - v", "id")),
    min_size=1,
    max_size=4,
).map(", ".join)


@settings(max_examples=60, deadline=None)
@given(select=projection, where=predicate)
def test_random_filter_projection_differential(engine_db, select, where):
    run_differential(engine_db, f"SELECT {select} FROM t WHERE {where}")
