"""Multi-key index probes for ``col IN (?, ..., ?)`` predicates.

The batched level-at-a-time expand rides on this access path: one
indexed statement retrieves the children of a whole frontier.  The
planner must only take it when it is safe (indexed column, independent
items) and the operator must preserve the scan semantics exactly —
duplicates deduplicated, NULL keys skipped, the residual filter owning
the three-valued logic.
"""

import pytest

from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v VARCHAR);
        CREATE INDEX t_k ON t (k)
        """
    )
    db.executemany(
        "INSERT INTO t VALUES (?, ?, ?)",
        [(i, i % 5, f"row{i}") for i in range(20)]
        + [(100, None, "nullk")],
    )
    return db


def plan_text(db, sql):
    return "\n".join(line for (line,) in db.execute(f"EXPLAIN {sql}").rows)


class TestPlannerChoice:
    def test_in_list_on_indexed_column_uses_multikey_lookup(self, db):
        text = plan_text(db, "SELECT * FROM t WHERE k IN (?, ?, ?)")
        assert "MultiKeyIndexLookup(t via t_k, 3 keys)" in text

    def test_literal_in_list_also_qualifies(self, db):
        text = plan_text(db, "SELECT * FROM t WHERE k IN (1, 2)")
        assert "MultiKeyIndexLookup(t via t_k, 2 keys)" in text

    def test_unindexed_column_falls_back_to_scan(self, db):
        text = plan_text(db, "SELECT * FROM t WHERE v IN ('row1', 'row2')")
        assert "MultiKeyIndexLookup" not in text
        assert "SeqScan(t)" in text

    def test_not_in_falls_back_to_scan(self, db):
        text = plan_text(db, "SELECT * FROM t WHERE k NOT IN (1, 2)")
        assert "MultiKeyIndexLookup" not in text

    def test_correlated_item_falls_back(self, db):
        # An item referencing the scanned row cannot be probed up front.
        text = plan_text(db, "SELECT * FROM t WHERE k IN (id, 1)")
        assert "MultiKeyIndexLookup" not in text

    def test_equality_and_in_prefer_single_key(self, db):
        # A plain equality conjunct is at least as selective; either
        # access path is legal, but the plan must stay indexed.
        text = plan_text(db, "SELECT * FROM t WHERE id = 3 AND k IN (1, 2)")
        assert "IndexLookup" in text


class TestOperatorSemantics:
    def test_duplicate_keys_return_rows_once(self, db):
        result = db.execute(
            "SELECT id FROM t WHERE k IN (?, ?, ?, ?) ORDER BY 1",
            [1, 1, 1, 2],
        )
        assert [row[0] for row in result.rows] == [1, 2, 6, 7, 11, 12, 16, 17]

    def test_duplicate_keys_probe_once(self, db):
        db.execute("SELECT id FROM t WHERE k IN (?, ?, ?)", [3, 3, 3])
        assert db.last_counters["index_probes"] == 1

    def test_null_keys_are_skipped_not_probed(self, db):
        result = db.execute("SELECT id FROM t WHERE k IN (1, NULL)")
        assert len(result.rows) == 4
        assert db.last_counters["index_probes"] == 1

    def test_null_operand_rows_never_match(self, db):
        # Row 100 has k = NULL; NULL IN (...) is UNKNOWN, never TRUE.
        result = db.execute("SELECT id FROM t WHERE k IN (0, 1, 2, 3, 4)")
        assert 100 not in [row[0] for row in result.rows]
        assert len(result.rows) == 20

    def test_all_null_in_list_returns_nothing(self, db):
        result = db.execute("SELECT id FROM t WHERE k IN (NULL)")
        assert result.rows == []
        assert db.last_counters["index_probes"] == 0

    def test_agrees_with_unindexed_evaluation(self, db):
        indexed = db.execute(
            "SELECT id FROM t WHERE k IN (0, 4, NULL) ORDER BY 1"
        ).rows
        fallback = db.execute(
            "SELECT id FROM t WHERE k = 0 OR k = 4 OR k = NULL ORDER BY 1"
        ).rows
        assert indexed == fallback

    def test_residual_conjuncts_still_apply(self, db):
        result = db.execute(
            "SELECT id FROM t WHERE k IN (1, 2) AND id < 10 ORDER BY 1"
        )
        assert [row[0] for row in result.rows] == [1, 2, 6, 7]
