"""EXPLAIN: plan rendering and access-path verification."""

import pytest

from repro.pdm.queries import recursive_mle_spec
from repro.rules.modificator import QueryModificator
from repro.rules.ruletable import RuleTable
from repro.sqldb import Database
from repro.sqldb.render import render_select


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE a (id INTEGER PRIMARY KEY, grp INTEGER, v INTEGER);
        CREATE TABLE b (id INTEGER PRIMARY KEY, a_id INTEGER);
        CREATE INDEX b_a ON b (a_id)
        """
    )
    return db


def plan_text(db, sql):
    return "\n".join(line for (line,) in db.execute(f"EXPLAIN {sql}").rows)


class TestExplainOutput:
    def test_point_query_uses_pk_index(self, db):
        text = plan_text(db, "SELECT * FROM a WHERE id = 1")
        assert "IndexLookup(a via a_pk)" in text

    def test_full_scan_without_predicate(self, db):
        assert "SeqScan(a)" in plan_text(db, "SELECT * FROM a")

    def test_indexed_join_uses_index_nested_loop(self, db):
        text = plan_text(db, "SELECT * FROM a JOIN b ON b.a_id = a.id")
        assert "IndexNestedLoopJoin" in text
        assert "via b_pk" in text or "via b_a" in text or "via a_pk" in text

    def test_non_indexed_equi_join_uses_hash_join(self, db):
        db.execute("CREATE TABLE c (x INTEGER)")
        text = plan_text(db, "SELECT * FROM c AS l JOIN c AS r ON l.x = r.x")
        assert "HashJoin" in text

    def test_aggregate_and_sort_visible(self, db):
        text = plan_text(
            db, "SELECT grp, COUNT(*) FROM a GROUP BY grp ORDER BY grp"
        )
        assert "Aggregate(1 group key(s), 1 aggregate(s))" in text
        assert "Sort(1 key(s))" in text

    def test_recursive_cte_sections(self, db):
        text = plan_text(
            db,
            "WITH RECURSIVE r (n) AS (SELECT 1 UNION SELECT n + 1 FROM r "
            "WHERE n < 5) SELECT * FROM r",
        )
        assert "materialize recursive cte r (UNION)" in text
        assert "seed branch:" in text
        assert "recursive branch (joins the delta):" in text

    def test_explain_method_facade(self, db):
        result = db.explain("SELECT * FROM a")
        assert result.columns == ["plan"]
        assert result.rows

    def test_view_appears_as_subplan(self, db):
        db.execute("CREATE VIEW va AS SELECT id FROM a WHERE v > 1")
        text = plan_text(db, "SELECT * FROM va")
        assert "Subplan" in text


class TestPDMPlanShape:
    """The access-path decisions that make the paper-scale simulation
    feasible must be visible in the recursive MLE plan."""

    def test_recursive_mle_probes_link_by_index(self, figure2_db):
        sql = render_select(
            QueryModificator(RuleTable(), "scott", {})
            .modify_recursive(recursive_mle_spec(), "multi_level_expand")
            .to_statement()
        )
        text = "\n".join(
            line for (line,) in figure2_db.execute(f"EXPLAIN {sql}").rows
        )
        assert "materialize recursive cte rtbl" in text
        # The recursion joins delta -> link via the link.left hash index,
        # then link -> assy/comp via their primary keys.
        assert "IndexNestedLoopJoin(INNER probe link via link_left_idx)" in text
        assert "probe assy via assy_pk" in text
        assert "probe comp via comp_pk" in text

    def test_navigational_child_fetch_uses_link_index(self, figure2_db):
        text = "\n".join(
            line
            for (line,) in figure2_db.execute(
                "EXPLAIN SELECT * FROM link JOIN assy ON link.right = assy.obid "
                "WHERE link.left = ?"
            ).rows
        )
        assert "IndexLookup(link via link_left_idx)" in text
