"""Statement-level round trip: ``parse(render(statement))`` must return
the *same AST* — not merely the same text.

This is the property that caught a real bug: set operations associate
left, so ``a UNION (b EXCEPT c)`` must render with parentheses or it
re-parses as ``(a UNION b) EXCEPT c`` — different semantics, silently.
The generator therefore builds arbitrarily-shaped (left- AND
right-nested) set-operation trees, plus the other shapes the analyzer
leans on: NOT EXISTS, IN-lists, recursive CTEs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_statement
from repro.sqldb.render import render_statement


def core(table: str, column: str = "a") -> ast.SelectCore:
    return ast.SelectCore(
        items=[ast.SelectItem(expression=ast.ColumnRef(name=column))],
        from_items=[ast.TableRef(name=table)],
    )


tables = st.sampled_from(["t1", "t2", "t3", "t4"])
operators = st.sampled_from(["UNION", "UNION ALL", "EXCEPT", "INTERSECT"])

set_op_bodies = st.recursive(
    tables.map(core),
    lambda children: st.builds(
        lambda op, left, right: ast.SetOperation(
            operator=op, left=left, right=right
        ),
        operators,
        children,
        children,
    ),
    max_leaves=8,
)


@st.composite
def statements(draw):
    return ast.SelectStatement(body=draw(set_op_bodies))


@settings(max_examples=200, deadline=None)
@given(statements())
def test_set_operation_tree_roundtrip(statement):
    rendered = render_statement(statement)
    assert parse_statement(rendered) == statement


def roundtrip(sql: str) -> None:
    first = parse_statement(sql)
    rendered = render_statement(first)
    assert parse_statement(rendered) == first


class TestRegression:
    def test_right_nested_except_under_union(self):
        # The original bug: without parentheses this re-parsed
        # left-associated and changed which rows are removed.
        statement = ast.SelectStatement(
            body=ast.SetOperation(
                operator="UNION",
                left=core("t1"),
                right=ast.SetOperation(
                    operator="EXCEPT", left=core("t2"), right=core("t3")
                ),
            )
        )
        rendered = render_statement(statement)
        assert "(" in rendered
        assert parse_statement(rendered) == statement

    def test_left_nested_stays_unparenthesised(self):
        statement = ast.SelectStatement(
            body=ast.SetOperation(
                operator="EXCEPT",
                left=ast.SetOperation(
                    operator="UNION", left=core("t1"), right=core("t2")
                ),
                right=core("t3"),
            )
        )
        rendered = render_statement(statement)
        assert rendered == (
            "SELECT a FROM t1 UNION SELECT a FROM t2 EXCEPT SELECT a FROM t3"
        )
        assert parse_statement(rendered) == statement

    def test_parenthesised_set_operation_parses(self):
        left_first = parse_statement(
            "SELECT a FROM t1 UNION SELECT a FROM t2 EXCEPT SELECT a FROM t3"
        )
        right_first = parse_statement(
            "SELECT a FROM t1 UNION (SELECT a FROM t2 EXCEPT SELECT a FROM t3)"
        )
        assert left_first != right_first
        assert isinstance(right_first.body.right, ast.SetOperation)

    def test_not_exists_roundtrip(self):
        roundtrip(
            "SELECT a FROM t1 WHERE NOT EXISTS "
            "(SELECT b FROM t2 WHERE t2.b = t1.a)"
        )

    def test_in_list_roundtrip(self):
        roundtrip("SELECT a FROM t1 WHERE a IN (?, ?, ?)")
        roundtrip("SELECT a FROM t1 WHERE a NOT IN (1, 2, 3)")

    def test_recursive_cte_roundtrip(self):
        roundtrip(
            "WITH RECURSIVE r(obid, depth) AS ("
            "SELECT obid, 0 FROM part WHERE obid = ? "
            "UNION ALL SELECT l.right, r.depth + 1 "
            "FROM r JOIN link l ON l.left = r.obid WHERE r.depth < ?"
            ") SELECT obid FROM r ORDER BY depth"
        )

    def test_set_operation_semantics_differ(self):
        # Execution-level proof that the parenthesisation matters.
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE t1 (a INTEGER)")
        db.execute("CREATE TABLE t2 (a INTEGER)")
        db.execute("CREATE TABLE t3 (a INTEGER)")
        db.execute("INSERT INTO t1 VALUES (1)")
        db.execute("INSERT INTO t2 VALUES (1)")
        db.execute("INSERT INTO t3 VALUES (1)")
        left_first = db.execute(
            "SELECT a FROM t1 UNION SELECT a FROM t2 EXCEPT SELECT a FROM t3"
        )
        right_first = db.execute(
            "SELECT a FROM t1 UNION (SELECT a FROM t2 EXCEPT SELECT a FROM t3)"
        )
        assert left_first.rows == []
        assert right_first.rows == [(1,)]
