"""Advanced query shapes: combinations the basic suites don't reach."""

import pytest

from repro.errors import ParseError
from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE sale (region VARCHAR(8), item VARCHAR(8), amount INTEGER);
        CREATE TABLE target (region VARCHAR(8), goal INTEGER)
        """
    )
    sales = [
        ("north", "bolt", 10),
        ("north", "nut", 20),
        ("south", "bolt", 5),
        ("south", "nut", 40),
        ("south", "gear", 15),
    ]
    db.executemany("INSERT INTO sale VALUES (?, ?, ?)", sales)
    db.executemany(
        "INSERT INTO target VALUES (?, ?)", [("north", 25), ("south", 70)]
    )
    return db


class TestMixedShapes:
    def test_exists_in_select_list(self, db):
        result = db.execute(
            "SELECT region, EXISTS (SELECT 1 FROM target "
            "WHERE target.region = sale.region AND goal > 30) "
            "FROM sale WHERE item = 'bolt' ORDER BY 1"
        )
        assert result.rows == [("north", False), ("south", True)]

    def test_case_over_aggregate(self, db):
        result = db.execute(
            "SELECT region, CASE WHEN SUM(amount) >= 60 THEN 'hit' "
            "ELSE 'miss' END FROM sale GROUP BY region ORDER BY 1"
        )
        assert result.rows == [("north", "miss"), ("south", "hit")]

    def test_group_key_expression_reused_in_select(self, db):
        result = db.execute(
            "SELECT UPPER(region), COUNT(*) FROM sale "
            "GROUP BY UPPER(region) ORDER BY 1"
        )
        assert result.rows == [("NORTH", 2), ("SOUTH", 3)]

    def test_aggregate_compared_to_correlated_scalar(self, db):
        result = db.execute(
            "SELECT region FROM sale GROUP BY region "
            "HAVING SUM(amount) >= (SELECT goal FROM target "
            "WHERE target.region = sale.region)"
        )
        # north: 30 >= 25 hit; south: 60 >= 70 miss.
        assert result.column("region") == ["north"]

    def test_union_inside_in_subquery(self, db):
        result = db.execute(
            "SELECT DISTINCT item FROM sale WHERE region IN "
            "(SELECT 'north' UNION SELECT 'east') ORDER BY 1"
        )
        assert result.column("item") == ["bolt", "nut"]

    def test_cte_feeding_aggregate(self, db):
        result = db.execute(
            "WITH big AS (SELECT * FROM sale WHERE amount > 9) "
            "SELECT region, COUNT(*) FROM big GROUP BY region ORDER BY 1"
        )
        assert result.rows == [("north", 2), ("south", 2)]

    def test_nested_cte_in_subquery(self, db):
        result = db.execute(
            "SELECT (WITH m AS (SELECT MAX(amount) AS top FROM sale) "
            "SELECT top FROM m)"
        )
        assert result.scalar() == 40

    def test_view_over_cte_free_query_then_joined(self, db):
        db.execute(
            "CREATE VIEW per_region AS "
            "SELECT region, SUM(amount) AS total FROM sale GROUP BY region"
        )
        result = db.execute(
            "SELECT per_region.region, total, goal FROM per_region "
            "JOIN target ON per_region.region = target.region "
            "WHERE total < goal"
        )
        assert result.rows == [("south", 60, 70)]

    def test_derived_table_with_alias_columns(self, db):
        result = db.execute(
            "SELECT d.r, d.n FROM (SELECT region AS r, COUNT(*) AS n "
            "FROM sale GROUP BY region) AS d ORDER BY d.n DESC"
        )
        assert result.rows == [("south", 3), ("north", 2)]

    def test_order_by_expression_not_in_select(self, db):
        result = db.execute(
            "SELECT item FROM sale WHERE region = 'south' "
            "ORDER BY amount * -1"
        )
        assert result.column("item") == ["nut", "gear", "bolt"]

    def test_distinct_with_hidden_order_key_rejected(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT DISTINCT item FROM sale ORDER BY amount")

    def test_between_with_subqueries(self, db):
        result = db.execute(
            "SELECT item FROM sale WHERE amount BETWEEN "
            "(SELECT MIN(goal) FROM target) / 2 AND "
            "(SELECT MAX(goal) FROM target) ORDER BY amount"
        )
        assert result.column("item") == ["gear", "nut", "nut"]

    def test_self_referencing_scalar_subquery_per_row(self, db):
        result = db.execute(
            "SELECT item, amount, "
            "(SELECT SUM(amount) FROM sale AS inner_s "
            " WHERE inner_s.region = sale.region) AS region_total "
            "FROM sale WHERE item = 'gear'"
        )
        assert result.rows == [("gear", 15, 60)]

    def test_except_of_aggregated_sets(self, db):
        result = db.execute(
            "SELECT region FROM sale GROUP BY region "
            "EXCEPT SELECT region FROM target WHERE goal > 50"
        )
        assert result.column("region") == ["north"]

    def test_multi_level_view_stack_with_parameters(self, db):
        db.execute("CREATE VIEW v1 AS SELECT region, amount FROM sale")
        db.execute("CREATE VIEW v2 AS SELECT region FROM v1 WHERE amount > 10")
        result = db.execute(
            "SELECT COUNT(*) FROM v2 WHERE region = ?", ["south"]
        )
        assert result.scalar() == 2
