"""Parser tests: statement shapes, precedence, error reporting."""

import pytest

from repro.errors import ParseError
from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_expression, parse_script, parse_statement


class TestSelectBasics:
    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt, ast.SelectStatement)
        assert isinstance(stmt.body.items[0], ast.Star)
        assert stmt.body.from_items[0].name == "t"

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.body.items[0].qualifier == "t"

    def test_select_without_from(self):
        stmt = parse_statement("SELECT 1 + 1")
        assert stmt.body.from_items == []

    def test_alias_with_and_without_as(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t")
        assert stmt.body.items[0].alias == "x"
        assert stmt.body.items[1].alias == "y"

    def test_quoted_alias(self):
        stmt = parse_statement('SELECT dec AS "DEC" FROM assy')
        assert stmt.body.items[0].alias == "DEC"

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").body.distinct

    def test_where_clause(self):
        stmt = parse_statement("SELECT a FROM t WHERE a = 1")
        assert isinstance(stmt.body.where, ast.BinaryOp)

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert len(stmt.body.group_by) == 1
        assert stmt.body.having is not None

    def test_order_by_positions_and_direction(self):
        stmt = parse_statement("SELECT a, b FROM t ORDER BY 1, b DESC")
        assert stmt.order_by[0].expression.value == 1
        assert stmt.order_by[1].descending

    def test_limit(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 5")
        assert stmt.limit.value == 5

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 FROM t banana nonsense")

    def test_trailing_semicolon_accepted(self):
        parse_statement("SELECT 1;")


class TestJoins:
    def test_inner_join_chain(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = stmt.body.from_items[0]
        assert isinstance(outer, ast.Join)
        assert isinstance(outer.left, ast.Join)

    def test_left_join(self):
        stmt = parse_statement("SELECT * FROM a LEFT JOIN b ON a.x = b.x")
        assert stmt.body.from_items[0].kind == "LEFT"

    def test_left_outer_join(self):
        stmt = parse_statement("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert stmt.body.from_items[0].kind == "LEFT"

    def test_cross_join(self):
        stmt = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert stmt.body.from_items[0].kind == "CROSS"

    def test_comma_join(self):
        stmt = parse_statement("SELECT * FROM a, b WHERE a.x = b.x")
        assert len(stmt.body.from_items) == 2

    def test_table_alias(self):
        stmt = parse_statement("SELECT * FROM specified_by AS s")
        assert stmt.body.from_items[0].alias == "s"

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT 1 AS one) AS d")
        assert isinstance(stmt.body.from_items[0], ast.SubqueryRef)

    def test_join_missing_on_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM a JOIN b")

    def test_left_as_column_name(self):
        # The paper's schema: "left" is a column of the link table.
        stmt = parse_statement("SELECT left, right FROM link WHERE left = 1")
        assert stmt.body.items[0].expression.name == "left"


class TestExpressions:
    def test_precedence_or_and(self):
        expr = parse_expression("a OR b AND c")
        assert expr.operator == "OR"
        assert expr.right.operator == "AND"

    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.operator == "+"
        assert expr.right.operator == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.operator == "*"

    def test_not_precedence(self):
        expr = parse_expression("NOT a = 1")
        # NOT binds looser than comparison: NOT (a = 1).
        assert isinstance(expr, ast.UnaryOp)
        assert isinstance(expr.operand, ast.BinaryOp)

    def test_bang_equals_normalised(self):
        expr = parse_expression("a != 1")
        assert expr.operator == "<>"

    def test_is_null_and_is_not_null(self):
        assert parse_expression("a IS NULL").negated is False
        assert parse_expression("a IS NOT NULL").negated is True

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        assert parse_expression("x NOT BETWEEN 1 AND 10").negated

    def test_like(self):
        expr = parse_expression("name LIKE 'Assy%'")
        assert isinstance(expr, ast.Like)

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_in_subquery(self):
        expr = parse_expression("x IN (SELECT y FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.ExistsTest)
        assert not expr.negated

    def test_not_exists(self):
        expr = parse_expression("NOT EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.ExistsTest)
        assert expr.negated

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT COUNT(*) FROM t) <= 10")
        assert isinstance(expr.left, ast.ScalarSubquery)

    def test_cast_with_length(self):
        expr = parse_expression("CAST(x AS VARCHAR(10))")
        assert expr.target.name == "VARCHAR"
        assert expr.target.length == 10

    def test_cast_null_as_integer(self):
        expr = parse_expression("CAST(NULL AS integer)")
        assert expr.operand.value is None
        assert expr.target.name == "INTEGER"

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.CaseWhen)
        assert len(expr.branches) == 1
        assert expr.default is not None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_function_call(self):
        expr = parse_expression("options_overlap(strc_opt, 3)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "options_overlap"  # case preserved (registry is case-insensitive)

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert expr.star

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT x)")
        assert expr.distinct

    def test_parameters_numbered_in_order(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = ? AND b = ?")
        params = [
            node
            for node in ast.walk_expression(stmt.body.where)
            if isinstance(node, ast.Parameter)
        ]
        assert sorted(p.index for p in params) == [0, 1]

    def test_unary_minus(self):
        expr = parse_expression("-x + 1")
        assert expr.operator == "+"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_string_concat(self):
        assert parse_expression("a || b").operator == "||"


class TestSetOperationsAndCTEs:
    def test_union(self):
        stmt = parse_statement("SELECT 1 UNION SELECT 2")
        assert isinstance(stmt.body, ast.SetOperation)
        assert stmt.body.operator == "UNION"

    def test_union_all(self):
        stmt = parse_statement("SELECT 1 UNION ALL SELECT 2")
        assert stmt.body.operator == "UNION ALL"

    def test_intersect_and_except(self):
        assert parse_statement("SELECT 1 INTERSECT SELECT 2").body.operator == "INTERSECT"
        assert parse_statement("SELECT 1 EXCEPT SELECT 2").body.operator == "EXCEPT"

    def test_union_left_associative(self):
        stmt = parse_statement("SELECT 1 UNION SELECT 2 UNION ALL SELECT 3")
        assert stmt.body.operator == "UNION ALL"
        assert stmt.body.left.operator == "UNION"

    def test_with_clause(self):
        stmt = parse_statement("WITH x AS (SELECT 1 AS a) SELECT a FROM x")
        assert not stmt.with_clause.recursive
        assert stmt.with_clause.ctes[0].name == "x"

    def test_with_recursive_column_list(self):
        stmt = parse_statement(
            "WITH RECURSIVE r (n) AS (SELECT 1 UNION SELECT n + 1 FROM r) "
            "SELECT n FROM r"
        )
        assert stmt.with_clause.recursive
        assert stmt.with_clause.ctes[0].columns == ["n"]

    def test_multiple_ctes(self):
        stmt = parse_statement(
            "WITH a AS (SELECT 1 AS x), b AS (SELECT 2 AS y) "
            "SELECT * FROM a, b"
        )
        assert len(stmt.with_clause.ctes) == 2

    def test_paper_recursive_query_parses(self):
        sql = """
        WITH RECURSIVE rtbl (type, obid, name, dec) AS
        (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
         UNION
         SELECT assy.type, assy.obid, assy.name, assy.dec
         FROM rtbl JOIN link ON rtbl.obid=link.left
                   JOIN assy ON link.right=assy.obid
         UNION
         SELECT comp.type, comp.obid, comp.name, ''
         FROM rtbl JOIN link ON rtbl.obid=link.left
                   JOIN comp ON link.right=comp.obid)
        SELECT type, obid, name, dec AS "DEC",
               cast (NULL AS integer) AS "LEFT",
               cast (NULL AS integer) AS "RIGHT",
               cast (NULL AS integer) AS "EFF_FROM",
               cast (NULL AS integer) AS "EFF_TO"
        FROM rtbl
        UNION
        SELECT type, obid, '' AS "NAME", '' AS "DEC",
               left, right, eff_from, eff_to
        FROM link
        WHERE (left IN (SELECT obid FROM rtbl)
               AND right IN (SELECT obid FROM rtbl))
        ORDER BY 1,2
        """
        stmt = parse_statement(sql)
        assert stmt.with_clause.recursive
        assert len(stmt.order_by) == 2


class TestDDLAndDML:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20) NOT NULL)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[1].sql_type.length == 20

    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX i ON t (a, b)")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.columns == ["a", "b"]

    def test_create_unique_index(self):
        assert parse_statement("CREATE UNIQUE INDEX i ON t (a)").unique

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE t")
        assert isinstance(stmt, ast.DropTable)

    def test_insert_values_multi_row(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM s")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a < 0")
        assert isinstance(stmt, ast.Delete)

    def test_script_splits_statements(self):
        statements = parse_script("SELECT 1; SELECT 2; SELECT 3")
        assert len(statements) == 3

    def test_empty_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("")
