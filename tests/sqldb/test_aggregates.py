"""Aggregation: GROUP BY, HAVING, empty groups, NULL handling."""

import pytest

from repro.errors import ParseError
from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        "CREATE TABLE m (grp VARCHAR(4), val INTEGER, weight DOUBLE)"
    )
    rows = [
        ("a", 1, 1.0),
        ("a", 2, 2.0),
        ("a", None, 3.0),
        ("b", 10, None),
        ("b", 20, 4.0),
    ]
    for row in rows:
        db.execute("INSERT INTO m VALUES (?, ?, ?)", row)
    return db


class TestPlainAggregates:
    def test_count_star_counts_rows(self, db):
        assert db.execute("SELECT COUNT(*) FROM m").scalar() == 5

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT COUNT(val) FROM m").scalar() == 4

    def test_sum_avg_min_max(self, db):
        row = db.execute(
            "SELECT SUM(val), AVG(val), MIN(val), MAX(val) FROM m"
        ).fetchone()
        assert row == (33, 33 / 4, 1, 20)

    def test_aggregates_over_empty_table(self, db):
        db.execute("DELETE FROM m")
        row = db.execute("SELECT COUNT(*), SUM(val), MAX(val) FROM m").fetchone()
        assert row == (0, None, None)

    def test_count_distinct(self, db):
        db.execute("INSERT INTO m VALUES ('c', 1, 0.5)")
        assert db.execute("SELECT COUNT(DISTINCT val) FROM m").scalar() == 4

    def test_aggregate_of_expression(self, db):
        assert db.execute("SELECT SUM(val * 2) FROM m").scalar() == 66

    def test_expression_of_aggregates(self, db):
        assert db.execute("SELECT MAX(val) - MIN(val) FROM m").scalar() == 19


class TestGroupBy:
    def test_group_by_counts(self, db):
        result = db.execute(
            "SELECT grp, COUNT(*) FROM m GROUP BY grp ORDER BY grp"
        )
        assert result.rows == [("a", 3), ("b", 2)]

    def test_group_key_in_select(self, db):
        result = db.execute(
            "SELECT grp, SUM(val) FROM m GROUP BY grp ORDER BY grp"
        )
        assert result.rows == [("a", 3), ("b", 30)]

    def test_group_by_expression(self, db):
        result = db.execute(
            "SELECT val % 2, COUNT(*) FROM m WHERE val IS NOT NULL "
            "GROUP BY val % 2 ORDER BY 1"
        )
        assert result.rows == [(0, 3), (1, 1)]

    def test_having_filters_groups(self, db):
        result = db.execute(
            "SELECT grp FROM m GROUP BY grp HAVING COUNT(val) >= 2 ORDER BY grp"
        )
        assert result.column("grp") == ["a", "b"]
        result = db.execute(
            "SELECT grp FROM m GROUP BY grp HAVING SUM(val) > 10"
        )
        assert result.column("grp") == ["b"]

    def test_having_without_group_by_or_aggregate_rejected(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT grp FROM m HAVING grp = 'a'")

    def test_ungrouped_column_in_select_rejected(self, db):
        with pytest.raises(Exception):
            db.execute("SELECT val, COUNT(*) FROM m GROUP BY grp")

    def test_group_by_with_where(self, db):
        result = db.execute(
            "SELECT grp, COUNT(*) FROM m WHERE weight IS NOT NULL "
            "GROUP BY grp ORDER BY grp"
        )
        assert result.rows == [("a", 3), ("b", 1)]

    def test_group_by_null_key_forms_group(self, db):
        db.execute("INSERT INTO m VALUES (NULL, 7, 1.0)")
        result = db.execute("SELECT grp, COUNT(*) FROM m GROUP BY grp")
        groups = dict(result.rows)
        assert groups[None] == 1

    def test_order_by_aggregate(self, db):
        result = db.execute(
            "SELECT grp FROM m GROUP BY grp ORDER BY SUM(val) DESC"
        )
        assert result.column("grp") == ["b", "a"]


class TestPaperAggregatePatterns:
    """The tree-aggregate condition shapes of Section 5.3.3."""

    def test_count_with_type_filter(self, db):
        value = db.execute(
            "SELECT COUNT(*) FROM m WHERE grp = 'a'"
        ).scalar()
        assert value == 3

    def test_avg_threshold_comparison(self, db):
        result = db.execute(
            "SELECT * FROM m WHERE (SELECT AVG(weight) FROM m) <= 12"
        )
        assert len(result) == 5
        result = db.execute(
            "SELECT * FROM m WHERE (SELECT AVG(weight) FROM m) <= 1"
        )
        assert len(result) == 0
