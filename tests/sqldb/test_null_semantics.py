"""SQL NULL semantics — the classic divergence point between a toy engine
and a credible one.  Every behaviour here matches the SQL standard."""

import pytest

from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, NULL), (3, 30)")
    return db


class TestComparisons:
    def test_equals_null_matches_nothing(self, db):
        assert len(db.execute("SELECT * FROM t WHERE v = NULL")) == 0

    def test_not_equals_null_matches_nothing(self, db):
        assert len(db.execute("SELECT * FROM t WHERE v <> NULL")) == 0

    def test_null_comparison_in_negation(self, db):
        # NOT (v > 5): UNKNOWN stays UNKNOWN, row 2 is still dropped.
        result = db.execute("SELECT id FROM t WHERE NOT (v > 5)")
        assert result.rows == []

    def test_is_null_is_the_only_way(self, db):
        assert db.execute("SELECT id FROM t WHERE v IS NULL").scalar() == 2

    def test_between_with_null_bound(self, db):
        assert len(db.execute("SELECT * FROM t WHERE v BETWEEN NULL AND 20")) == 0

    def test_case_condition_unknown_falls_through(self, db):
        result = db.execute(
            "SELECT CASE WHEN v > 5 THEN 'big' ELSE 'other' END FROM t "
            "WHERE id = 2"
        )
        assert result.scalar() == "other"


class TestThreeValuedConnectives:
    def test_unknown_or_true_is_true(self, db):
        result = db.execute("SELECT id FROM t WHERE v > 5 OR id = 2")
        assert sorted(result.column("id")) == [1, 2, 3]

    def test_unknown_and_false_is_false(self, db):
        result = db.execute("SELECT id FROM t WHERE v > 5 AND id <> id")
        assert result.rows == []

    def test_unknown_and_true_drops_row(self, db):
        result = db.execute("SELECT id FROM t WHERE v > 5 AND id > 0")
        assert sorted(result.column("id")) == [1, 3]


class TestNullInOperations:
    def test_arithmetic_propagates(self, db):
        assert db.execute("SELECT v + 1 FROM t WHERE id = 2").scalar() is None
        assert db.execute("SELECT v * 0 FROM t WHERE id = 2").scalar() is None

    def test_functions_propagate(self, db):
        assert db.execute("SELECT ABS(v) FROM t WHERE id = 2").scalar() is None

    def test_aggregates_skip_nulls(self, db):
        row = db.execute("SELECT COUNT(*), COUNT(v), AVG(v) FROM t").fetchone()
        assert row == (3, 2, 20)

    def test_like_with_null(self, db):
        db.execute("CREATE TABLE s (name VARCHAR(10))")
        db.execute("INSERT INTO s VALUES (NULL), ('abc')")
        assert len(db.execute("SELECT * FROM s WHERE name LIKE 'a%'")) == 1
        assert len(db.execute("SELECT * FROM s WHERE name NOT LIKE 'a%'")) == 0

    def test_in_list_with_null_member(self, db):
        # 10 IN (10, NULL) -> TRUE; 20 IN (10, NULL) -> UNKNOWN (dropped).
        assert db.execute("SELECT id FROM t WHERE v IN (10, NULL)").scalar() == 1
        result = db.execute("SELECT id FROM t WHERE v NOT IN (10, NULL)")
        assert result.rows == []

    def test_distinct_treats_nulls_as_one_group(self, db):
        db.execute("INSERT INTO t VALUES (4, NULL)")
        result = db.execute("SELECT DISTINCT v FROM t")
        assert result.column("v").count(None) == 1

    def test_group_by_null_key(self, db):
        db.execute("INSERT INTO t VALUES (4, NULL)")
        result = db.execute("SELECT v, COUNT(*) FROM t GROUP BY v")
        groups = dict(result.rows)
        assert groups[None] == 2

    def test_join_on_null_never_matches(self, db):
        db.execute("CREATE TABLE u (v INTEGER)")
        db.execute("INSERT INTO u VALUES (NULL), (10)")
        result = db.execute("SELECT t.id FROM t JOIN u ON t.v = u.v")
        assert result.column("id") == [1]

    def test_coalesce_picks_first_non_null(self, db):
        result = db.execute(
            "SELECT COALESCE(v, id * 100) FROM t ORDER BY id"
        )
        assert result.column("coalesce") == [10, 200, 30]

    def test_unique_index_allows_multiple_nulls(self, db):
        db.execute("CREATE TABLE w (x INTEGER)")
        db.execute("CREATE UNIQUE INDEX w_x ON w (x)")
        db.execute("INSERT INTO w VALUES (NULL), (NULL)")
        assert db.table_rowcount("w") == 2

    def test_order_by_null_positioning(self, db):
        ascending = db.execute("SELECT v FROM t ORDER BY v").column("v")
        descending = db.execute("SELECT v FROM t ORDER BY v DESC").column("v")
        assert ascending == [10, 30, None]
        assert descending == [None, 30, 10]
