"""Property test: rendering is a fixpoint under re-parsing.

For randomly generated expression ASTs, ``render ∘ parse ∘ render`` must
equal ``render`` — i.e. the conservative parenthesisation really does
preserve structure, whatever the nesting.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_expression
from repro.sqldb.render import render_expression

literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(ast.Literal),
    st.booleans().map(ast.Literal),
    st.just(ast.Literal(None)),
    st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
        max_size=8,
    ).map(ast.Literal),
)

column_names = st.sampled_from(["obid", "name", "weight", "left", "dec"])
qualifiers = st.sampled_from([None, "assy", "link", "t1"])

columns = st.builds(
    lambda name, qualifier: ast.ColumnRef(name=name, qualifier=qualifier),
    column_names,
    qualifiers,
)

comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
arithmetic_ops = st.sampled_from(["+", "-", "*", "/"])
boolean_ops = st.sampled_from(["AND", "OR"])


def expressions(depth: int):
    if depth <= 0:
        return st.one_of(literals, columns)
    sub = expressions(depth - 1)
    return st.one_of(
        literals,
        columns,
        st.builds(
            lambda op, l, r: ast.BinaryOp(operator=op, left=l, right=r),
            st.one_of(comparison_ops, arithmetic_ops, boolean_ops),
            sub,
            sub,
        ),
        st.builds(lambda e: ast.UnaryOp(operator="NOT", operand=e), sub),
        st.builds(lambda e: ast.UnaryOp(operator="-", operand=e), sub),
        st.builds(
            lambda e, negated: ast.IsNullTest(operand=e, negated=negated),
            sub,
            st.booleans(),
        ),
        st.builds(
            lambda e, items, negated: ast.InList(
                operand=e, items=items, negated=negated
            ),
            sub,
            st.lists(literals, min_size=1, max_size=3),
            st.booleans(),
        ),
        st.builds(
            lambda e, low, high: ast.Between(operand=e, low=low, high=high),
            sub,
            sub,
            sub,
        ),
        st.builds(
            lambda name, args: ast.FunctionCall(name=name, args=args),
            st.sampled_from(["f", "options_overlap", "abs"]),
            st.lists(sub, max_size=2),
        ),
    )


class TestRenderFixpoint:
    @given(expressions(3))
    @settings(max_examples=200, deadline=None)
    def test_render_normalises_within_one_round(self, expression):
        """render∘parse reaches a stable normal form after one round.

        (A strict textual fixpoint on the *first* render is impossible:
        e.g. a nested negation of a literal renders as "-(0)" and then
        normalises to "0".)"""
        first = render_expression(parse_expression(render_expression(expression)))
        second = render_expression(parse_expression(first))
        assert second == first

    @given(expressions(2), expressions(2))
    @settings(max_examples=100, deadline=None)
    def test_statement_roundtrip(self, where, item):
        statement = ast.SelectStatement(
            body=ast.SelectCore(
                items=[ast.SelectItem(expression=item, alias="x")],
                from_items=[ast.TableRef(name="t")],
                where=where,
            )
        )
        from repro.sqldb.parser import parse_statement
        from repro.sqldb.render import render_statement

        rendered = render_statement(parse_statement(render_statement(statement)))
        assert render_statement(parse_statement(rendered)) == rendered
