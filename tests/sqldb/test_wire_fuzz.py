"""Fuzzing the wire decoders: arbitrary bytes must fail *cleanly*.

A malformed frame from a broken client may reject with ProtocolError but
must never raise anything else (no IndexError/struct.error/etc. escaping
into the server loop) and must never hang.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, ReproError
from repro.server import protocol
from repro.sqldb import wire

arbitrary_bytes = st.binary(max_size=300)


def must_fail_cleanly(decoder, payload):
    try:
        decoder(payload)
    except ProtocolError:
        pass  # the only error class a decoder may raise


class TestDecoderFuzz:
    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_query(self, payload):
        must_fail_cleanly(wire.decode_query, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_result(self, payload):
        must_fail_cleanly(wire.decode_result, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_procedure_call(self, payload):
        must_fail_cleanly(protocol.decode_procedure_call, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_decode_envelope(self, payload):
        must_fail_cleanly(protocol.decode_envelope, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_batch(self, payload):
        must_fail_cleanly(protocol.decode_batch, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_batch_result(self, payload):
        must_fail_cleanly(protocol.decode_batch_result, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_decode_stats(self, payload):
        must_fail_cleanly(protocol.decode_stats, payload)

    @given(
        st.lists(
            st.tuples(
                st.text(max_size=40),
                st.lists(
                    st.integers(min_value=-(2**63), max_value=2**63 - 1),
                    max_size=4,
                ),
            ),
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_batch_round_trips_through_codec(self, statements):
        decoded = protocol.decode_batch(protocol.encode_batch(statements))
        assert [(sql, list(params)) for sql, params in decoded] == [
            (sql, list(params)) for sql, params in statements
        ]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [protocol.BATCH_ENTRY_RESULT, protocol.BATCH_ENTRY_ERROR]
                ),
                st.binary(max_size=60),
            ),
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_batch_result_round_trips_through_codec(self, entries):
        encoded = protocol.encode_batch_result(entries)
        assert protocol.decode_batch_result(encoded) == entries


class TestServerSurvivesGarbage:
    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_server_answers_error_frames(self, payload):
        """The server must turn any garbage request into an ERROR response
        (or a valid response if the bytes happen to parse) — never crash."""
        from repro.server.server import DatabaseServer
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        server = DatabaseServer(db)
        response = server.handle(payload)
        opcode, __ = protocol.decode_envelope(response)
        assert opcode in (
            protocol.Opcode.RESULT,
            protocol.Opcode.PROCEDURE_RESULT,
            protocol.Opcode.PONG,
            protocol.Opcode.ERROR,
            protocol.Opcode.BATCH_RESULT,
            protocol.Opcode.STATS_RESULT,
        )

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_server_survives_garbage_batch_bodies(self, payload):
        """A BATCH envelope around arbitrary bytes must come back as an
        ERROR (malformed body) or a BATCH_RESULT (parseable body) — the
        batch path may not crash the server either."""
        from repro.server.server import DatabaseServer
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        server = DatabaseServer(db)
        response = server.handle(bytes([protocol.Opcode.BATCH.value]) + payload)
        opcode, __ = protocol.decode_envelope(response)
        assert opcode in (
            protocol.Opcode.BATCH_RESULT,
            protocol.Opcode.ERROR,
        )
