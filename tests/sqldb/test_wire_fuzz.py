"""Fuzzing the wire decoders: arbitrary bytes must fail *cleanly*.

A malformed frame from a broken client may reject with ProtocolError but
must never raise anything else (no IndexError/struct.error/etc. escaping
into the server loop) and must never hang.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.server import protocol
from repro.sqldb import wire

arbitrary_bytes = st.binary(max_size=300)


def must_fail_cleanly(decoder, payload):
    try:
        decoder(payload)
    except ProtocolError:
        pass  # the only error class a decoder may raise


class TestDecoderFuzz:
    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_query(self, payload):
        must_fail_cleanly(wire.decode_query, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_result(self, payload):
        must_fail_cleanly(wire.decode_result, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_procedure_call(self, payload):
        must_fail_cleanly(protocol.decode_procedure_call, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_decode_envelope(self, payload):
        must_fail_cleanly(protocol.decode_envelope, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_batch(self, payload):
        must_fail_cleanly(protocol.decode_batch, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_batch_result(self, payload):
        must_fail_cleanly(protocol.decode_batch_result, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_decode_stats(self, payload):
        must_fail_cleanly(protocol.decode_stats, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_decode_session_op(self, payload):
        must_fail_cleanly(protocol.decode_session_op, payload)

    @given(
        st.lists(
            st.tuples(
                st.text(max_size=40),
                st.lists(
                    st.integers(min_value=-(2**63), max_value=2**63 - 1),
                    max_size=4,
                ),
            ),
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_batch_round_trips_through_codec(self, statements):
        decoded = protocol.decode_batch(protocol.encode_batch(statements))
        assert [(sql, list(params)) for sql, params in decoded] == [
            (sql, list(params)) for sql, params in statements
        ]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [protocol.BATCH_ENTRY_RESULT, protocol.BATCH_ENTRY_ERROR]
                ),
                st.binary(max_size=60),
            ),
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_batch_result_round_trips_through_codec(self, entries):
        encoded = protocol.encode_batch_result(entries)
        assert protocol.decode_batch_result(encoded) == entries


class TestServerSurvivesGarbage:
    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_server_answers_error_frames(self, payload):
        """The server must turn any garbage request into an ERROR response
        (or a valid response if the bytes happen to parse) — never crash."""
        from repro.server.server import DatabaseServer
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        server = DatabaseServer(db)
        response = server.handle(payload)
        opcode, __ = protocol.decode_envelope(response)
        assert opcode in (
            protocol.Opcode.RESULT,
            protocol.Opcode.PROCEDURE_RESULT,
            protocol.Opcode.PONG,
            protocol.Opcode.ERROR,
            protocol.Opcode.BATCH_RESULT,
            protocol.Opcode.STATS_RESULT,
            # Garbage that happens to be a CRC-valid SEQUENCED frame (e.g.
            # 13 zero bytes: crc32(b"") == 0) is answered in kind.
            protocol.Opcode.SEQUENCED_RESULT,
        )

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_session_server_survives_garbage_session_frames(self, payload):
        """Each session/transaction opcode over arbitrary bytes must be
        answered with its result frame (a 4-byte body that parses) or a
        clean ERROR — on a server with and without session support."""
        from repro.concurrency import SessionManager
        from repro.server.server import DatabaseServer
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        servers = (
            DatabaseServer(db),
            DatabaseServer(db, sessions=SessionManager(db)),
        )
        for server in servers:
            for opcode in protocol.SESSION_OPCODES:
                response = server.handle(bytes([opcode.value]) + payload)
                answer, __ = protocol.decode_envelope(response)
                assert answer in (
                    protocol.Opcode.SESSION_RESULT,
                    protocol.Opcode.TXN_RESULT,
                    protocol.Opcode.ERROR,
                )

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_server_survives_garbage_batch_bodies(self, payload):
        """A BATCH envelope around arbitrary bytes must come back as an
        ERROR (malformed body) or a BATCH_RESULT (parseable body) — the
        batch path may not crash the server either."""
        from repro.server.server import DatabaseServer
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        server = DatabaseServer(db)
        response = server.handle(bytes([protocol.Opcode.BATCH.value]) + payload)
        opcode, __ = protocol.decode_envelope(response)
        assert opcode in (
            protocol.Opcode.BATCH_RESULT,
            protocol.Opcode.ERROR,
        )


def make_server():
    from repro.server.server import DatabaseServer
    from repro.sqldb import Database

    db = Database()
    db.execute("CREATE TABLE t (v INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    return DatabaseServer(db)


def valid_batch_frame():
    return protocol.encode_envelope(
        protocol.Opcode.BATCH,
        protocol.encode_batch(
            [("SELECT v FROM t WHERE v = ?", [1]), ("SELECT 1", [])]
        ),
    )


def valid_stats_frame():
    return protocol.encode_envelope(protocol.Opcode.STATS, b"")


class TestDamagedFrames:
    """Truncated / bit-flipped frames of every request kind must be
    answered with an ERROR frame — ``handle()`` never raises."""

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_truncated_batch_frame(self, data):
        frame = valid_batch_frame()
        cut = data.draw(st.integers(min_value=1, max_value=len(frame) - 1))
        response = make_server().handle(frame[:cut])
        opcode, __ = protocol.decode_envelope(response)
        # A cut exactly at an entry boundary can still parse; anything
        # else must come back as a clean ERROR frame.
        assert opcode in (protocol.Opcode.BATCH_RESULT, protocol.Opcode.ERROR)

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_bit_flipped_batch_frame(self, data):
        frame = bytearray(valid_batch_frame())
        position = data.draw(
            st.integers(min_value=0, max_value=len(frame) * 8 - 1)
        )
        frame[position // 8] ^= 1 << (position % 8)
        response = make_server().handle(bytes(frame))
        protocol.decode_envelope(response)  # well-formed, whatever it is

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_damaged_stats_frame(self, data):
        frame = bytearray(valid_stats_frame() + b"garbage-tail")
        position = data.draw(
            st.integers(min_value=0, max_value=len(frame) * 8 - 1)
        )
        frame[position // 8] ^= 1 << (position % 8)
        response = make_server().handle(bytes(frame))
        protocol.decode_envelope(response)  # never raises through handle()

    def test_stats_request_with_trailing_garbage_still_answers(self):
        response = make_server().handle(valid_stats_frame())
        opcode, __ = protocol.decode_envelope(response)
        assert opcode is protocol.Opcode.STATS_RESULT


class TestSequencedFuzz:
    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_sequenced(self, payload):
        must_fail_cleanly(protocol.decode_sequenced, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_server_answers_garbage_sequenced_bodies(self, payload):
        """Arbitrary bytes behind a SEQUENCED opcode are a CRC reject:
        the server answers a plain ERROR frame (retriable) unless the
        bytes happen to form a CRC-valid frame."""
        server = make_server()
        response = server.handle(
            bytes([protocol.Opcode.SEQUENCED.value]) + payload
        )
        opcode, __ = protocol.decode_envelope(response)
        assert opcode in (
            protocol.Opcode.ERROR,
            protocol.Opcode.SEQUENCED_RESULT,
        )

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_damaged_sequenced_batch_answered_with_error(self, data):
        """A sequenced BATCH with any bit flipped fails its CRC: the
        server must reject it without executing anything."""
        server = make_server()
        inner = valid_batch_frame()
        frame = bytearray(
            protocol.encode_envelope(
                protocol.Opcode.SEQUENCED,
                protocol.encode_sequenced(1, 1, inner),
            )
        )
        # Flip a bit in the CRC field or the payload (the CRC does not
        # cover the client id / sequence number: a flip there yields a
        # valid frame for a different client, which the real client
        # rejects on unwrap instead).
        position = data.draw(
            st.integers(min_value=9 * 8, max_value=len(frame) * 8 - 1)
        )
        frame[position // 8] ^= 1 << (position % 8)
        response = server.handle(bytes(frame))
        opcode, __ = protocol.decode_envelope(response)
        assert opcode is protocol.Opcode.ERROR
        assert server.statistics["crc_rejects"] == 1
        assert server.statistics["batches"] == 0
