"""Fuzzing the wire decoders: arbitrary bytes must fail *cleanly*.

A malformed frame from a broken client may reject with ProtocolError but
must never raise anything else (no IndexError/struct.error/etc. escaping
into the server loop) and must never hang.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, ReproError
from repro.server import protocol
from repro.sqldb import wire

arbitrary_bytes = st.binary(max_size=300)


def must_fail_cleanly(decoder, payload):
    try:
        decoder(payload)
    except ProtocolError:
        pass  # the only error class a decoder may raise


class TestDecoderFuzz:
    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_query(self, payload):
        must_fail_cleanly(wire.decode_query, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_result(self, payload):
        must_fail_cleanly(wire.decode_result, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_decode_procedure_call(self, payload):
        must_fail_cleanly(protocol.decode_procedure_call, payload)

    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_decode_envelope(self, payload):
        must_fail_cleanly(protocol.decode_envelope, payload)


class TestServerSurvivesGarbage:
    @given(arbitrary_bytes)
    @settings(max_examples=100, deadline=None)
    def test_server_answers_error_frames(self, payload):
        """The server must turn any garbage request into an ERROR response
        (or a valid response if the bytes happen to parse) — never crash."""
        from repro.server.server import DatabaseServer
        from repro.sqldb import Database

        db = Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        server = DatabaseServer(db)
        response = server.handle(payload)
        opcode, __ = protocol.decode_envelope(response)
        assert opcode in (
            protocol.Opcode.RESULT,
            protocol.Opcode.PROCEDURE_RESULT,
            protocol.Opcode.PONG,
            protocol.Opcode.ERROR,
        )
