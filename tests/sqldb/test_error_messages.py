"""Error quality: wrong SQL must fail with actionable messages, and the
failure must name the offending object."""

import pytest

from repro.errors import (
    CatalogError,
    ExecutionError,
    LexerError,
    ParseError,
    SQLError,
)
from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE a (id INTEGER, x INTEGER)")
    db.execute("CREATE TABLE b (id INTEGER, x INTEGER)")
    return db


class TestNameResolution:
    def test_unknown_table_names_the_table(self, db):
        with pytest.raises(CatalogError, match="ghost"):
            db.execute("SELECT * FROM ghost")

    def test_unknown_column_names_the_column(self, db):
        with pytest.raises(SQLError, match="nope"):
            db.execute("SELECT nope FROM a")

    def test_unknown_alias_named(self, db):
        with pytest.raises(SQLError, match="z"):
            db.execute("SELECT z.id FROM a")

    def test_ambiguous_column_named(self, db):
        with pytest.raises(CatalogError, match="ambiguous.*x"):
            db.execute("SELECT x FROM a JOIN b ON a.id = b.id")

    def test_qualified_reference_disambiguates(self, db):
        db.execute("INSERT INTO a VALUES (1, 10)")
        db.execute("INSERT INTO b VALUES (1, 20)")
        assert db.execute(
            "SELECT b.x FROM a JOIN b ON a.id = b.id"
        ).scalar() == 20

    def test_unknown_function_named(self, db):
        db.execute("INSERT INTO a VALUES (1, 10)")
        with pytest.raises(ExecutionError, match="(?i)frobnicate"):
            db.execute("SELECT frobnicate(id) FROM a")


class TestSyntaxErrors:
    def test_misspelled_keyword(self, db):
        with pytest.raises(ParseError):
            db.execute("SELEKT * FROM a")

    def test_dangling_operator(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT id + FROM a")

    def test_unbalanced_parenthesis(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT (id FROM a")

    def test_unterminated_string_reports_offset(self, db):
        with pytest.raises(LexerError) as excinfo:
            db.execute("SELECT 'oops FROM a")
        assert excinfo.value.position == 7

    def test_error_message_mentions_found_token(self, db):
        with pytest.raises(ParseError, match="WHERE"):
            db.execute("SELECT * FROM WHERE id = 1")


class TestRuntimeErrors:
    def test_too_few_parameters(self, db):
        db.execute("INSERT INTO a VALUES (1, 10)")
        with pytest.raises(ExecutionError, match="position 1"):
            db.execute("SELECT * FROM a WHERE id = ? AND x = ?", [1])

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(SQLError):
            db.execute("SELECT id FROM a WHERE COUNT(*) > 1")

    def test_insert_arity_mismatch_named(self, db):
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError, match="2"):
            db.execute("INSERT INTO a VALUES (1)")

    def test_cross_type_comparison_rejected(self, db):
        from repro.errors import TypeMismatchError

        db.execute("INSERT INTO a VALUES (1, 1)")
        with pytest.raises(TypeMismatchError):
            db.execute("SELECT * FROM a WHERE id = 'one'")

    def test_exceptions_are_sqlerror_subclasses(self):
        for error_type in (CatalogError, ParseError, LexerError, ExecutionError):
            assert issubclass(error_type, SQLError)
