"""INSERT / UPDATE / DELETE / DDL semantics."""

import pytest

from repro.errors import CatalogError, IntegrityError
from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(10), n INTEGER)"
    )
    return db


class TestInsert:
    def test_insert_and_rowcount(self, db):
        result = db.execute("INSERT INTO t VALUES (1, 'a', 10)")
        assert result.rowcount == 1

    def test_multi_row_insert(self, db):
        result = db.execute("INSERT INTO t VALUES (1, 'a', 1), (2, 'b', 2)")
        assert result.rowcount == 2
        assert db.table_rowcount("t") == 2

    def test_insert_with_column_list_fills_nulls(self, db):
        db.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
        assert db.execute("SELECT n FROM t").scalar() is None

    def test_insert_with_params(self, db):
        db.execute("INSERT INTO t VALUES (?, ?, ?)", [1, "x", 5])
        assert db.execute("SELECT name FROM t WHERE id = 1").scalar() == "x"

    def test_insert_select(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20)")
        db.execute("CREATE TABLE t2 (id INTEGER, name VARCHAR(10), n INTEGER)")
        result = db.execute("INSERT INTO t2 SELECT * FROM t WHERE n > 15")
        assert result.rowcount == 1

    def test_duplicate_primary_key_rejected(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 1)")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO t VALUES (1, 'b', 2)")

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO t (id, name) VALUES (1)")

    def test_not_null_violation(self, db):
        db.execute("CREATE TABLE strict (a INTEGER NOT NULL)")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO strict VALUES (NULL)")

    def test_values_coerced_to_column_type(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', ?)", ["7"])
        assert db.execute("SELECT n FROM t").scalar() == 7

    def test_executemany(self, db):
        total = db.executemany(
            "INSERT INTO t VALUES (?, ?, ?)",
            [(i, f"r{i}", i * 10) for i in range(5)],
        )
        assert total == 5
        assert db.table_rowcount("t") == 5


class TestUpdate:
    @pytest.fixture(autouse=True)
    def seed(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)")

    def test_update_with_where(self, db):
        result = db.execute("UPDATE t SET n = 0 WHERE id = 2")
        assert result.rowcount == 1
        assert db.execute("SELECT n FROM t WHERE id = 2").scalar() == 0

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE t SET n = 1").rowcount == 3

    def test_update_expression_sees_old_values(self, db):
        db.execute("UPDATE t SET n = n + 1, name = name || '!' WHERE id = 1")
        row = db.execute("SELECT n, name FROM t WHERE id = 1").fetchone()
        assert row == (11, "a!")

    def test_update_with_in_list(self, db):
        result = db.execute("UPDATE t SET n = -1 WHERE id IN (?, ?)", [1, 3])
        assert result.rowcount == 2

    def test_update_indexed_column_keeps_index_consistent(self, db):
        db.execute("CREATE INDEX t_n ON t (n)")
        db.execute("UPDATE t SET n = 99 WHERE id = 1")
        assert db.execute("SELECT id FROM t WHERE n = 99").scalar() == 1
        assert len(db.execute("SELECT id FROM t WHERE n = 10")) == 0

    def test_update_with_subquery_in_where(self, db):
        db.execute(
            "UPDATE t SET name = 'max' WHERE n = (SELECT MAX(n) FROM t)"
        )
        assert db.execute("SELECT name FROM t WHERE id = 3").scalar() == "max"


class TestDelete:
    @pytest.fixture(autouse=True)
    def seed(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)")

    def test_delete_with_where(self, db):
        assert db.execute("DELETE FROM t WHERE n >= 20").rowcount == 2
        assert db.table_rowcount("t") == 1

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM t").rowcount == 3
        assert db.table_rowcount("t") == 0

    def test_deleted_rows_not_scanned(self, db):
        db.execute("DELETE FROM t WHERE id = 2")
        assert sorted(db.execute("SELECT id FROM t").column("id")) == [1, 3]

    def test_reinsert_after_delete_allows_same_pk(self, db):
        db.execute("DELETE FROM t WHERE id = 1")
        db.execute("INSERT INTO t VALUES (1, 'again', 0)")
        assert db.execute("SELECT name FROM t WHERE id = 1").scalar() == "again"


class TestDDL:
    def test_create_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (x INTEGER)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM t")

    def test_drop_missing_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE missing")

    def test_create_index_on_existing_data(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10)")
        db.execute("CREATE INDEX t_n ON t (n)")
        assert db.execute("SELECT id FROM t WHERE n = 10").scalar() == 1

    def test_unique_index_rejects_duplicates(self, db):
        db.execute("CREATE UNIQUE INDEX t_name ON t (name)")
        db.execute("INSERT INTO t VALUES (1, 'a', 1)")
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO t VALUES (2, 'a', 2)")

    def test_duplicate_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE dup (x INTEGER, x INTEGER)")

    def test_table_names_listing(self, db):
        assert "t" in db.table_names()


class TestPlanCache:
    def test_repeated_select_hits_cache(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10)")
        db.execute("SELECT * FROM t WHERE id = ?", [1])
        before = db.statistics["plan_cache_hits"]
        db.execute("SELECT * FROM t WHERE id = ?", [1])
        assert db.statistics["plan_cache_hits"] == before + 1

    def test_cache_cleared_on_drop(self, db):
        db.execute("SELECT * FROM t")
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (different INTEGER)")
        result = db.execute("SELECT * FROM t")
        assert result.columns == ["different"]

    def test_different_params_share_plan(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20)")
        first = db.execute("SELECT name FROM t WHERE id = ?", [1]).scalar()
        second = db.execute("SELECT name FROM t WHERE id = ?", [2]).scalar()
        assert (first, second) == ("a", "b")
