"""Views: definition, expansion, and the Section 5.5 opacity property."""

import pytest

from repro.errors import CatalogError, ParseError
from repro.sqldb import Database


@pytest.fixture
def db():
    db = Database()
    db.execute(
        "CREATE TABLE part (id INTEGER PRIMARY KEY, kind VARCHAR(8), v INTEGER)"
    )
    db.execute(
        "INSERT INTO part VALUES (1, 'assy', 10), (2, 'assy', 20), (3, 'comp', 30)"
    )
    return db


class TestDefinition:
    def test_create_and_select(self, db):
        db.execute("CREATE VIEW assies AS SELECT id, v FROM part WHERE kind = 'assy'")
        result = db.execute("SELECT * FROM assies ORDER BY id")
        assert result.columns == ["id", "v"]
        assert result.rows == [(1, 10), (2, 20)]

    def test_explicit_column_list_renames(self, db):
        db.execute("CREATE VIEW named (obid, score) AS SELECT id, v FROM part")
        result = db.execute("SELECT obid, score FROM named WHERE obid = 3")
        assert result.rows == [(3, 30)]

    def test_column_arity_mismatch_rejected_at_create(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW bad (a, b, c) AS SELECT id FROM part")

    def test_broken_definition_rejected_at_create(self, db):
        with pytest.raises(Exception):
            db.execute("CREATE VIEW bad AS SELECT missing FROM part")

    def test_duplicate_name_rejected(self, db):
        db.execute("CREATE VIEW v1 AS SELECT id FROM part")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW v1 AS SELECT v FROM part")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW part AS SELECT id FROM part")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW v1 AS SELECT id FROM part")
        db.execute("DROP VIEW v1")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM v1")

    def test_drop_missing_view_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP VIEW ghost")

    def test_view_names_listing(self, db):
        db.execute("CREATE VIEW v1 AS SELECT id FROM part")
        assert db.view_names() == ["v1"]


class TestExpansion:
    def test_view_reflects_base_table_changes(self, db):
        db.execute("CREATE VIEW assies AS SELECT id FROM part WHERE kind = 'assy'")
        db.execute("INSERT INTO part VALUES (4, 'assy', 40)")
        assert len(db.execute("SELECT * FROM assies")) == 3

    def test_view_in_join(self, db):
        db.execute("CREATE VIEW assies AS SELECT id FROM part WHERE kind = 'assy'")
        result = db.execute(
            "SELECT part.v FROM assies JOIN part ON assies.id = part.id "
            "ORDER BY 1"
        )
        assert result.column("v") == [10, 20]

    def test_view_on_view(self, db):
        db.execute("CREATE VIEW v1 AS SELECT id, v FROM part WHERE v > 5")
        db.execute("CREATE VIEW v2 AS SELECT id FROM v1 WHERE v > 15")
        assert sorted(db.execute("SELECT * FROM v2").column("id")) == [2, 3]

    def test_view_with_aggregation(self, db):
        db.execute(
            "CREATE VIEW stats AS "
            "SELECT kind, COUNT(*) AS n, SUM(v) AS total FROM part GROUP BY kind"
        )
        result = db.execute("SELECT * FROM stats ORDER BY kind")
        assert result.rows == [("assy", 2, 30), ("comp", 1, 30)]

    def test_view_with_alias(self, db):
        db.execute("CREATE VIEW v1 AS SELECT id FROM part")
        result = db.execute("SELECT a.id FROM v1 AS a WHERE a.id = 1")
        assert result.rows == [(1,)]

    def test_view_in_subquery(self, db):
        db.execute("CREATE VIEW assies AS SELECT id FROM part WHERE kind = 'assy'")
        result = db.execute(
            "SELECT COUNT(*) FROM part WHERE id IN (SELECT id FROM assies)"
        )
        assert result.scalar() == 2

    def test_recursive_view_definition_rejected(self, db):
        db.execute("CREATE VIEW v1 AS SELECT id FROM part")
        db.execute("DROP VIEW v1")
        # Re-create v1 referring to a view that refers back to v1 is not
        # constructible through CREATE (validation is eager), so simulate
        # a self-reference directly:
        from repro.sqldb import ast_nodes as ast
        from repro.sqldb.parser import parse_statement

        statement = parse_statement("SELECT * FROM self_view")
        db.views["self_view"] = ast.CreateView(
            name="self_view", columns=None, select=statement
        )
        with pytest.raises(ParseError):
            db.execute("SELECT * FROM self_view")

    def test_cte_shadows_view(self, db):
        db.execute("CREATE VIEW shadow AS SELECT id FROM part")
        result = db.execute(
            "WITH shadow AS (SELECT 99 AS id) SELECT id FROM shadow"
        )
        assert result.rows == [(99,)]

    def test_plan_cache_invalidated_on_view_change(self, db):
        db.execute("CREATE VIEW v1 AS SELECT id FROM part")
        assert len(db.execute("SELECT * FROM v1")) == 3
        db.execute("DROP VIEW v1")
        db.execute("CREATE VIEW v1 AS SELECT id FROM part WHERE id = 1")
        assert len(db.execute("SELECT * FROM v1")) == 1


class TestViewOpacity:
    """The paper's Section 5.5 remark: a query (or part of it) hidden in a
    view cannot be modified by the rule machinery — the engine happily
    executes it, but the modificator must refuse."""

    def test_modificator_rejects_view_backed_query(self):
        from repro.errors import QueryModificationError
        from repro.rules.modificator import OpaqueQuery, QueryModificator
        from repro.rules.ruletable import RuleTable

        modificator = QueryModificator(RuleTable(), "scott", {})
        opaque = OpaqueQuery(
            sql="SELECT * FROM product_tree_view", description="view"
        )
        with pytest.raises(QueryModificationError):
            modificator.modify_recursive(opaque, "multi_level_expand")

    def test_view_based_expand_misses_rule_filtering(self, figure2_db):
        """Contrast: querying through a view returns unfiltered data —
        the rules would have to be part of the view definition itself."""
        figure2_db.execute(
            "CREATE VIEW root_children AS "
            "SELECT link.right AS obid FROM link WHERE link.left = 1"
        )
        result = figure2_db.execute("SELECT * FROM root_children ORDER BY 1")
        assert result.column("obid") == [2, 3]  # no rule was applied
