"""The ANALYZE statement, the statistics catalog, and estimate quality.

The drift test is the acceptance bound of the cost-based planner: over
the 25-template PDM corpus every operator's ``est_rows`` must stay
within a loose factor of the actual per-loop row count observed by
EXPLAIN ANALYZE.  Tight point assertions (pk lookups estimate exactly
one row, scans estimate the exact row count, range estimates land
within 2x on uniform data) live alongside because the loose corpus
bound alone would not catch a broken selectivity rule.
"""

from __future__ import annotations

import re

import pytest

from repro.errors import CatalogError
from repro.sqldb import Database
from repro.sqldb.stats import (
    NUM_HISTOGRAM_BUCKETS,
    ColumnStats,
    collect_table_stats,
)


@pytest.fixture
def db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE u (id INTEGER PRIMARY KEY, grp INTEGER, v INTEGER);
        CREATE INDEX u_grp ON u (grp)
        """
    )
    db.executemany(
        "INSERT INTO u VALUES (?, ?, ?)",
        [(i, i % 5, i if i % 10 else None) for i in range(100)],
    )
    return db


def plan_text(db, sql, params=()):
    return "\n".join(
        line for (line,) in db.execute(f"EXPLAIN {sql}", params).rows
    )


class TestAnalyzeStatement:
    def test_analyze_one_table(self, db):
        result = db.execute("ANALYZE u")
        assert result.columns == ["table", "rows", "columns"]
        assert result.rows == [("u", 100, 3)]

    def test_analyze_all_tables_sorted(self, db):
        db.execute("CREATE TABLE a (x INTEGER)")
        result = db.execute("ANALYZE")
        assert [row[0] for row in result.rows] == ["a", "u"]

    def test_analyze_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("ANALYZE nope")

    def test_analyze_invalidates_plan_cache(self, db):
        db.execute("SELECT * FROM u WHERE grp = ?", (1,))
        db.execute("SELECT * FROM u WHERE grp = ?", (1,))
        assert db.statistics["plan_cache_hits"] >= 1
        db.execute("ANALYZE u")
        assert len(db._plan_cache) == 0
        # The next run replans and now carries estimates.
        text = plan_text(db, "SELECT * FROM u WHERE grp = ?", (1,))
        assert "est_rows=" in text

    def test_drop_table_drops_stats(self, db):
        db.execute("ANALYZE u")
        assert db.stats.get("u") is not None
        db.execute("DROP TABLE u")
        assert db.stats.get("u") is None

    def test_analyze_allowed_inside_transaction(self, db):
        db.execute("BEGIN TRANSACTION")
        db.execute("ANALYZE u")
        db.execute("ROLLBACK")
        # Statistics are advisory, not transactional state.
        assert db.stats.get("u") is not None


class TestCollectedStatistics:
    def test_row_count_distinct_and_null_fraction(self, db):
        db.execute("ANALYZE u")
        stats = db.stats.get("u")
        assert stats.row_count == 100
        assert stats.column("id").n_distinct == 100
        assert stats.column("id").null_frac == 0.0
        assert stats.column("grp").n_distinct == 5
        # v is NULL at multiples of 10: 10 of 100 rows.
        assert stats.column("v").null_frac == pytest.approx(0.1)
        assert stats.column("v").n_distinct == 90

    def test_min_max_and_histogram_edges(self, db):
        db.execute("ANALYZE u")
        column = db.stats.get("u").column("id")
        assert column.min_value == 0
        assert column.max_value == 99
        assert len(column.histogram) == NUM_HISTOGRAM_BUCKETS + 1
        assert column.histogram[0] == 0
        assert column.histogram[-1] == 99
        assert list(column.histogram) == sorted(column.histogram)

    def test_collection_is_deterministic(self, db):
        entry = db.catalog.lookup("u")
        first = collect_table_stats(entry.schema, entry.storage)
        second = collect_table_stats(entry.schema, entry.storage)
        assert first == second

    def test_mistyped_probe_value_falls_back_to_default(self):
        from repro.sqldb.stats import DEFAULT_RANGE_SELECTIVITY

        column = ColumnStats(
            n_distinct=3,
            null_frac=0.0,
            min_value=1,
            max_value=3,
            histogram=(1, 2, 3),
        )
        # A string probed against a numeric histogram cannot compare.
        assert column.fraction_below("a") is None
        assert (
            column.range_selectivity("<", "a") == DEFAULT_RANGE_SELECTIVITY
        )

    def test_string_columns_get_histograms_too(self):
        db = Database()
        db.execute("CREATE TABLE m (x VARCHAR(10))")
        db.executemany(
            "INSERT INTO m VALUES (?)", [(chr(ord("a") + i),) for i in range(26)]
        )
        entry = db.catalog.lookup("m")
        column = collect_table_stats(entry.schema, entry.storage).column("x")
        assert column.n_distinct == 26
        assert column.min_value == "a"
        assert column.max_value == "z"
        assert len(column.histogram) == NUM_HISTOGRAM_BUCKETS + 1

    def test_eq_selectivity_accounts_for_nulls(self):
        column = ColumnStats(n_distinct=4, null_frac=0.2)
        assert column.eq_selectivity() == pytest.approx(0.8 / 4)
        assert ColumnStats(n_distinct=0, null_frac=0.0).eq_selectivity() == 0.0


class TestEstimateRendering:
    def test_no_estimates_before_analyze(self, db):
        assert "est_rows=" not in plan_text(db, "SELECT * FROM u")

    def test_seq_scan_estimates_exact_row_count(self, db):
        db.execute("ANALYZE u")
        assert "SeqScan(u) (est_rows=100)" in plan_text(db, "SELECT * FROM u")

    def test_pk_lookup_estimates_one_row(self, db):
        db.execute("ANALYZE u")
        text = plan_text(db, "SELECT * FROM u WHERE id = ?", (7,))
        assert "IndexLookup(u via u_pk) (est_rows=1)" in text

    def test_group_lookup_estimates_group_size(self, db):
        db.execute("ANALYZE u")
        text = plan_text(db, "SELECT * FROM u WHERE grp = ?", (1,))
        assert "IndexLookup(u via u_grp) (est_rows=20)" in text

    def test_explain_analyze_carries_both(self, db):
        db.execute("ANALYZE u")
        text = "\n".join(
            line
            for (line,) in db.execute(
                "EXPLAIN ANALYZE SELECT * FROM u WHERE grp = 1"
            ).rows
        )
        assert "(est_rows=20 loops=1 rows=20)" in text

    def test_rule_mode_never_estimates(self):
        db = Database(planner_mode="rule")
        db.execute("CREATE TABLE r (x INTEGER)")
        db.execute("INSERT INTO r VALUES (1)")
        db.execute("ANALYZE r")
        text = "\n".join(
            line for (line,) in db.execute("EXPLAIN SELECT * FROM r").rows
        )
        assert "est_rows=" not in text


class TestRangeEstimates:
    def test_uniform_range_estimate_within_2x(self):
        db = Database()
        db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY, w INTEGER)")
        db.executemany(
            "INSERT INTO big VALUES (?, ?)", [(i, i) for i in range(1000)]
        )
        db.execute("ANALYZE big")
        for threshold, actual in ((250, 250), (500, 500), (900, 900)):
            text = plan_text(db, f"SELECT * FROM big WHERE w < {threshold}")
            match = re.search(r"Filter \(est_rows=(\d+)\)", text)
            assert match, text
            estimate = int(match.group(1))
            assert actual / 2 <= estimate <= actual * 2, (threshold, estimate)


# ---------------------------------------------------------------------------
# Corpus-wide drift bound over the PDM template corpus.
# ---------------------------------------------------------------------------

DRIFT_FACTOR = 10.0
DRIFT_SLACK_ROWS = 50.0
_ANNOTATION = re.compile(r"est_rows=(\d+) loops=(\d+) rows=(\d+)")


def pdm_select_templates():
    from repro.analysis.templates import template_queries

    return [
        (name, sql)
        for name, sql in template_queries()
        if sql.lstrip().upper().startswith(("SELECT", "WITH"))
    ]


def parameter_count(sql: str) -> int:
    return re.sub(r"'[^']*'", "", sql).count("?")


@pytest.mark.parametrize(
    "name,sql",
    pdm_select_templates(),
    ids=[n for n, _ in pdm_select_templates()],
)
def test_corpus_estimates_within_drift_bounds(figure2_db, name, sql):
    """est_rows vs actual rows/loop stays within a loose factor (plus
    absolute slack: the Figure 2 tables hold tens of rows, where a
    single default selectivity is already a multiple of the table)."""
    figure2_db.execute("ANALYZE")
    params = tuple([1] * parameter_count(sql))
    text = "\n".join(
        line
        for (line,) in figure2_db.execute(f"EXPLAIN ANALYZE {sql}", params).rows
    )
    annotated = _ANNOTATION.findall(text)
    for est, loops, rows in annotated:
        estimate = float(est)
        actual = float(rows) / float(loops)
        assert estimate <= DRIFT_FACTOR * actual + DRIFT_SLACK_ROWS, (
            name,
            estimate,
            actual,
        )
        assert actual <= DRIFT_FACTOR * estimate + DRIFT_SLACK_ROWS, (
            name,
            estimate,
            actual,
        )


def test_corpus_produces_annotated_operators(figure2_db):
    """The drift bound must actually see estimates (guard against the
    annotation silently disappearing)."""
    figure2_db.execute("ANALYZE")
    total = 0
    for __, sql in pdm_select_templates():
        params = tuple([1] * parameter_count(sql))
        text = "\n".join(
            line
            for (line,) in figure2_db.execute(
                f"EXPLAIN ANALYZE {sql}", params
            ).rows
        )
        total += len(_ANNOTATION.findall(text))
    assert total >= 25
