"""ResultSet container semantics."""

import pytest

from repro.sqldb.result import ResultSet


@pytest.fixture
def result():
    return ResultSet(
        ["obid", "Name", "weight"],
        [(1, "Assy1", 2.5), (2, "Assy2", None)],
    )


class TestAccessors:
    def test_len_iter_bool(self, result):
        assert len(result) == 2
        assert list(result) == result.rows
        assert bool(result)
        assert not bool(ResultSet(["a"], []))

    def test_fetch(self, result):
        assert result.fetchone() == (1, "Assy1", 2.5)
        assert result.fetchall() == result.rows
        assert ResultSet(["a"], []).fetchone() is None

    def test_scalar(self, result):
        assert result.scalar() == 1
        assert ResultSet(["a"], []).scalar() is None

    def test_column_by_name_case_insensitive(self, result):
        assert result.column("name") == ["Assy1", "Assy2"]
        assert result.column("NAME") == ["Assy1", "Assy2"]

    def test_unknown_column_raises_with_candidates(self, result):
        with pytest.raises(KeyError, match="obid"):
            result.column("missing")

    def test_column_index(self, result):
        assert result.column_index("weight") == 2

    def test_as_dicts_lowercases_keys(self, result):
        dicts = result.as_dicts()
        assert dicts[0] == {"obid": 1, "name": "Assy1", "weight": 2.5}
        assert dicts[1]["weight"] is None

    def test_duplicate_column_names_first_wins(self):
        duplicated = ResultSet(["x", "x"], [(1, 2)])
        assert duplicated.column("x") == [1]

    def test_rowcount_defaults_to_len(self, result):
        assert result.rowcount == 2

    def test_rowcount_override_for_dml(self):
        dml = ResultSet([], [], rowcount=7)
        assert dml.rowcount == 7
        assert len(dml) == 0

    def test_rows_are_tuples(self):
        built = ResultSet(["a", "b"], [[1, 2]])
        assert built.rows == [(1, 2)]

    def test_repr_mentions_shape(self, result):
        assert "rows=2" in repr(result)
