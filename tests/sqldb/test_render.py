"""SQL rendering: every parsed statement must re-parse to the same result
(round-trip property), and expression keys must be stable."""

import pytest

from repro.sqldb import Database
from repro.sqldb.parser import parse_expression, parse_statement
from repro.sqldb.render import (
    expression_key,
    render_expression,
    render_statement,
)

ROUNDTRIP_STATEMENTS = [
    "SELECT * FROM t",
    "SELECT a AS x, b FROM t WHERE a = 1 AND b <> 'q'",
    "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3",
    "SELECT t.a, u.b FROM t JOIN u ON t.id = u.id LEFT JOIN v ON v.id = u.id",
    "SELECT a FROM t WHERE a IN (1, 2, 3) OR b NOT IN (SELECT b FROM u)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.x)",
    "SELECT a FROM t WHERE x BETWEEN 1 AND 2 AND name LIKE 'A%'",
    "SELECT COUNT(*), SUM(a), g FROM t GROUP BY g HAVING COUNT(*) > 1",
    "SELECT CAST(NULL AS INTEGER) AS n, CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT 1 UNION SELECT 2 UNION ALL SELECT 3",
    "WITH RECURSIVE r (n) AS (SELECT 1 UNION SELECT n + 1 FROM r WHERE n < 5) "
    "SELECT n FROM r ORDER BY 1",
    "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
    "UPDATE t SET a = a + 1 WHERE b IS NOT NULL",
    "DELETE FROM t WHERE a < 0",
    "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(20) NOT NULL)",
    "CREATE UNIQUE INDEX i ON t (a, b)",
    "SELECT a FROM t WHERE f(a, 1) AND -a < +b",
    "SELECT a || 'it''s' FROM t",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUNDTRIP_STATEMENTS)
    def test_render_reparses_identically(self, sql):
        first = parse_statement(sql)
        rendered = render_statement(first)
        second = parse_statement(rendered)
        # A second render of the re-parsed AST must be a fixpoint.
        assert render_statement(second) == rendered

    def test_rendered_sql_executes_identically(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR(5))")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL)")
        sql = "SELECT a, b FROM t WHERE a > 1 OR b = 'x' ORDER BY 1"
        rendered = render_statement(parse_statement(sql))
        assert db.execute(rendered).rows == db.execute(sql).rows


class TestExpressionRendering:
    def test_parentheses_preserve_precedence(self):
        expr = parse_expression("(1 + 2) * 3")
        rendered = render_expression(expr)
        reparsed = parse_expression(rendered)
        assert render_expression(reparsed) == rendered

    def test_string_escaping(self):
        expr = parse_expression("'it''s'")
        assert render_expression(expr) == "'it''s'"

    def test_null_true_false(self):
        assert render_expression(parse_expression("NULL")) == "NULL"
        assert render_expression(parse_expression("TRUE")) == "TRUE"

    def test_parameter_renders_as_question_mark(self):
        assert "?" in render_expression(parse_expression("a = ?"))


class TestExpressionKey:
    def test_key_case_insensitive(self):
        assert expression_key(parse_expression("Foo + 1")) == expression_key(
            parse_expression("foo + 1")
        )

    def test_key_distinguishes_structure(self):
        assert expression_key(parse_expression("a + b")) != expression_key(
            parse_expression("a - b")
        )

    def test_group_by_matching_use_case(self):
        # The planner matches select-list items against GROUP BY keys.
        assert expression_key(
            parse_expression("val % 2")
        ) == expression_key(parse_expression("VAL % 2"))
