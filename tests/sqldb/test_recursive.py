"""WITH RECURSIVE: fixpoint semantics, cycles, guards, CTE plumbing."""

import pytest

from repro.errors import ExecutionError, ParseError
from repro.sqldb import Database


@pytest.fixture
def graph_db():
    db = Database()
    db.execute_script(
        """
        CREATE TABLE edge (src INTEGER, dst INTEGER);
        CREATE INDEX edge_src ON edge (src)
        """
    )
    # 1 -> 2 -> 4, 1 -> 3, 3 -> 5
    for row in [(1, 2), (1, 3), (2, 4), (3, 5)]:
        db.execute("INSERT INTO edge VALUES (?, ?)", row)
    return db


class TestNonRecursiveCTE:
    def test_simple_cte(self, graph_db):
        result = graph_db.execute(
            "WITH big AS (SELECT * FROM edge WHERE src > 1) "
            "SELECT COUNT(*) FROM big"
        )
        assert result.scalar() == 2

    def test_cte_referenced_twice(self, graph_db):
        result = graph_db.execute(
            "WITH e AS (SELECT * FROM edge) "
            "SELECT COUNT(*) FROM e AS a JOIN e AS b ON a.dst = b.src"
        )
        assert result.scalar() == 2  # (1,2)->(2,4) and (1,3)->(3,5)

    def test_multiple_ctes_later_sees_earlier(self, graph_db):
        result = graph_db.execute(
            "WITH roots AS (SELECT src FROM edge WHERE src = 1), "
            "children AS (SELECT dst FROM edge WHERE src IN (SELECT src FROM roots)) "
            "SELECT COUNT(*) FROM children"
        )
        assert result.scalar() == 2

    def test_cte_column_rename(self, graph_db):
        result = graph_db.execute(
            "WITH pairs (a, b) AS (SELECT src, dst FROM edge) "
            "SELECT a FROM pairs WHERE b = 4"
        )
        assert result.scalar() == 2

    def test_cte_shadowing_in_subquery(self, graph_db):
        result = graph_db.execute(
            "WITH x AS (SELECT 1 AS v) "
            "SELECT (SELECT v FROM x), v FROM x"
        )
        assert result.rows == [(1, 1)]


class TestRecursion:
    def test_transitive_closure(self, graph_db):
        result = graph_db.execute(
            "WITH RECURSIVE reach (node) AS "
            "(SELECT 1 UNION SELECT dst FROM reach JOIN edge ON reach.node = edge.src) "
            "SELECT node FROM reach ORDER BY 1"
        )
        assert result.column("node") == [1, 2, 3, 4, 5]

    def test_recursion_from_middle(self, graph_db):
        result = graph_db.execute(
            "WITH RECURSIVE reach (node) AS "
            "(SELECT 3 UNION SELECT dst FROM reach JOIN edge ON reach.node = edge.src) "
            "SELECT node FROM reach ORDER BY 1"
        )
        assert result.column("node") == [3, 5]

    def test_counting_recursion(self, graph_db):
        result = graph_db.execute(
            "WITH RECURSIVE seq (n) AS "
            "(SELECT 1 UNION ALL SELECT n + 1 FROM seq WHERE n < 10) "
            "SELECT COUNT(*), MAX(n) FROM seq"
        )
        assert result.fetchone() == (10, 10)

    def test_union_terminates_on_cycles(self, graph_db):
        graph_db.execute("INSERT INTO edge VALUES (4, 1)")  # cycle 1-2-4-1
        result = graph_db.execute(
            "WITH RECURSIVE reach (node) AS "
            "(SELECT 1 UNION SELECT dst FROM reach JOIN edge ON reach.node = edge.src) "
            "SELECT COUNT(*) FROM reach"
        )
        assert result.scalar() == 5

    def test_union_all_on_cycle_hits_guard(self, graph_db):
        graph_db.execute("INSERT INTO edge VALUES (4, 1)")
        graph_db.recursion_limit = 10_000
        with pytest.raises(ExecutionError):
            graph_db.execute(
                "WITH RECURSIVE reach (node) AS "
                "(SELECT 1 UNION ALL "
                " SELECT dst FROM reach JOIN edge ON reach.node = edge.src) "
                "SELECT COUNT(*) FROM reach"
            )

    def test_multiple_recursive_branches(self, graph_db):
        # Walk edges in both directions from node 4.
        result = graph_db.execute(
            "WITH RECURSIVE touch (node) AS "
            "(SELECT 4 "
            " UNION SELECT dst FROM touch JOIN edge ON touch.node = edge.src "
            " UNION SELECT src FROM touch JOIN edge ON touch.node = edge.dst) "
            "SELECT node FROM touch ORDER BY 1"
        )
        assert result.column("node") == [1, 2, 3, 4, 5]

    def test_self_reference_without_recursive_keyword_rejected(self, graph_db):
        with pytest.raises(ParseError):
            graph_db.execute(
                "WITH reach (node) AS "
                "(SELECT 1 UNION SELECT dst FROM reach JOIN edge "
                "ON reach.node = edge.src) SELECT * FROM reach"
            )

    def test_recursive_cte_without_seed_rejected(self, graph_db):
        with pytest.raises(ParseError):
            graph_db.execute(
                "WITH RECURSIVE r (n) AS (SELECT n FROM r) SELECT * FROM r"
            )

    def test_arity_mismatch_between_branches_rejected(self, graph_db):
        with pytest.raises(ParseError):
            graph_db.execute(
                "WITH RECURSIVE r (n) AS "
                "(SELECT 1 UNION SELECT src, dst FROM edge) SELECT * FROM r"
            )

    def test_computed_columns_in_recursion(self, graph_db):
        result = graph_db.execute(
            "WITH RECURSIVE walk (node, depth) AS "
            "(SELECT 1, 0 UNION "
            " SELECT edge.dst, walk.depth + 1 FROM walk "
            " JOIN edge ON walk.node = edge.src) "
            "SELECT node, depth FROM walk ORDER BY 1"
        )
        assert dict(result.rows) == {1: 0, 2: 1, 3: 1, 4: 2, 5: 2}

    def test_outer_query_sees_final_result(self, graph_db):
        # Aggregates and IN-subqueries over the CTE read the fixpoint.
        result = graph_db.execute(
            "WITH RECURSIVE reach (node) AS "
            "(SELECT 1 UNION SELECT dst FROM reach JOIN edge ON reach.node = edge.src) "
            "SELECT src, dst FROM edge "
            "WHERE src IN (SELECT node FROM reach) "
            "  AND dst IN (SELECT node FROM reach) ORDER BY 1, 2"
        )
        assert len(result) == 4

    def test_delta_semantics_row_count(self, graph_db):
        """Semi-naive evaluation: rows_scanned stays linear because each
        iteration joins only the delta, not the accumulated result."""
        from repro.sqldb.parser import parse_statement
        from repro.sqldb.planner import Planner
        from repro.sqldb.recursive import execute_plan
        from repro.sqldb.executor import ExecutionEnv

        db = Database()
        db.execute_script(
            "CREATE TABLE chain (src INTEGER, dst INTEGER); "
            "CREATE INDEX chain_src ON chain (src)"
        )
        for i in range(100):
            db.execute("INSERT INTO chain VALUES (?, ?)", [i, i + 1])
        plan = Planner(db.catalog, db.functions).plan_select(
            parse_statement(
                "WITH RECURSIVE r (n) AS "
                "(SELECT 0 UNION SELECT dst FROM r JOIN chain ON r.n = chain.src) "
                "SELECT COUNT(*) FROM r"
            )
        )
        env = ExecutionEnv(functions=db.functions)
        rows = execute_plan(plan, env)
        assert rows[0][0] == 101
        # Naive evaluation would rescan the accumulated set every round
        # (~100*100/2 = 5000 probes); semi-naive needs ~100.
        assert env.counters["index_probes"] < 1000


class TestNaiveFixpointAblation:
    """Correctness parity of the semi-naive and naive evaluation modes."""

    def test_results_identical_on_tree(self, graph_db):
        sql = (
            "WITH RECURSIVE reach (node) AS "
            "(SELECT 1 UNION SELECT dst FROM reach JOIN edge "
            "ON reach.node = edge.src) SELECT node FROM reach ORDER BY 1"
        )
        fast = graph_db.execute(sql).rows
        graph_db.enable_seminaive = False
        graph_db._plan_cache.clear()
        slow = graph_db.execute(sql).rows
        graph_db.enable_seminaive = True
        assert fast == slow

    def test_results_identical_on_cycle(self, graph_db):
        graph_db.execute("INSERT INTO edge VALUES (4, 1)")
        sql = (
            "WITH RECURSIVE reach (node) AS "
            "(SELECT 1 UNION SELECT dst FROM reach JOIN edge "
            "ON reach.node = edge.src) SELECT COUNT(*) FROM reach"
        )
        graph_db.enable_seminaive = False
        assert graph_db.execute(sql).scalar() == 5
        graph_db.enable_seminaive = True

    def test_naive_requires_union_distinct(self, graph_db):
        from repro.errors import ExecutionError

        graph_db.enable_seminaive = False
        with pytest.raises(ExecutionError):
            graph_db.execute(
                "WITH RECURSIVE s (n) AS "
                "(SELECT 1 UNION ALL SELECT n + 1 FROM s WHERE n < 3) "
                "SELECT COUNT(*) FROM s"
            )
        graph_db.enable_seminaive = True


class TestRecursionLimitMidRound:
    """Regression: the guard used to run only *between* rounds, so a
    single explosive round materialised every row (doing all its work —
    function calls, scans) before the limit fired. It must now abort
    inside the row-append loop."""

    WIDE = 38  # one parent with this many children: one huge round

    @pytest.fixture
    def wide_db(self):
        db = Database()
        db.execute("CREATE TABLE e (p INTEGER, c INTEGER)")
        db.executemany(
            "INSERT INTO e VALUES (?, ?)",
            [(1, 100 + i) for i in range(self.WIDE)],
        )
        return db

    def test_limit_enforced_inside_a_round(self, wide_db):
        calls = []

        def tick(value):
            calls.append(value)
            return value

        wide_db.register_function("tick", tick)
        wide_db.recursion_limit = 10
        with pytest.raises(ExecutionError, match="produced more than"):
            wide_db.execute(
                "WITH RECURSIVE r (n) AS "
                "(SELECT 1 UNION ALL "
                " SELECT tick(e.c) FROM r JOIN e ON e.p = r.n) "
                "SELECT * FROM r"
            )
        # Lazy enforcement: the round stops as soon as the accumulator
        # crosses the limit, instead of evaluating all WIDE rows first.
        assert 0 < len(calls) <= wide_db.recursion_limit + 1
        assert len(calls) < self.WIDE

    def test_limit_enforced_on_explosive_seed(self, wide_db):
        wide_db.recursion_limit = 5
        with pytest.raises(ExecutionError, match="produced more than"):
            wide_db.execute(
                "WITH RECURSIVE r (n) AS "
                "(SELECT c FROM e UNION ALL "
                " SELECT n FROM r WHERE n < 0) "
                "SELECT * FROM r"
            )

    def test_queries_under_the_limit_unaffected(self, wide_db):
        wide_db.recursion_limit = 50
        result = wide_db.execute(
            "WITH RECURSIVE r (n) AS "
            "(SELECT 1 UNION ALL SELECT e.c FROM r JOIN e ON e.p = r.n) "
            "SELECT COUNT(*) FROM r"
        )
        assert result.scalar() == 1 + self.WIDE
