"""Public API surface: everything advertised must import and compose.

A downstream user should be able to drive the whole reproduction through
``import repro`` — this suite is the contract.
"""

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_alls_resolve(self):
        import repro.model
        import repro.network
        import repro.pdm
        import repro.rules
        import repro.server
        import repro.sqldb

        for module in (
            repro.model,
            repro.network,
            repro.pdm,
            repro.rules,
            repro.server,
            repro.sqldb,
        ):
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestTopLevelWorkflow:
    def test_full_flow_through_top_level_names_only(self):
        scenario = repro.build_scenario(
            repro.TreeParameters(depth=2, branching=2, visibility=1.0),
            repro.WAN_512,
            seed=1,
        )
        result = scenario.client.multi_level_expand(
            scenario.product.root_obid,
            repro.ExpandStrategy.RECURSIVE_EARLY,
            root_attrs=scenario.product.root_attributes(),
        )
        assert result.tree.node_count() == scenario.product.node_count
        prediction = repro.predict(
            repro.Action.MLE,
            repro.Strategy.RECURSIVE,
            scenario.tree,
            repro.NetworkParameters(latency_s=0.15, dtr_kbit_s=512),
        )
        assert prediction.total_seconds > 0

    def test_raw_database_through_top_level(self):
        db = repro.Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.execute("SELECT SUM(v) FROM t").scalar() == 3

    def test_client_server_through_top_level(self):
        db = repro.Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        server = repro.DatabaseServer(db)
        connection = repro.RemoteConnection(server, repro.LAN.create_link())
        assert connection.execute("SELECT 41 + 1").scalar() == 42

    def test_replication_through_top_level(self):
        product = repro.generate_product(
            repro.TreeParameters(depth=1, branching=2), seed=1
        )
        deployment = repro.build_replicated_deployment(
            product,
            primary_profile=repro.WAN_256,
            replica_profiles={"near": repro.LAN},
        )
        result, __, site = deployment.execute_read("SELECT COUNT(*) FROM comp")
        assert site.name == "near"
        assert result.scalar() == 2

    def test_rule_construction_through_rules_package(self):
        from repro.rules import (
            Actions,
            Configurator,
            OptionCatalog,
            Rule,
            RuleTable,
            make_not_buy_rule,
        )

        table = RuleTable([make_not_buy_rule()])
        assert len(table) == 1
        catalog = OptionCatalog(["a", "b"])
        assert Configurator(catalog).validate(["a"]) == 1
        assert Actions.ACCESS == "access"
        assert isinstance(table.relevant("scott", "multi_level_expand", "assy")[0], Rule)
