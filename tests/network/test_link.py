"""Network link: timing arithmetic, packetisation, accounting modes."""

import pytest

from repro.errors import LinkConfigurationError, NetworkError
from repro.network.clock import SimulatedClock
from repro.network.link import BITS_PER_KBIT, NetworkLink, PacketAccounting
from repro.network.profiles import LAN, PAPER_PROFILES, WAN_256, WAN_512, WAN_1024


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now == 1.75

    def test_negative_advance_rejected(self):
        with pytest.raises(NetworkError):
            SimulatedClock().advance(-1)

    def test_reset(self):
        clock = SimulatedClock(10.0)
        clock.reset()
        assert clock.now == 0.0


class TestConfiguration:
    def test_negative_latency_rejected(self):
        with pytest.raises(LinkConfigurationError):
            NetworkLink(latency_s=-0.1, dtr_kbit_s=256)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(LinkConfigurationError):
            NetworkLink(latency_s=0.1, dtr_kbit_s=0)

    def test_zero_packet_size_rejected(self):
        with pytest.raises(LinkConfigurationError):
            NetworkLink(latency_s=0.1, dtr_kbit_s=256, packet_bytes=0)

    def test_negative_payload_rejected(self):
        link = WAN_256.create_link()
        with pytest.raises(LinkConfigurationError):
            link.transmit(-1, is_request=True)

    def test_kbit_is_binary(self):
        link = NetworkLink(latency_s=0.0, dtr_kbit_s=1)
        assert link.bits_per_second == BITS_PER_KBIT


class TestTiming:
    def test_latency_charged_per_message(self):
        link = NetworkLink(latency_s=0.15, dtr_kbit_s=256, packet_bytes=4096)
        link.round_trip(100, 100)
        assert link.stats.latency_seconds == pytest.approx(0.30)
        assert link.stats.messages == 2

    def test_paper_model_request_is_whole_packets(self):
        link = NetworkLink(
            latency_s=0.0,
            dtr_kbit_s=256,
            packet_bytes=4096,
            accounting=PacketAccounting.PAPER_MODEL,
        )
        delay = link.transmit(100, is_request=True)
        assert delay == pytest.approx(4096 * 8 / (256 * 1024))

    def test_paper_model_response_half_packet_correction(self):
        link = NetworkLink(
            latency_s=0.0,
            dtr_kbit_s=256,
            packet_bytes=4096,
            accounting=PacketAccounting.PAPER_MODEL,
        )
        delay = link.transmit(512, is_request=False)
        assert delay == pytest.approx((512 + 2048) * 8 / (256 * 1024))

    def test_payload_accounting_exact(self):
        link = NetworkLink(
            latency_s=0.0,
            dtr_kbit_s=1,
            accounting=PacketAccounting.PAYLOAD,
        )
        assert link.transmit(128, is_request=False) == pytest.approx(1.0)

    def test_padded_accounting_rounds_up(self):
        link = NetworkLink(
            latency_s=0.0,
            dtr_kbit_s=256,
            packet_bytes=1000,
            accounting=PacketAccounting.PADDED,
        )
        link.transmit(1500, is_request=False)
        assert link.stats.wire_bytes == 2000

    def test_packets_for(self):
        link = NetworkLink(latency_s=0, dtr_kbit_s=1, packet_bytes=1000)
        assert link.packets_for(0) == 1
        assert link.packets_for(1000) == 1
        assert link.packets_for(1001) == 2

    def test_clock_advances_by_delay(self):
        link = WAN_512.create_link()
        before = link.clock.now
        delay = link.round_trip(100, 5000)
        assert link.clock.now - before == pytest.approx(delay)

    def test_paper_table2_query_cell_reproduced(self):
        """One request packet + 819 nodes of 512 B + half-packet: the
        dtr=256 Query cell of Table 2 (12.98 s transfer) to the cent."""
        link = NetworkLink(latency_s=0.15, dtr_kbit_s=256, packet_bytes=4096)
        link.round_trip(100, 819 * 512)
        assert link.stats.total_seconds == pytest.approx(13.28, abs=0.01)


class TestStats:
    def test_reset_clears_everything(self):
        link = WAN_256.create_link()
        link.round_trip(10, 10)
        link.reset()
        assert link.stats.messages == 0
        assert link.clock.now == 0.0

    def test_delta_since(self):
        link = WAN_256.create_link()
        link.round_trip(10, 10)
        snapshot = link.stats.snapshot()
        link.round_trip(10, 10)
        delta = link.stats.delta_since(snapshot)
        assert delta.messages == 2
        assert delta.requests == 1
        assert delta.responses == 1

    def test_merge(self):
        link = WAN_256.create_link()
        link.round_trip(10, 10)
        other = link.stats.snapshot()
        link.stats.merge(other)
        assert link.stats.messages == 4

    def test_round_trips_property(self):
        link = WAN_256.create_link()
        link.round_trip(1, 1)
        link.round_trip(1, 1)
        assert link.stats.round_trips == 2


class TestProfiles:
    def test_paper_profiles_match_table_headers(self):
        assert [(p.latency_s, p.dtr_kbit_s) for p in PAPER_PROFILES] == [
            (0.15, 256),
            (0.15, 512),
            (0.05, 1024),
        ]

    def test_lan_is_orders_of_magnitude_faster(self):
        assert LAN.latency_s < WAN_256.latency_s / 50
        assert LAN.dtr_kbit_s > WAN_1024.dtr_kbit_s * 5

    def test_profile_str(self):
        assert "256" in str(WAN_256)

    def test_create_link_independent_instances(self):
        first = WAN_256.create_link()
        second = WAN_256.create_link()
        first.round_trip(1, 1)
        assert second.stats.messages == 0
