"""Fault injection: profiles, plans, the faulty link, chaos presets."""

import pytest

from repro.errors import FaultConfigurationError, MessageDropped
from repro.network.faults import (
    CHAOS_PRESETS,
    DROP_5,
    FLAKY_WAN,
    JUMBO_TRUNCATING_WAN,
    NOISY_WAN,
    OUTAGE_WAN,
    PERFECT,
    STOCHASTIC_PRESETS,
    CircuitBreaker,
    FaultPlan,
    FaultProfile,
    FaultyLink,
    RetryPolicy,
)
from repro.network.profiles import WAN_256


def make_link(profile=PERFECT, seed=0):
    return FaultyLink.wrap(WAN_256.create_link(), profile, seed=seed)


class TestFaultProfile:
    def test_probabilities_validated(self):
        with pytest.raises(FaultConfigurationError):
            FaultProfile(name="bad", drop_probability=1.5)
        with pytest.raises(FaultConfigurationError):
            FaultProfile(name="bad", corrupt_probability=-0.1)

    def test_backward_outage_rejected(self):
        with pytest.raises(FaultConfigurationError):
            FaultProfile(name="bad", outages=((10.0, 5.0),))

    def test_zero_truncate_threshold_rejected(self):
        with pytest.raises(FaultConfigurationError):
            FaultProfile(name="bad", truncate_over_bytes=0)

    def test_perfect_flag(self):
        assert PERFECT.perfect
        assert not DROP_5.perfect
        assert not JUMBO_TRUNCATING_WAN.perfect

    def test_presets_are_lossy_but_survivable(self):
        for preset in CHAOS_PRESETS:
            assert not preset.perfect
            assert preset.drop_probability < 0.5
        for preset in STOCHASTIC_PRESETS:
            assert not preset.outages


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        first = FaultPlan(FLAKY_WAN, seed=7)
        second = FaultPlan(FLAKY_WAN, seed=7)
        for __ in range(200):
            assert first.decide(0.0, 100) == second.decide(0.0, 100)

    def test_different_seed_diverges(self):
        first = FaultPlan(DROP_5, seed=1)
        second = FaultPlan(DROP_5, seed=2)
        fates = [
            (first.decide(0.0, 100).drop, second.decide(0.0, 100).drop)
            for __ in range(400)
        ]
        assert any(a != b for a, b in fates)

    def test_decision_stream_independent_of_outcomes(self):
        """Every message consumes the same number of uniforms whether or
        not a fault fires, so two same-seed plans stay aligned: whenever
        the rarer profile drops a message, the more lossy one must too
        (same underlying draw, lower threshold)."""
        rare = FaultPlan(
            FaultProfile(name="rare", drop_probability=0.05), seed=3
        )
        often = FaultPlan(
            FaultProfile(name="often", drop_probability=0.5), seed=3
        )
        rare_drops = [rare.decide(0.0, 100).drop for __ in range(300)]
        often_drops = [often.decide(0.0, 100).drop for __ in range(300)]
        assert any(rare_drops)
        for rare_drop, often_drop in zip(rare_drops, often_drops):
            if rare_drop:
                assert often_drop

    def test_outage_window_half_open(self):
        plan = FaultPlan(OUTAGE_WAN, seed=0)
        start, end = OUTAGE_WAN.outages[0]
        assert plan.in_outage(start)
        assert plan.in_outage((start + end) / 2)
        assert not plan.in_outage(end)
        assert plan.next_outage_end(start) == end
        assert plan.next_outage_end(end) is None

    def test_outage_drops_every_message(self):
        plan = FaultPlan(OUTAGE_WAN, seed=0)
        start, __ = OUTAGE_WAN.outages[0]
        for __ in range(20):
            decision = plan.decide(start, 100)
            assert decision.drop and decision.outage

    def test_middlebox_truncates_only_jumbo_frames(self):
        plan = FaultPlan(JUMBO_TRUNCATING_WAN, seed=0)
        threshold = JUMBO_TRUNCATING_WAN.truncate_over_bytes
        assert plan.decide(0.0, threshold).truncate_to is None
        assert plan.decide(0.0, threshold + 1).truncate_to == threshold

    def test_probabilistic_truncation_halves(self):
        plan = FaultPlan(
            FaultProfile(name="cut", truncate_probability=1.0), seed=0
        )
        assert plan.decide(0.0, 100).truncate_to == 50

    def test_flip_bit_changes_exactly_one_bit(self):
        plan = FaultPlan(NOISY_WAN, seed=9)
        frame = bytes(range(64))
        mutated = plan.flip_bit(frame)
        assert len(mutated) == len(frame)
        differing = [
            bin(a ^ b).count("1") for a, b in zip(frame, mutated)
        ]
        assert sum(differing) == 1

    def test_flip_bit_empty_frame_untouched(self):
        assert FaultPlan(NOISY_WAN, seed=0).flip_bit(b"") == b""


class TestFaultyLink:
    def test_wrap_shares_clock_and_parameters(self):
        base = WAN_256.create_link()
        faulty = FaultyLink.wrap(base, DROP_5, seed=1)
        assert faulty.clock is base.clock
        assert faulty.latency_s == base.latency_s
        assert faulty.dtr_kbit_s == base.dtr_kbit_s

    def test_perfect_profile_is_identity(self):
        link = make_link(PERFECT)
        frame = b"\x01hello"
        assert link.deliver(frame, is_request=True, opcode="QUERY") == frame
        assert link.stats.drops == 0
        assert link.stats.corrupt_frames == 0

    def test_drop_raises_and_counts_after_charging_wire_time(self):
        link = make_link(FaultProfile(name="dead", drop_probability=1.0))
        before = link.clock.now
        with pytest.raises(MessageDropped):
            link.deliver(b"\x01payload", is_request=True)
        assert link.stats.drops == 1
        assert link.clock.now > before  # the bytes still went out

    def test_truncation_counts_as_corrupt_frame(self):
        link = make_link(FaultProfile(name="cut", truncate_probability=1.0))
        out = link.deliver(b"\x01" * 100, is_request=False)
        assert len(out) == 50
        assert link.stats.corrupt_frames == 1

    def test_spike_advances_clock_and_stats(self):
        profile = FaultProfile(
            name="spiky", spike_probability=1.0, spike_seconds=0.75
        )
        link = make_link(profile)
        link.deliver(b"\x01", is_request=True)
        assert link.stats.spike_seconds == pytest.approx(0.75)

    def test_reset_rewinds_the_plan(self):
        link = make_link(DROP_5, seed=5)
        fates = []
        for __ in range(40):
            try:
                link.deliver(b"\x01" * 10, is_request=True)
                fates.append(True)
            except MessageDropped:
                fates.append(False)
        link.reset()
        replay = []
        for __ in range(40):
            try:
                link.deliver(b"\x01" * 10, is_request=True)
                replay.append(True)
            except MessageDropped:
                replay.append(False)
        assert fates == replay
        assert not all(fates)  # the seed does inject something in 40 tries


class TestRoundTripOpcodeAttribution:
    def test_round_trip_labels_both_directions(self):
        link = WAN_256.create_link()
        link.round_trip(
            100, 200, request_opcode="QUERY", response_opcode="RESULT"
        )
        assert link.stats.opcode_messages["QUERY"] == 1
        assert link.stats.opcode_messages["RESULT"] == 1
        assert link.stats.opcode_payload_bytes["QUERY"] == 100
        assert link.stats.opcode_payload_bytes["RESULT"] == 200

    def test_round_trip_without_labels_stays_unattributed(self):
        link = WAN_256.create_link()
        link.round_trip(100, 200)
        assert not link.stats.opcode_messages


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(FaultConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultConfigurationError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(FaultConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_expected_backoff_doubles_then_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.1,
            backoff_multiplier=2.0,
            backoff_cap_s=0.5,
            jitter_fraction=0.0,
        )
        assert [policy.expected_backoff(k) for k in (1, 2, 3, 4, 5)] == [
            pytest.approx(v) for v in (0.1, 0.2, 0.4, 0.5, 0.5)
        ]

    def test_schedule_deterministic_given_seed(self):
        policy = RetryPolicy(seed=11)
        assert policy.schedule() == policy.schedule()
        assert policy.schedule() != RetryPolicy(seed=12).schedule()

    def test_jitter_bounded(self):
        policy = RetryPolicy(
            backoff_base_s=1.0,
            backoff_multiplier=1.0,
            backoff_cap_s=1.0,
            jitter_fraction=0.25,
            max_attempts=50,
        )
        for pause in policy.schedule():
            assert 0.75 <= pause <= 1.25


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        for __ in range(2):
            breaker.record_failure(0.0)
        assert not breaker.is_open
        breaker.record_failure(0.0)
        assert breaker.is_open and breaker.opens == 1
        assert not breaker.allow(5.0)
        assert breaker.seconds_until_trial(5.0) == pytest.approx(5.0)

    def test_half_open_trial_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)  # half-open
        breaker.record_failure(10.0)  # trial failed: fresh cool-down
        assert not breaker.allow(15.0)
        assert breaker.allow(20.0)

    def test_success_closes_and_resets_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        assert not breaker.is_open  # count was reset in between

    def test_validation(self):
        with pytest.raises(FaultConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(FaultConfigurationError):
            CircuitBreaker(cooldown_s=-1.0)
