"""Multi-site replication (the paper's Section 7 outlook)."""

import pytest

from repro.errors import ProtocolError
from repro.model.parameters import TreeParameters
from repro.network.profiles import LAN, WAN_256, WAN_512
from repro.pdm.generator import generate_product
from repro.server.multisite import ReplicatedDatabase, build_replicated_deployment


@pytest.fixture
def deployment():
    """Primary behind an intercontinental WAN; one LAN replica near the
    client; one WAN-512 replica at a third site."""
    product = generate_product(
        TreeParameters(depth=3, branching=2, visibility=1.0), seed=3
    )
    return build_replicated_deployment(
        product,
        primary_profile=WAN_256,
        replica_profiles={"brazil-lan": LAN, "us-wan": WAN_512},
        primary_name="germany",
    )


class TestRouting:
    def test_nearest_site_is_the_lan_replica(self, deployment):
        assert deployment.nearest_site().name == "brazil-lan"

    def test_reads_go_to_nearest(self, deployment):
        result, seconds, site = deployment.execute_read(
            "SELECT COUNT(*) FROM assy"
        )
        assert site.name == "brazil-lan"
        assert result.scalar() == 7  # root + 2 + 4
        assert seconds < 0.05  # LAN round trip

    def test_read_from_primary_much_slower(self, deployment):
        primary = deployment.site("germany")
        before = primary.link.clock.now
        primary.connection.execute("SELECT COUNT(*) FROM assy")
        assert primary.link.clock.now - before > 0.3

    def test_unknown_site_rejected(self, deployment):
        with pytest.raises(ProtocolError):
            deployment.site("mars")

    def test_duplicate_site_names_rejected(self, deployment):
        with pytest.raises(ProtocolError):
            ReplicatedDatabase(
                deployment.primary, [deployment.primary]
            )


class TestSynchronousWrites:
    def test_write_visible_on_every_site(self, deployment):
        deployment.execute_write(
            "UPDATE assy SET state = 'frozen' WHERE obid = 1"
        )
        for site in deployment.sites():
            state = site.database.execute(
                "SELECT state FROM assy WHERE obid = 1"
            ).scalar()
            assert state == "frozen", site.name

    def test_synchronous_write_pays_primary_plus_slowest_replica(self, deployment):
        __, seconds = deployment.execute_write(
            "UPDATE assy SET state = 'released' WHERE obid = 1"
        )
        # Primary (WAN-256) round trip is ~0.3 s latency alone; the
        # slowest replica (WAN-512) adds ~0.3 s more.
        assert seconds > 0.6

    def test_read_after_sync_write_consistent(self, deployment):
        deployment.execute_write("UPDATE comp SET weight = 9.5")
        result, __, __ = deployment.execute_read(
            "SELECT MIN(weight) FROM comp"
        )
        assert result.scalar() == 9.5


class TestAsynchronousWrites:
    def test_async_write_returns_after_primary_only(self, deployment):
        __, seconds = deployment.execute_write(
            "UPDATE assy SET state = 'released'", synchronous=False
        )
        assert seconds < 0.6  # primary only
        assert deployment.lag("brazil-lan") == 1
        assert deployment.lag("us-wan") == 1
        assert deployment.lag("germany") == 0

    def test_replica_reads_are_stale_until_flush(self, deployment):
        deployment.execute_write(
            "UPDATE assy SET state = 'released'", synchronous=False
        )
        result, __, site = deployment.execute_read(
            "SELECT DISTINCT state FROM assy"
        )
        assert site.name == "brazil-lan"
        assert result.column("state") == ["in_work"]  # stale!
        deployment.flush("brazil-lan")
        result, __, __ = deployment.execute_read(
            "SELECT DISTINCT state FROM assy"
        )
        assert result.column("state") == ["released"]
        assert deployment.lag("brazil-lan") == 0
        assert deployment.lag("us-wan") == 1  # still pending

    def test_flush_all(self, deployment):
        for __ in range(3):
            deployment.execute_write(
                "UPDATE comp SET weight = weight + 1", synchronous=False
            )
        deployment.flush()
        assert deployment.lag("brazil-lan") == 0
        assert deployment.lag("us-wan") == 0
        for site in deployment.sites():
            weight = site.database.execute(
                "SELECT MIN(weight) FROM comp"
            ).scalar()
            assert weight == pytest.approx(3.1)

    def test_statistics(self, deployment):
        deployment.execute_write("UPDATE comp SET weight = 1", synchronous=True)
        deployment.execute_read("SELECT 1")
        assert deployment.statistics["writes"] == 1
        assert deployment.statistics["reads"] == 1
        assert deployment.statistics["replicated_statements"] == 2


class TestExpandNearTheUser:
    def test_navigational_expand_tolerable_on_replica(self, deployment):
        """The deployment answer to the paper's problem statement: with a
        replica next to the Brazilian client, even navigational access is
        fast again — at the price of replication lag for writes."""
        from repro.pdm.operations import ExpandStrategy, PDMClient
        from repro.pdm.structure import trees_equal

        near = PDMClient(deployment.site("brazil-lan").connection)
        far = PDMClient(deployment.site("germany").connection)
        near_result = near.multi_level_expand(
            1, ExpandStrategy.NAVIGATIONAL_LATE
        )
        far_result = far.multi_level_expand(
            1, ExpandStrategy.NAVIGATIONAL_LATE
        )
        assert trees_equal(near_result.tree, far_result.tree)
        assert near_result.seconds < far_result.seconds / 20


class TestProcedureReplication:
    def test_checkout_propagates_to_all_sites(self, deployment):
        values, seconds = deployment.call_procedure_write(
            "check_out_tree", [1, "scott"]
        )
        assert values  # checked-out obids from the primary
        for site in deployment.sites():
            held = site.database.execute(
                "SELECT COUNT(*) FROM assy WHERE checkedout = TRUE"
            ).scalar()
            assert held > 0, site.name
        # Synchronous: primary round trip plus the slowest replica.
        assert seconds > 0.3

    def test_async_procedure_lags_until_flush(self, deployment):
        deployment.call_procedure_write(
            "check_out_tree", [1, "scott"], synchronous=False
        )
        replica = deployment.site("brazil-lan")
        held = replica.database.execute(
            "SELECT COUNT(*) FROM assy WHERE checkedout = TRUE"
        ).scalar()
        assert held == 0  # not yet replayed
        assert deployment.lag("brazil-lan") == 1
        deployment.flush("brazil-lan")
        held = replica.database.execute(
            "SELECT COUNT(*) FROM assy WHERE checkedout = TRUE"
        ).scalar()
        assert held > 0

    def test_mixed_backlog_replays_in_order(self, deployment):
        deployment.execute_write(
            "UPDATE assy SET state = 'frozen' WHERE obid = 1",
            synchronous=False,
        )
        deployment.call_procedure_write(
            "check_out_tree", [1, "scott"], synchronous=False
        )
        deployment.execute_write(
            "UPDATE comp SET weight = 0.5", synchronous=False
        )
        assert deployment.lag("us-wan") == 3
        deployment.flush()
        replica = deployment.site("us-wan")
        assert replica.database.execute(
            "SELECT state FROM assy WHERE obid = 1"
        ).scalar() == "frozen"
        assert replica.database.execute(
            "SELECT COUNT(*) FROM assy WHERE checkedout = TRUE"
        ).scalar() > 0
        assert replica.database.execute(
            "SELECT MIN(weight) FROM comp"
        ).scalar() == 0.5


class TestStaleReadFlagging:
    def test_lagging_replica_read_is_flagged(self, deployment):
        deployment.execute_write(
            "UPDATE assy SET state = 'released'", synchronous=False
        )
        __, __, site = deployment.execute_read("SELECT DISTINCT state FROM assy")
        assert site.name == "brazil-lan"
        assert deployment.last_read_stale
        assert deployment.statistics["stale_reads"] == 1

    def test_read_after_flush_is_not_flagged(self, deployment):
        deployment.execute_write(
            "UPDATE assy SET state = 'released'", synchronous=False
        )
        deployment.flush("brazil-lan")
        __, __, __site = deployment.execute_read(
            "SELECT DISTINCT state FROM assy"
        )
        assert not deployment.last_read_stale
        assert deployment.statistics["stale_reads"] == 0

    def test_synchronous_write_never_flags(self, deployment):
        deployment.execute_write(
            "UPDATE assy SET state = 'released'", synchronous=True
        )
        deployment.execute_read("SELECT DISTINCT state FROM assy")
        assert not deployment.last_read_stale


class TestFlushDuringOutage:
    def test_flush_failure_preserves_backlog(self, deployment, monkeypatch):
        """A replica outage mid-flush must leave the unapplied statements
        (the failed one included) queued; once the replica is back, the
        next flush applies them and the write becomes visible."""
        from repro.errors import MessageDropped

        deployment.execute_write(
            "UPDATE assy SET state = 'released' WHERE obid = 1",
            synchronous=False,
        )
        replica = deployment.site("brazil-lan")

        def replica_down(*args, **kwargs):
            raise MessageDropped("replica outage")

        monkeypatch.setattr(replica.connection, "execute", replica_down)
        with pytest.raises(MessageDropped):
            deployment.flush("brazil-lan")
        assert deployment.lag("brazil-lan") == 1  # statement NOT lost
        monkeypatch.undo()
        deployment.flush("brazil-lan")
        assert deployment.lag("brazil-lan") == 0
        assert replica.database.execute(
            "SELECT state FROM assy WHERE obid = 1"
        ).scalar() == "released"

    def test_partial_flush_keeps_unapplied_tail(self, deployment, monkeypatch):
        deployment.execute_write(
            "UPDATE assy SET state = 'frozen' WHERE obid = 1",
            synchronous=False,
        )
        deployment.execute_write(
            "UPDATE assy SET state = 'released' WHERE obid = 1",
            synchronous=False,
        )
        replica = deployment.site("brazil-lan")
        real_execute = replica.connection.execute
        calls = []

        def fail_second(sql, params=()):
            from repro.errors import MessageDropped

            calls.append(sql)
            if len(calls) == 2:
                raise MessageDropped("outage mid-flush")
            return real_execute(sql, params)

        monkeypatch.setattr(replica.connection, "execute", fail_second)
        from repro.errors import MessageDropped

        with pytest.raises(MessageDropped):
            deployment.flush("brazil-lan")
        # The first statement applied; the failed second one is retained.
        assert deployment.lag("brazil-lan") == 1
        monkeypatch.undo()
        deployment.flush("brazil-lan")
        assert replica.database.execute(
            "SELECT state FROM assy WHERE obid = 1"
        ).scalar() == "released"
