"""Resilient protocol driver: retries, timeouts, idempotency, breaker.

Everything runs on the simulated clock — a wall-clock sleep anywhere in
the retry path is a bug, and one test pins that down by poisoning
``time.sleep``.
"""

import time

import pytest

from repro.errors import (
    CircuitOpenError,
    ProtocolError,
    TimeoutError,
)
from repro.network.faults import (
    DROP_5,
    CircuitBreaker,
    FaultProfile,
    FaultyLink,
    RetryPolicy,
)
from repro.network.link import NetworkLink
from repro.network.profiles import WAN_256
from repro.server.client import RemoteConnection
from repro.server.protocol import (
    Opcode,
    decode_envelope,
    decode_sequenced,
    encode_envelope,
    encode_sequenced,
)
from repro.server.server import DatabaseServer
from repro.sqldb import Database


class ScriptedLink(NetworkLink):
    """A link whose per-message fates are spelled out by the test.

    ``fates`` is consumed one entry per delivered message: ``"ok"``,
    ``"drop"`` (raise after charging wire time), ``"truncate"`` or
    ``"flip"`` (damage the frame).  Once the script runs out every
    message is delivered intact.
    """

    def __init__(self, fates, **kwargs):
        kwargs.setdefault("latency_s", WAN_256.latency_s)
        kwargs.setdefault("dtr_kbit_s", WAN_256.dtr_kbit_s)
        super().__init__(**kwargs)
        self.fates = list(fates)

    def deliver(self, frame, is_request, opcode=None):
        fate = self.fates.pop(0) if self.fates else "ok"
        self.transmit(len(frame), is_request, opcode)
        if fate == "drop":
            self.stats.drops += 1
            from repro.errors import MessageDropped

            raise MessageDropped("scripted drop")
        if fate == "truncate":
            self.stats.corrupt_frames += 1
            return frame[: max(1, len(frame) // 2)]
        if fate == "flip":
            self.stats.corrupt_frames += 1
            mutated = bytearray(frame)
            mutated[len(mutated) // 2] ^= 0x10
            return bytes(mutated)
        return frame


def make_stack(fates=(), policy=None, breaker=None):
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)")
    db.execute("INSERT INTO t VALUES (1, 0)")
    server = DatabaseServer(db)
    link = ScriptedLink(fates)
    if policy is None:
        policy = RetryPolicy(timeout_s=1.0, jitter_fraction=0.0)
    connection = RemoteConnection(
        server, link, retry_policy=policy, circuit_breaker=breaker
    )
    return db, server, link, connection


@pytest.fixture(autouse=True)
def no_wall_clock_sleeps(monkeypatch):
    """The whole retry/backoff machinery must never sleep for real."""

    def poisoned(seconds):
        raise AssertionError(f"wall-clock sleep({seconds}) in simulated code")

    monkeypatch.setattr(time, "sleep", poisoned)


class TestSequencedFrames:
    def test_roundtrip(self):
        body = encode_sequenced(7, 42, b"\x01inner")
        client_id, seq, inner = decode_sequenced(body)
        assert (client_id, seq, inner) == (7, 42, b"\x01inner")

    def test_crc_detects_bit_flip(self):
        body = bytearray(encode_sequenced(7, 42, b"\x01inner"))
        body[-1] ^= 0x01
        with pytest.raises(ProtocolError):
            decode_sequenced(bytes(body))

    def test_crc_detects_truncation(self):
        body = encode_sequenced(7, 42, b"\x01" + b"x" * 100)
        with pytest.raises(ProtocolError):
            decode_sequenced(body[:40])

    def test_header_too_short_rejected(self):
        with pytest.raises(ProtocolError):
            decode_sequenced(b"\x00\x01")

    def test_ids_out_of_range_rejected(self):
        with pytest.raises(ProtocolError):
            encode_sequenced(2**32, 1, b"x")
        with pytest.raises(ProtocolError):
            encode_sequenced(1, -1, b"x")


class TestRetrySchedule:
    def test_clock_advances_exactly_by_modeled_schedule(self):
        """Drop the first two requests: the elapsed simulated time is two
        full timeouts, the two scripted backoffs, plus one clean round
        trip — nothing more."""
        policy = RetryPolicy(
            timeout_s=1.0,
            backoff_base_s=0.5,
            backoff_multiplier=2.0,
            backoff_cap_s=10.0,
            jitter_fraction=0.0,
        )
        db, server, link, connection = make_stack(
            fates=["drop", "drop"], policy=policy
        )
        result = connection.execute("SELECT n FROM t WHERE id = 1")
        assert result.rows == [(0,)]
        clean = ScriptedLink([])
        RemoteConnection(
            server, clean, retry_policy=policy
        ).execute("SELECT n FROM t WHERE id = 1")
        expected = 2 * 1.0 + (0.5 + 1.0) + clean.clock.now
        assert link.clock.now == pytest.approx(expected)
        assert link.stats.timeouts == 2
        assert link.stats.retries == 2
        assert link.stats.backoff_seconds == pytest.approx(1.5)

    def test_backoff_deterministic_given_seed(self):
        times = []
        for __ in range(2):
            policy = RetryPolicy(timeout_s=1.0, seed=21)
            __, __, link, connection = make_stack(
                fates=["drop", "drop", "drop"], policy=policy
            )
            connection.execute("SELECT 1")
            times.append(link.clock.now)
        assert times[0] == times[1]

    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=3, timeout_s=1.0)
        __, __, link, connection = make_stack(
            fates=["drop"] * 10, policy=policy
        )
        with pytest.raises(TimeoutError):
            connection.execute("SELECT 1")
        # 3 attempts = 3 requests on the wire, no more.
        assert link.stats.drops == 3

    def test_corrupted_response_retried_without_timeout_wait(self):
        """A damaged frame is detected on arrival — the client retries
        immediately (plus backoff), it does not wait out the timeout."""
        policy = RetryPolicy(
            timeout_s=50.0, backoff_base_s=0.1, jitter_fraction=0.0
        )
        __, __, link, connection = make_stack(
            fates=["ok", "flip"], policy=policy
        )
        result = connection.execute("SELECT n FROM t WHERE id = 1")
        assert result.rows == [(0,)]
        assert link.stats.timeouts == 0
        assert link.stats.retries == 1
        assert link.clock.now < 50.0


class TestIdempotency:
    def test_update_not_reapplied_when_response_lost(self):
        """The server executed the UPDATE but its response was dropped;
        the retransmission must be answered from the replay cache, not
        re-executed."""
        db, server, __, connection = make_stack(fates=["ok", "drop"])
        connection.execute("UPDATE t SET n = n + 1 WHERE id = 1")
        assert db.execute("SELECT n FROM t WHERE id = 1").rows == [(1,)]
        assert server.statistics["duplicates_suppressed"] == 1

    def test_batch_not_reapplied_when_response_lost(self):
        db, server, __, connection = make_stack(fates=["ok", "drop"])
        connection.execute_batch(
            [("UPDATE t SET n = n + 10 WHERE id = 1", [])]
        )
        assert db.execute("SELECT n FROM t WHERE id = 1").rows == [(10,)]
        assert server.statistics["duplicates_suppressed"] == 1
        assert server.statistics["batches"] == 1

    def test_corrupted_request_rejected_then_executed_once(self):
        db, server, __, connection = make_stack(fates=["flip"])
        connection.execute("UPDATE t SET n = n + 1 WHERE id = 1")
        assert db.execute("SELECT n FROM t WHERE id = 1").rows == [(1,)]
        assert server.statistics["crc_rejects"] == 1
        assert server.statistics["duplicates_suppressed"] == 0

    def test_distinct_connections_use_distinct_client_ids(self):
        __, server, link, connection = make_stack()
        other = RemoteConnection(
            server, ScriptedLink([]), retry_policy=RetryPolicy()
        )
        assert connection.client_id != other.client_id

    def test_replay_cache_bounded(self):
        __, server, __, connection = make_stack()
        server.replay_cache_size = 4
        for __ in range(10):
            connection.execute("SELECT 1")
        assert len(server._replay_cache) == 4

    def test_nested_sequenced_frame_rejected(self):
        __, server, __, __ = make_stack()
        inner = encode_envelope(
            Opcode.SEQUENCED, encode_sequenced(1, 1, b"\x01x")
        )
        response = server.handle(
            encode_envelope(Opcode.SEQUENCED, encode_sequenced(1, 2, inner))
        )
        opcode, __ = decode_envelope(response)
        assert opcode is Opcode.ERROR


class TestCircuitBreaker:
    def test_opens_and_rejects_locally(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        policy = RetryPolicy(max_attempts=2, timeout_s=1.0)
        __, __, link, connection = make_stack(
            fates=["drop"] * 20, policy=policy, breaker=breaker
        )
        with pytest.raises(TimeoutError):
            connection.execute("SELECT 1")
        assert breaker.is_open
        wire_messages = link.stats.messages
        with pytest.raises(CircuitOpenError):
            connection.execute("SELECT 1")
        assert link.stats.messages == wire_messages  # rejected locally

    def test_half_open_trial_recovers(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=5.0)
        policy = RetryPolicy(max_attempts=2, timeout_s=1.0)
        __, __, link, connection = make_stack(
            fates=["drop", "drop"], policy=policy, breaker=breaker
        )
        with pytest.raises(TimeoutError):
            connection.execute("SELECT 1")
        link.clock.advance(breaker.seconds_until_trial(link.clock.now))
        result = connection.execute("SELECT n FROM t WHERE id = 1")
        assert result.rows == [(0,)]
        assert not breaker.is_open


class TestClosedConnection:
    def test_close_is_idempotent(self):
        __, __, __, connection = make_stack()
        connection.close()
        connection.close()  # must not raise
        assert connection.closed

    @pytest.mark.parametrize(
        "call",
        [
            lambda c: c.execute("SELECT 1"),
            lambda c: c.execute_batch([("SELECT 1", [])]),
            lambda c: c.server_stats(),
            lambda c: c.call_procedure("p", []),
            lambda c: c.ping(),
        ],
        ids=["execute", "execute_batch", "server_stats", "call", "ping"],
    )
    def test_public_methods_raise_when_closed(self, call):
        __, __, __, connection = make_stack()
        connection.close()
        with pytest.raises(ProtocolError):
            call(connection)


class TestEndToEndUnderChaos:
    def test_lossy_wan_converges_to_clean_result(self):
        """Under DROP_5 with retries the visible result is exactly the
        zero-fault result, only slower."""
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 7)")
        server = DatabaseServer(db)
        link = FaultyLink.wrap(WAN_256.create_link(), DROP_5, seed=2)
        connection = RemoteConnection(
            server, link, retry_policy=RetryPolicy()
        )
        rows = [
            connection.execute("SELECT n FROM t WHERE id = 1").rows
            for __ in range(40)
        ]
        assert rows == [[(7,)]] * 40
        assert link.stats.drops > 0  # the chaos did fire
        assert link.stats.retries >= link.stats.drops > 0

    def test_total_outage_times_out(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER)")
        server = DatabaseServer(db)
        profile = FaultProfile(name="dead", outages=((0.0, 1e9),))
        link = FaultyLink.wrap(WAN_256.create_link(), profile, seed=0)
        connection = RemoteConnection(
            server, link, retry_policy=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(TimeoutError):
            connection.execute("SELECT 1")
