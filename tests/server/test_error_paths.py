"""Hardened server error paths: a request may fail, the server may not.

Regression tests for two crash modes:

* an int64-overflowing value in a result set used to escape ``handle``
  as a bare ``struct.error`` (only ``ReproError`` was caught), killing
  the simulated server mid-request;
* any unexpected exception below the wire layer (e.g. a buggy server
  procedure) did the same.

Both must now cost the client one error round trip and leave the server
answering the next request normally.
"""

import pytest

from repro.errors import ProtocolError, ReproError
from repro.network.profiles import LAN
from repro.server import protocol
from repro.server.client import RemoteConnection
from repro.server.protocol import Opcode
from repro.server.server import DatabaseServer
from repro.sqldb import Database
from repro.sqldb.wire import INT64_MAX


@pytest.fixture
def stack():
    db = Database()
    db.execute("CREATE TABLE t (v INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    server = DatabaseServer(db)
    return server, RemoteConnection(server, LAN.create_link())


class TestOversizedIntegers:
    def test_overflowing_result_becomes_error_frame(self, stack):
        server, connection = stack
        with pytest.raises(ProtocolError):
            connection.execute(f"SELECT {INT64_MAX} + 1")
        assert server.statistics["errors"] == 1

    def test_server_survives_and_answers_next_request(self, stack):
        server, connection = stack
        with pytest.raises(ProtocolError):
            connection.execute(f"SELECT {INT64_MAX} + 1")
        assert connection.execute("SELECT v FROM t").rows == [(1,)]

    def test_overflow_in_batch_poisons_only_its_entry(self, stack):
        server, connection = stack
        results = connection.execute_batch(
            [
                ("SELECT v FROM t", []),
                (f"SELECT {INT64_MAX} + 1", []),
                ("SELECT v + 1 FROM t", []),
            ]
        )
        assert results[0].rows == [(1,)]
        assert isinstance(results[1], ReproError)
        assert results[2].rows == [(2,)]


class TestUnexpectedExceptions:
    def test_buggy_procedure_becomes_error_frame(self, stack):
        server, connection = stack

        def buggy(database, *args):
            raise ValueError("procedure bug")

        server.register_procedure("buggy", buggy)
        with pytest.raises(ProtocolError) as excinfo:
            connection.call_procedure("buggy")
        assert "internal server error" in str(excinfo.value)
        assert "ValueError" in str(excinfo.value)
        assert server.statistics["errors"] == 1

    def test_server_survives_buggy_procedure(self, stack):
        server, connection = stack
        server.register_procedure(
            "buggy", lambda database: (_ for _ in ()).throw(RuntimeError("x"))
        )
        with pytest.raises(ProtocolError):
            connection.call_procedure("buggy")
        assert connection.execute("SELECT v FROM t").rows == [(1,)]
        assert connection.ping() > 0

    def test_raw_handle_returns_error_envelope(self, stack):
        """At the frame level: the response is a decodable ERROR frame,
        not an exception escaping ``handle``."""
        server, __ = stack
        server.register_procedure(
            "buggy", lambda database: (_ for _ in ()).throw(KeyError("k"))
        )
        request = protocol.encode_envelope(
            Opcode.CALL_PROCEDURE,
            protocol.encode_procedure_call("buggy", []),
        )
        response = server.handle(request)
        opcode, body = protocol.decode_envelope(response)
        assert opcode is Opcode.ERROR
        kind, message = protocol.decode_error(body)
        assert kind == "ProtocolError"
        assert "KeyError" in message
