"""Strict lint mode: ERROR frames before execution, and proof that the
lint gate is purely static (identical bytes with and without it)."""

import pytest

from repro.errors import LintViolation
from repro.network.profiles import WAN_256
from repro.server import protocol
from repro.server.client import RemoteConnection
from repro.server.protocol import Opcode
from repro.server.server import DatabaseServer
from repro.sqldb import Database, wire

#: Non-linear recursion: the CTE is referenced twice in one branch.
NON_LINEAR = (
    "WITH RECURSIVE r(obid) AS ("
    "  SELECT obid FROM part WHERE obid = ?"
    "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
    "  JOIN r r2 ON r2.obid = l.right"
    ") SELECT obid FROM r"
)

#: Non-monotonic recursion: EXCEPT between the branches.
NON_MONOTONIC = (
    "WITH RECURSIVE r(obid) AS ("
    "  SELECT obid FROM part WHERE obid = ?"
    "  EXCEPT SELECT obid FROM r"
    ") SELECT obid FROM r"
)

SCHEMA = [
    "CREATE TABLE part (obid INTEGER PRIMARY KEY, name VARCHAR(10))",
    "CREATE TABLE link (left INTEGER, right INTEGER)",
    "INSERT INTO part VALUES (1, 'root'), (2, 'child')",
    "INSERT INTO link VALUES (1, 2)",
]


def build_server(strict_lint: bool) -> DatabaseServer:
    db = Database()
    for statement in SCHEMA:
        db.execute(statement)
    return DatabaseServer(db, strict_lint=strict_lint)


def query_frame(sql: str, params=()) -> bytes:
    return protocol.encode_envelope(
        Opcode.QUERY, wire.encode_query(sql, list(params))
    )


class TestStrictModeRejects:
    @pytest.mark.parametrize("sql", [NON_LINEAR, NON_MONOTONIC])
    def test_error_frame_before_execution(self, sql):
        server = build_server(strict_lint=True)
        statements_before = server.database.statistics["statements"]
        opcode, body = protocol.decode_envelope(
            server.handle(query_frame(sql, [1]))
        )
        assert opcode is Opcode.ERROR
        kind, message = protocol.decode_error(body)
        assert kind == "LintViolation"
        assert "R00" in message
        # The statement never reached the engine.
        assert server.database.statistics["statements"] == statements_before
        assert server.statistics["lint_rejections"] == 1

    def test_client_raises_typed_lint_violation(self):
        server = build_server(strict_lint=True)
        connection = RemoteConnection(server, WAN_256.create_link())
        with pytest.raises(LintViolation, match="strict lint"):
            connection.execute(NON_LINEAR, [1])

    def test_batch_entry_is_poisoned_not_the_batch(self):
        server = build_server(strict_lint=True)
        frame = protocol.encode_envelope(
            Opcode.BATCH,
            protocol.encode_batch(
                [
                    ("SELECT name FROM part WHERE obid = ?", [1]),
                    (NON_LINEAR, [1]),
                    ("SELECT name FROM part WHERE obid = ?", [2]),
                ]
            ),
        )
        opcode, body = protocol.decode_envelope(server.handle(frame))
        assert opcode is Opcode.BATCH_RESULT
        entries = protocol.decode_batch_result(body)
        kinds = [kind for kind, __ in entries]
        assert kinds == [
            protocol.BATCH_ENTRY_RESULT,
            protocol.BATCH_ENTRY_ERROR,
            protocol.BATCH_ENTRY_RESULT,
        ]

    def test_rejection_cache_repeats_verdict(self):
        server = build_server(strict_lint=True)
        for __ in range(3):
            opcode, __body = protocol.decode_envelope(
                server.handle(query_frame(NON_LINEAR, [1]))
            )
            assert opcode is Opcode.ERROR
        assert server.statistics["lint_rejections"] == 3

    def test_warnings_do_not_reject(self):
        # WARNING findings (e.g. an unpadded IN-list) pass through.
        server = build_server(strict_lint=True)
        opcode, __ = protocol.decode_envelope(
            server.handle(
                query_frame("SELECT name FROM part WHERE obid IN (?, ?, ?)", [1, 2, 3])
            )
        )
        assert opcode is Opcode.RESULT

    def test_unparseable_sql_reports_parse_error_not_lint(self):
        server = build_server(strict_lint=True)
        opcode, body = protocol.decode_envelope(
            server.handle(query_frame("SELEKT nonsense"))
        )
        assert opcode is Opcode.ERROR
        kind, __ = protocol.decode_error(body)
        assert kind != "LintViolation"


class TestStaticness:
    def test_identical_bytes_with_and_without_gate(self):
        """The analyzer never executes anything: a lint-clean workload
        produces byte-identical responses under strict mode."""
        workload = [
            ("SELECT name FROM part WHERE obid = ?", [1]),
            ("INSERT INTO part VALUES (3, 'extra')", []),
            ("SELECT COUNT(*) FROM part", []),
            (
                "WITH RECURSIVE r(obid) AS ("
                "  SELECT obid FROM part WHERE obid = ?"
                "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
                ") SELECT obid FROM r",
                [1],
            ),
            ("SELECT name FROM part WHERE obid IN (?, ?, ?, ?)", [1, 2, 3, 3]),
        ]
        plain = build_server(strict_lint=False)
        strict = build_server(strict_lint=True)
        for sql, params in workload:
            frame = query_frame(sql, params)
            assert plain.handle(frame) == strict.handle(frame)
        assert strict.statistics["lint_checks"] == len(workload)
        assert strict.statistics["lint_rejections"] == 0

    def test_default_server_has_no_lint_overhead(self):
        server = build_server(strict_lint=False)
        opcode, __ = protocol.decode_envelope(
            server.handle(query_frame(NON_LINEAR, [1]))
        )
        # Without strict mode the engine itself reports the recursion
        # error (or executes, if it can) — either way no lint counters.
        assert server.statistics["lint_checks"] == 0


#: A C002 script: the UPDATE reads the column it assigns, so a retried
#: frame outside the SEQUENCED envelope would apply it twice.
SCRIPT_STATEMENTS = [
    ("SELECT name FROM part WHERE obid = ?", [1]),
    ("UPDATE part SET obid = obid + 10 WHERE obid = ?", [1]),
]


def batch_frame(statements) -> bytes:
    return protocol.encode_envelope(
        Opcode.BATCH, protocol.encode_batch(statements)
    )


class TestScriptGate:
    """Multi-statement batches run through the transaction analyzer
    before the first statement executes."""

    def test_c002_batch_rejected_whole_and_pre_execution(self):
        server = build_server(strict_lint=True)
        before = server.database.execute(
            "SELECT obid, name FROM part ORDER BY obid"
        ).rows
        statements_before = server.database.statistics["statements"]
        opcode, body = protocol.decode_envelope(
            server.handle(batch_frame(SCRIPT_STATEMENTS))
        )
        assert opcode is Opcode.ERROR
        kind, message = protocol.decode_error(body)
        assert kind == "LintViolation"
        assert "C002" in message
        # Nothing executed: not even the leading SELECT.
        assert server.database.statistics["statements"] == statements_before
        assert (
            server.database.execute(
                "SELECT obid, name FROM part ORDER BY obid"
            ).rows
            == before
        )
        assert server.statistics["lint_rejections"] == 1

    def test_c005_ddl_in_transaction_batch_rejected(self):
        server = build_server(strict_lint=True)
        opcode, body = protocol.decode_envelope(
            server.handle(
                batch_frame(
                    [
                        ("BEGIN", []),
                        ("CREATE TABLE w (id INTEGER PRIMARY KEY)", []),
                        ("COMMIT", []),
                    ]
                )
            )
        )
        assert opcode is Opcode.ERROR
        kind, message = protocol.decode_error(body)
        assert kind == "LintViolation"
        assert "C005" in message

    def test_sequenced_equivalent_batch_runs(self):
        # The same statements inside a session travel as SEQUENCED
        # frames: the replay cache makes retries exactly-once, so the
        # non-idempotent UPDATE is safe and the gate lets it through.
        from repro.concurrency import SessionManager

        db = Database()
        for statement in SCHEMA:
            db.execute(statement)
        server = DatabaseServer(
            db, sessions=SessionManager(db), strict_lint=True
        )
        connection = RemoteConnection(server, WAN_256.create_link())
        connection.open_session()
        results = connection.execute_batch(SCRIPT_STATEMENTS)
        assert not any(isinstance(entry, Exception) for entry in results)
        connection.close_session()
        assert server.statistics["lint_rejections"] == 0
        # The update really ran: obid 1 became 11.
        rows = db.execute("SELECT obid FROM part ORDER BY obid").rows
        assert [row[0] for row in rows] == [2, 11]

    def test_single_statement_batch_skips_script_gate(self):
        # A lone statement is not a script; only the per-entry gate runs
        # (C002 is a script-level concern).
        server = build_server(strict_lint=True)
        opcode, __ = protocol.decode_envelope(
            server.handle(batch_frame(SCRIPT_STATEMENTS[1:]))
        )
        assert opcode is Opcode.BATCH_RESULT
        assert server.statistics["lint_rejections"] == 0

    def test_clean_batch_byte_identical_strict_vs_plain(self):
        workload = [
            ("SELECT name FROM part WHERE obid = ?", [1]),
            ("INSERT INTO part VALUES (3, 'extra')", []),
            ("SELECT COUNT(*) FROM part", []),
        ]
        plain = build_server(strict_lint=False)
        strict = build_server(strict_lint=True)
        frame = batch_frame(workload)
        assert plain.handle(frame) == strict.handle(frame)
        assert strict.statistics["lint_rejections"] == 0

    def test_rejection_verdict_is_cached(self):
        server = build_server(strict_lint=True)
        for __ in range(3):
            opcode, __body = protocol.decode_envelope(
                server.handle(batch_frame(SCRIPT_STATEMENTS))
            )
            assert opcode is Opcode.ERROR
        assert server.statistics["lint_rejections"] == 3
