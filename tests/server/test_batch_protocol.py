"""The pipelined batch protocol and the STATS counter surface.

One BATCH frame ships N statements and returns N per-statement entries;
a statement-level error becomes an exception *object* in the result list
instead of poisoning its batch siblings.  STATS exposes the server's and
database's counters (plan-cache hits included) in one round trip.
"""

import pytest

from repro.errors import ProtocolError, SQLError
from repro.network.profiles import WAN_256
from repro.server import protocol
from repro.server.client import RemoteConnection
from repro.server.protocol import Opcode
from repro.server.server import DatabaseServer
from repro.sqldb import Database
from repro.sqldb.result import ResultSet


@pytest.fixture
def stack():
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(10))")
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
    server = DatabaseServer(db)
    connection = RemoteConnection(server, WAN_256.create_link())
    return db, server, connection


class TestExecuteBatch:
    def test_batch_is_one_round_trip(self, stack):
        __, __, connection = stack
        results = connection.execute_batch(
            [
                ("SELECT name FROM t WHERE id = ?", [1]),
                ("SELECT name FROM t WHERE id = ?", [2]),
                ("SELECT COUNT(*) FROM t", []),
            ]
        )
        assert connection.statistics["round_trips"] == 1
        assert [r.rows for r in results[:2]] == [[("one",)], [("two",)]]
        assert results[2].scalar() == 3

    def test_empty_batch_costs_nothing(self, stack):
        __, __, connection = stack
        assert connection.execute_batch([]) == []
        assert connection.statistics["round_trips"] == 0

    def test_mid_batch_error_does_not_poison_siblings(self, stack):
        __, __, connection = stack
        results = connection.execute_batch(
            [
                ("SELECT id FROM t WHERE id = ?", [1]),
                ("SELECT nope FROM missing", []),
                ("SELECT id FROM t WHERE id = ?", [3]),
            ]
        )
        assert isinstance(results[0], ResultSet)
        assert isinstance(results[1], Exception)
        assert isinstance(results[2], ResultSet)
        assert results[0].rows == [(1,)]
        assert results[2].rows == [(3,)]

    def test_statement_errors_keep_their_class(self, stack):
        __, __, connection = stack
        (error,) = connection.execute_batch([("SELECT FROM FROM", [])])
        assert isinstance(error, SQLError)

    def test_server_counts_batches_and_statements(self, stack):
        __, server, connection = stack
        connection.execute_batch(
            [("SELECT 1", []), ("SELECT 2", []), ("SELECT 3", [])]
        )
        connection.execute_batch([("SELECT 4", [])])
        assert server.statistics["batches"] == 2
        assert server.statistics["batch_statements"] == 4

    def test_short_batch_response_rejected(self, stack):
        __, server, connection = stack
        original = server.handle

        def drop_one_entry(request):
            response = original(request)
            opcode, body = protocol.decode_envelope(response)
            entries = protocol.decode_batch_result(body)
            return protocol.encode_envelope(
                Opcode.BATCH_RESULT, protocol.encode_batch_result(entries[:-1])
            )

        server.handle = drop_one_entry
        with pytest.raises(ProtocolError):
            connection.execute_batch([("SELECT 1", []), ("SELECT 2", [])])


class TestServerStats:
    def test_stats_surface_database_counters(self, stack):
        db, __, connection = stack
        connection.execute("SELECT * FROM t")
        connection.execute("SELECT * FROM t")
        stats = connection.server_stats()
        assert stats["db_statements"] == db.statistics["statements"]
        assert stats["db_plan_cache_hits"] >= 1
        assert stats["queries"] == 2

    def test_stats_include_batch_counters(self, stack):
        __, __, connection = stack
        connection.execute_batch([("SELECT 1", []), ("SELECT 2", [])])
        stats = connection.server_stats()
        assert stats["batches"] == 1
        assert stats["batch_statements"] == 2

    def test_stats_request_with_body_is_an_error(self, stack):
        __, server, __ = stack
        response = server.handle(
            protocol.encode_envelope(Opcode.STATS, b"junk")
        )
        opcode, __body = protocol.decode_envelope(response)
        assert opcode is Opcode.ERROR


class TestPerOpcodeTraffic:
    def test_link_counts_messages_and_bytes_per_opcode(self, stack):
        __, __, connection = stack
        connection.execute("SELECT * FROM t")
        connection.execute_batch([("SELECT 1", []), ("SELECT 2", [])])
        stats = connection.link.stats
        assert stats.opcode_messages["QUERY"] == 1
        assert stats.opcode_messages["RESULT"] == 1
        assert stats.opcode_messages["BATCH"] == 1
        assert stats.opcode_messages["BATCH_RESULT"] == 1
        for opcode in ("QUERY", "RESULT", "BATCH", "BATCH_RESULT"):
            assert stats.opcode_payload_bytes[opcode] > 0

    def test_snapshot_delta_isolates_one_action(self, stack):
        __, __, connection = stack
        connection.execute("SELECT * FROM t")
        before = connection.link.stats.snapshot()
        connection.execute_batch([("SELECT 1", [])])
        delta = connection.link.stats.delta_since(before)
        assert delta.opcode_messages == {"BATCH": 1, "BATCH_RESULT": 1}
        assert "QUERY" not in delta.opcode_messages

    def test_merge_accumulates_opcode_counters(self, stack):
        __, __, connection = stack
        connection.execute("SELECT * FROM t")
        first = connection.link.stats.snapshot()
        second = connection.link.stats.snapshot()
        first.merge(second)
        assert first.opcode_messages["QUERY"] == 2
