"""Client/server stack: round trips, errors, procedures, accounting."""

import pytest

from repro.errors import CheckOutError, ProtocolError, SQLError
from repro.network.profiles import LAN, WAN_256
from repro.server.client import RemoteConnection, RemoteError
from repro.server.protocol import (
    Opcode,
    decode_envelope,
    decode_error,
    decode_procedure_call,
    decode_values,
    encode_envelope,
    encode_error,
    encode_procedure_call,
    encode_values,
)
from repro.server.server import DatabaseServer
from repro.sqldb import Database


@pytest.fixture
def stack():
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(10))")
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
    server = DatabaseServer(db)
    connection = RemoteConnection(server, WAN_256.create_link())
    return db, server, connection


class TestProtocolFrames:
    def test_envelope_roundtrip(self):
        opcode, body = decode_envelope(encode_envelope(Opcode.QUERY, b"abc"))
        assert opcode is Opcode.QUERY
        assert body == b"abc"

    def test_empty_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_envelope(b"")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ProtocolError):
            decode_envelope(bytes([250]))

    def test_procedure_call_roundtrip(self):
        name, args = decode_procedure_call(
            encode_procedure_call("check_out_tree", [5, "scott"])
        )
        assert name == "check_out_tree"
        assert args == [5, "scott"]

    def test_values_roundtrip(self):
        assert decode_values(encode_values([1, None, "x"])) == [1, None, "x"]

    def test_error_roundtrip(self):
        kind, message = decode_error(encode_error(ValueError("boom")))
        assert (kind, message) == ("ValueError", "boom")

    def test_truncated_procedure_call_rejected(self):
        encoded = encode_procedure_call("p", [1])
        with pytest.raises(ProtocolError):
            decode_procedure_call(encoded[:-2])


class TestQueries:
    def test_remote_select(self, stack):
        __, __, connection = stack
        result = connection.execute("SELECT name FROM t WHERE id = ?", [2])
        assert result.scalar() == "two"

    def test_remote_dml_rowcount(self, stack):
        __, __, connection = stack
        result = connection.execute("UPDATE t SET name = 'x'")
        assert result.rowcount == 2

    def test_each_execute_is_one_round_trip(self, stack):
        __, __, connection = stack
        connection.execute("SELECT 1")
        connection.execute("SELECT 2")
        assert connection.statistics["round_trips"] == 2
        assert connection.link.stats.messages == 4

    def test_clock_advances_per_query(self, stack):
        __, __, connection = stack
        before = connection.link.clock.now
        connection.execute("SELECT * FROM t")
        # At least 2 x 150 ms latency.
        assert connection.link.clock.now - before >= 0.30

    def test_sql_error_costs_a_round_trip_but_not_the_server(self, stack):
        __, server, connection = stack
        with pytest.raises(SQLError):
            connection.execute("SELECT * FROM missing_table")
        assert server.statistics["errors"] == 1
        # The server still answers afterwards.
        assert connection.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_parse_error_propagates_as_sql_error(self, stack):
        __, __, connection = stack
        with pytest.raises(SQLError):
            connection.execute("SELEKT broken")

    def test_closed_connection_rejected(self, stack):
        __, __, connection = stack
        connection.close()
        with pytest.raises(ProtocolError):
            connection.execute("SELECT 1")

    def test_context_manager_closes(self, stack):
        __, __, connection = stack
        with connection as conn:
            conn.execute("SELECT 1")
        assert connection.closed

    def test_ping(self, stack):
        __, __, connection = stack
        delay = connection.ping()
        assert delay > 0.3  # two latencies over the 150 ms WAN


class TestProcedures:
    def test_register_and_call(self, stack):
        db, server, connection = stack
        server.register_procedure(
            "double_all", lambda database, factor: [
                row[0] * factor for row in database.execute("SELECT id FROM t").rows
            ],
        )
        assert connection.call_procedure("double_all", [10]) == [10, 20]
        assert server.statistics["procedure_calls"] == 1

    def test_unknown_procedure_raises(self, stack):
        __, __, connection = stack
        with pytest.raises(ProtocolError):
            connection.call_procedure("nope")

    def test_procedure_error_reconstructed(self, stack):
        __, server, connection = stack

        def failing(database):
            raise CheckOutError("subtree busy")

        server.register_procedure("fail", failing)
        with pytest.raises(CheckOutError):
            connection.call_procedure("fail")

    def test_unknown_error_type_becomes_remote_error(self, stack):
        __, server, connection = stack

        def handler(frame):
            from repro.server import protocol

            return protocol.encode_envelope(
                Opcode.ERROR, protocol.encode_error(KeyError("odd"))
            )

        server.handle = handler
        with pytest.raises(RemoteError):
            connection.execute("SELECT 1")

    def test_procedure_call_is_single_round_trip(self, stack):
        __, server, connection = stack
        server.register_procedure("noop", lambda database: [])
        before = connection.statistics["round_trips"]
        connection.call_procedure("noop")
        assert connection.statistics["round_trips"] == before + 1


class TestTrafficRealism:
    def test_bigger_results_cost_more_time(self, stack):
        db, server, __ = stack
        for i in range(3, 300):
            db.execute("INSERT INTO t VALUES (?, ?)", [i, f"row{i}"])
        fast = RemoteConnection(server, LAN.create_link())
        slow = RemoteConnection(server, WAN_256.create_link())
        fast.execute("SELECT * FROM t")
        slow.execute("SELECT * FROM t")
        assert slow.link.clock.now > fast.link.clock.now * 20

    def test_request_bytes_include_query_text(self, stack):
        __, __, connection = stack
        connection.execute("SELECT 1")
        small = connection.link.stats.payload_bytes
        connection.execute("SELECT 1 -- " + "padding " * 100)
        grown = connection.link.stats.payload_bytes - small
        assert grown > 800
