"""Server CPU cost model (the paper's Section 6 caveat)."""

import pytest

from repro.network.profiles import LAN, WAN_256
from repro.server.client import RemoteConnection
from repro.server.server import CpuCostModel, DatabaseServer
from repro.sqldb import Database


def make_stack(profile, cpu_cost=None):
    db = Database()
    db.execute("CREATE TABLE t (v INTEGER)")
    db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(500)])
    server = DatabaseServer(db, cpu_cost=cpu_cost)
    return server, RemoteConnection(server, profile.create_link())


class TestDefaultsMatchPaper:
    def test_zero_cost_by_default(self):
        server, connection = make_stack(WAN_256)
        connection.execute("SELECT COUNT(*) FROM t")
        assert server.last_cpu_seconds == 0.0
        assert connection.link.stats.server_seconds == 0.0

    def test_disabled_model_reports_not_enabled(self):
        assert not CpuCostModel().enabled
        assert CpuCostModel(seconds_per_statement=0.001).enabled


class TestCharging:
    def test_per_statement_cost(self):
        server, connection = make_stack(
            WAN_256, CpuCostModel(seconds_per_statement=0.01)
        )
        before = connection.link.clock.now
        connection.execute("SELECT 1")
        elapsed = connection.link.clock.now - before
        assert server.last_cpu_seconds == pytest.approx(0.01)
        assert elapsed > 0.30  # latency still dominates

    def test_per_row_cost_scales_with_scan(self):
        server, connection = make_stack(
            LAN, CpuCostModel(seconds_per_row_scanned=0.0001)
        )
        connection.execute("SELECT COUNT(*) FROM t")
        full_scan = server.last_cpu_seconds
        connection.execute("SELECT 1")
        no_scan = server.last_cpu_seconds
        assert full_scan == pytest.approx(0.05)  # 500 rows x 0.1 ms
        assert no_scan < full_scan

    def test_server_seconds_accumulate_in_stats(self):
        server, connection = make_stack(
            WAN_256, CpuCostModel(seconds_per_statement=0.02)
        )
        connection.execute("SELECT 1")
        connection.execute("SELECT 1")
        assert connection.link.stats.server_seconds == pytest.approx(0.04)
        assert server.statistics["cpu_seconds"] == pytest.approx(0.04)
        snapshot = connection.link.stats.snapshot()
        connection.execute("SELECT 1")
        delta = connection.link.stats.delta_since(snapshot)
        assert delta.server_seconds == pytest.approx(0.02)

    def test_failed_statement_not_charged(self):
        from repro.errors import SQLError

        server, connection = make_stack(
            WAN_256, CpuCostModel(seconds_per_statement=0.02)
        )
        with pytest.raises(SQLError):
            connection.execute("SELECT * FROM missing")
        assert server.last_cpu_seconds == 0.0


class TestBatchAccounting:
    """Regression: a BATCH of N statements used to be charged for only
    the *last* statement's scan (the server read ``last_counters`` once
    per request); the per-request accumulator must charge all N."""

    def test_batch_charges_every_statement_scan(self):
        server, connection = make_stack(
            LAN, CpuCostModel(seconds_per_row_scanned=0.0001)
        )
        results = connection.execute_batch(
            [
                ("SELECT COUNT(*) FROM t", []),
                ("SELECT COUNT(*) FROM t WHERE v >= 0", []),
            ]
        )
        assert all(not isinstance(r, Exception) for r in results)
        # Two full scans of 500 rows, not one.
        assert server.last_cpu_seconds == pytest.approx(2 * 500 * 0.0001)

    def test_batch_matches_equivalent_single_statements(self):
        cost = CpuCostModel(
            seconds_per_statement=0.01, seconds_per_row_scanned=0.0001
        )
        statements = [
            ("SELECT COUNT(*) FROM t", []),
            ("SELECT COUNT(*) FROM t WHERE v >= 0", []),
        ]
        server_single, connection_single = make_stack(LAN, cost)
        single_total = 0.0
        for sql, params in statements:
            connection_single.execute(sql, params)
            single_total += server_single.last_cpu_seconds
        server_batch, connection_batch = make_stack(LAN, cost)
        connection_batch.execute_batch(statements)
        assert server_batch.last_cpu_seconds == pytest.approx(single_total)

    def test_failed_batch_entries_not_charged(self):
        server, connection = make_stack(
            LAN, CpuCostModel(seconds_per_row_scanned=0.0001)
        )
        results = connection.execute_batch(
            [
                ("SELECT COUNT(*) FROM t", []),
                ("SELECT * FROM missing", []),
            ]
        )
        assert isinstance(results[1], Exception)
        assert server.last_cpu_seconds == pytest.approx(500 * 0.0001)

    def test_dml_after_select_not_charged_stale_scan(self):
        """Regression: ``last_counters`` was left stale by DML, so an
        UPDATE following a big SELECT got billed for the SELECT's scan."""
        server, connection = make_stack(
            LAN, CpuCostModel(seconds_per_row_scanned=0.0001)
        )
        connection.execute("SELECT COUNT(*) FROM t")
        assert server.last_cpu_seconds == pytest.approx(0.05)
        connection.execute("INSERT INTO t VALUES (999)")
        assert server.last_cpu_seconds == 0.0


class TestSection6Caveat:
    def test_cpu_negligible_on_wan_visible_on_lan(self):
        """'In higher bandwidth environments ... it may be reasonable to
        take local query execution time into consideration': the CPU share
        of the response time is tiny over the WAN and dominant on a LAN."""
        cost = CpuCostModel(seconds_per_row_scanned=0.00005)
        for profile, cpu_share_bound, dominant in (
            (WAN_256, 0.1, False),
            (LAN, 0.5, True),
        ):
            __, connection = make_stack(profile, cost)
            before = connection.link.clock.now
            connection.execute("SELECT COUNT(*) FROM t")
            elapsed = connection.link.clock.now - before
            share = connection.link.stats.server_seconds / elapsed
            if dominant:
                assert share > cpu_share_bound
            else:
                assert share < cpu_share_bound
