"""Shared fixtures: databases pre-loaded with the paper's datasets."""

from __future__ import annotations

import pytest

from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import WAN_256
from repro.pdm.generator import figure2_dataset
from repro.pdm.schema import create_pdm_schema, load_product
from repro.sqldb.database import Database


@pytest.fixture
def empty_db() -> Database:
    return Database()


@pytest.fixture
def figure2_db() -> Database:
    """A PDM database holding the paper's Figure 2 example (plus the
    specification tables of Section 5.3.2)."""
    db = Database()
    create_pdm_schema(db)
    load_product(db, figure2_dataset())
    return db


@pytest.fixture
def figure2_product():
    return figure2_dataset()


@pytest.fixture
def small_tree() -> TreeParameters:
    """δ=3, κ=3, σ=0.6 — small enough for fast tests, deep enough to
    exercise recursion and visibility pruning."""
    return TreeParameters(depth=3, branching=3, visibility=0.6)


@pytest.fixture
def small_scenario(small_tree):
    """A fully wired client/server scenario over the simulated WAN."""
    return build_scenario(small_tree, WAN_256, seed=42)


@pytest.fixture
def tiny_scenario():
    """δ=2, κ=2, fully visible — for exact structural assertions."""
    tree = TreeParameters(depth=2, branching=2, visibility=1.0)
    return build_scenario(tree, WAN_256, seed=7)
