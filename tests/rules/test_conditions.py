"""Condition taxonomy: construction, classification (paper Figure 1)."""

import pytest

from repro.errors import RuleError
from repro.rules.conditions import (
    And,
    Apply,
    Attribute,
    BoolFunction,
    Comparison,
    ConditionClass,
    Const,
    ExistsStructure,
    ForAllRows,
    Not,
    Or,
    TreeAggregate,
    UserVar,
    attributes_used,
    classify,
    is_row_condition,
)


def make_or_buy_condition():
    """Paper example 1: assembly.make_or_buy <> 'buy'."""
    return Comparison("<>", Attribute("make_or_buy"), Const("buy"))


def checked_in_condition():
    """Paper example 2 row part: n.checkedout <> TRUE."""
    return Comparison("=", Attribute("checkedout"), Const(False))


class TestClassification:
    def test_comparison_is_row(self):
        assert classify(make_or_buy_condition()) is ConditionClass.ROW

    def test_function_condition_is_row(self):
        condition = BoolFunction(
            "options_overlap", (Attribute("strc_opt"), UserVar("user_options"))
        )
        assert classify(condition) is ConditionClass.ROW

    def test_boolean_combination_of_rows_is_row(self):
        condition = And(
            make_or_buy_condition(), Or(checked_in_condition(), Not(checked_in_condition()))
        )
        assert classify(condition) is ConditionClass.ROW

    def test_forall_rows(self):
        condition = ForAllRows(checked_in_condition())
        assert classify(condition) is ConditionClass.FORALL_ROWS

    def test_exists_structure(self):
        condition = ExistsStructure("comp", "specified_by", "spec")
        assert classify(condition) is ConditionClass.EXISTS_STRUCTURE

    def test_tree_aggregate(self):
        condition = TreeAggregate("COUNT", None, "<=", Const(10), object_type="assy")
        assert classify(condition) is ConditionClass.TREE_AGGREGATE

    def test_is_row_condition_rejects_tree(self):
        assert not is_row_condition(ForAllRows(checked_in_condition()))

    def test_mixed_boolean_combination_rejected(self):
        mixed = And(make_or_buy_condition(), ForAllRows(checked_in_condition()))
        with pytest.raises(RuleError):
            classify(mixed)


class TestValidation:
    def test_bad_comparison_operator_rejected(self):
        with pytest.raises(RuleError):
            Comparison("~=", Attribute("a"), Const(1))

    def test_forall_requires_row_condition(self):
        with pytest.raises(RuleError):
            ForAllRows(ForAllRows(checked_in_condition()))

    def test_tree_aggregate_unknown_function_rejected(self):
        with pytest.raises(RuleError):
            TreeAggregate("MEDIAN", "weight", "<=", Const(1))

    def test_tree_aggregate_needs_attribute_except_count(self):
        with pytest.raises(RuleError):
            TreeAggregate("AVG", None, "<=", Const(1))
        TreeAggregate("COUNT", None, "<=", Const(1))  # fine

    def test_apply_args_coerced_to_tuple(self):
        term = Apply("f", [Attribute("a")])
        assert isinstance(term.args, tuple)


class TestAttributesUsed:
    def test_collects_from_comparison(self):
        assert attributes_used(make_or_buy_condition()) == ["make_or_buy"]

    def test_collects_through_functions_and_boolean_ops(self):
        condition = And(
            BoolFunction("f", (Apply("g", (Attribute("x"),)),)),
            Comparison("=", Attribute("y"), Const(1)),
        )
        assert sorted(attributes_used(condition)) == ["x", "y"]

    def test_collects_from_forall(self):
        condition = ForAllRows(checked_in_condition(), object_type="assy")
        assert attributes_used(condition) == ["checkedout"]

    def test_collects_from_tree_aggregate(self):
        condition = TreeAggregate("AVG", "weight", "<=", Const(12))
        assert attributes_used(condition) == ["weight"]
