"""Configuration rules (paper Section 3.1): pure client-side validation."""

import pytest

from repro.errors import RuleError
from repro.rules.configuration import (
    Configurator,
    ExactlyOneOf,
    Excludes,
    OptionCatalog,
    Requires,
)


@pytest.fixture
def car():
    """The paper's example domain: body styles and features."""
    catalog = OptionCatalog(
        ["sedan", "cabriolet", "sunroof", "trailer_hitch", "v6", "v8"]
    )
    configurator = Configurator(catalog)
    configurator.add_rule(Excludes("cabriolet", "sunroof"))
    configurator.add_rule(Requires("trailer_hitch", "v8"))
    configurator.add_rule(ExactlyOneOf(["sedan", "cabriolet"]))
    configurator.add_rule(ExactlyOneOf(["v6", "v8"]))
    return configurator


class TestOptionCatalog:
    def test_bits_are_distinct_powers_of_two(self):
        catalog = OptionCatalog(["a", "b", "c"])
        bits = [catalog.bit(name) for name in ("a", "b", "c")]
        assert bits == [1, 2, 4]

    def test_duplicate_definition_rejected(self):
        catalog = OptionCatalog(["a"])
        with pytest.raises(RuleError):
            catalog.define("A")  # case-insensitive

    def test_unknown_option_rejected(self):
        with pytest.raises(RuleError):
            OptionCatalog().bit("ghost")

    def test_mask_roundtrip(self):
        catalog = OptionCatalog(["a", "b", "c"])
        mask = catalog.mask_of(["a", "c"])
        assert catalog.names_of(mask) == ["a", "c"]

    def test_capacity_limit(self):
        catalog = OptionCatalog([f"o{i}" for i in range(63)])
        with pytest.raises(RuleError):
            catalog.define("one_too_many")


class TestValidation:
    def test_paper_example_cabriolet_sunroof(self, car):
        """'it is not possible to choose a cabriolet together with a
        sunroof'."""
        violations = car.violations(["cabriolet", "sunroof", "v6"])
        assert any("exclude" in message for message in violations)

    def test_valid_configuration_returns_mask(self, car):
        mask = car.validate(["sedan", "sunroof", "v6"])
        assert mask == car.catalog.mask_of(["sedan", "sunroof", "v6"])

    def test_requires(self, car):
        violations = car.violations(["sedan", "trailer_hitch", "v6"])
        assert any("requires" in message for message in violations)
        assert car.violations(["sedan", "trailer_hitch", "v8"]) == []

    def test_exactly_one_of(self, car):
        assert car.violations(["v6"])  # no body style selected
        assert car.violations(["sedan", "cabriolet", "v6"])  # two of them

    def test_validate_raises_with_all_violations(self, car):
        with pytest.raises(RuleError) as excinfo:
            car.validate(["cabriolet", "sunroof", "trailer_hitch", "v6"])
        message = str(excinfo.value)
        assert "exclude" in message
        assert "requires" in message

    def test_valid_completions(self, car):
        completions = car.valid_completions(["cabriolet", "v6"])
        assert "sunroof" not in completions
        assert "trailer_hitch" not in completions  # would require v8

    def test_no_rules_everything_valid(self):
        configurator = Configurator(OptionCatalog(["a", "b"]))
        assert configurator.violations(["a", "b"]) == []


class TestPDMClientIntegration:
    def test_client_rejects_invalid_configuration(self, small_scenario, car):
        from repro.pdm.operations import PDMClient

        with pytest.raises(RuleError):
            PDMClient(
                small_scenario.connection,
                configurator=car,
                selected_options=["cabriolet", "sunroof", "v6"],
            )
        # Validation happened before any message crossed the WAN.
        assert small_scenario.link.stats.messages == 0

    def test_client_binds_validated_mask(self, small_scenario, car):
        from repro.pdm.operations import PDMClient
        from repro.rules.presets import USER_OPTIONS_VAR

        client = PDMClient(
            small_scenario.connection,
            configurator=car,
            selected_options=["sedan", "v6"],
        )
        assert client.user_env[USER_OPTIONS_VAR] == car.catalog.mask_of(
            ["sedan", "v6"]
        )
