"""Query modificator: Section 5.5 steps A-D on structured query specs."""

import pytest

from repro.errors import QueryModificationError
from repro.pdm.queries import child_fetch_spec, recursive_mle_spec
from repro.rules.conditions import (
    Attribute,
    BoolFunction,
    Comparison,
    Const,
    ExistsStructure,
    ForAllRows,
    TreeAggregate,
    UserVar,
)
from repro.rules.model import Actions, Rule
from repro.rules.modificator import (
    BlockRole,
    ExistsPlacement,
    OpaqueQuery,
    QueryModificator,
)
from repro.rules.ruletable import RuleTable
from repro.sqldb.parser import parse_statement
from repro.sqldb.render import render_select


def modificator_with(*rules, user="scott", user_env=None):
    table = RuleTable(rules)
    return QueryModificator(table, user, user_env or {"user_options": 1})


def rendered(spec):
    sql = render_select(spec.to_statement())
    parse_statement(sql)  # every modification must stay valid SQL
    return sql


class TestStepD_RowConditions:
    def test_row_rule_lands_in_matching_blocks(self):
        rule = Rule(
            user="*",
            action=Actions.ACCESS,
            object_type="assy",
            condition=Comparison("<>", Attribute("make_or_buy"), Const("buy")),
        )
        spec = modificator_with(rule).modify_recursive(
            recursive_mle_spec(), Actions.MULTI_LEVEL_EXPAND
        )
        sql = rendered(spec)
        # Seed and the assy recursive branch carry the predicate; the comp
        # branch does not.
        assert sql.count("assy.make_or_buy <> 'buy'") == 2

    def test_link_rule_lands_inside_and_outside(self):
        rule = Rule(
            user="*",
            action=Actions.ACCESS,
            object_type="link",
            condition=BoolFunction(
                "options_overlap",
                (Attribute("strc_opt"), UserVar("user_options")),
            ),
        )
        spec = modificator_with(rule).modify_recursive(
            recursive_mle_spec(), Actions.MULTI_LEVEL_EXPAND
        )
        sql = rendered(spec)
        # Both recursive branches join link; the outer link select also
        # refers to link: 3 occurrences.
        assert sql.count("options_overlap(link.strc_opt, 1)") == 3

    def test_multiple_row_rules_or_combined(self):
        first = Rule(
            user="*", action=Actions.ACCESS, object_type="assy",
            condition=Comparison("=", Attribute("state"), Const("released")),
        )
        second = Rule(
            user="*", action=Actions.ACCESS, object_type="assy",
            condition=Comparison("=", Attribute("state"), Const("in_work")),
        )
        spec = modificator_with(first, second).modify_recursive(
            recursive_mle_spec(), Actions.MULTI_LEVEL_EXPAND
        )
        sql = rendered(spec)
        assert "OR" in sql
        assert "released" in sql and "in_work" in sql

    def test_irrelevant_user_rule_ignored(self):
        rule = Rule(
            user="mike",
            action=Actions.ACCESS,
            object_type="assy",
            condition=Comparison("=", Attribute("state"), Const("x")),
        )
        spec = modificator_with(rule).modify_recursive(
            recursive_mle_spec(), Actions.MULTI_LEVEL_EXPAND
        )
        assert "state = 'x'" not in rendered(spec)

    def test_navigational_spec_gets_row_rules_only(self):
        row_rule = Rule(
            user="*", action=Actions.ACCESS, object_type="comp",
            condition=Comparison(">", Attribute("weight"), Const(0)),
        )
        tree_rule = Rule(
            user="*", action=Actions.MULTI_LEVEL_EXPAND, object_type="assy",
            condition=ForAllRows(Comparison("=", Attribute("checkedout"), Const(False))),
        )
        modificator = modificator_with(row_rule, tree_rule)
        spec = modificator.modify_navigational(
            child_fetch_spec(), Actions.MULTI_LEVEL_EXPAND
        )
        sql = render_select(spec.to_statement())
        assert "comp.weight > 0" in sql
        assert "NOT EXISTS" not in sql  # tree conditions never go in


class TestStepA_ForAllRows:
    def test_forall_appended_to_outer_selects_only(self):
        rule = Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=ForAllRows(
                Comparison("=", Attribute("dec"), Const("+")), object_type="assy"
            ),
        )
        spec = modificator_with(rule).modify_recursive(
            recursive_mle_spec(), Actions.MULTI_LEVEL_EXPAND
        )
        for block in spec.recursive_blocks:
            assert block.core.where is None  # recursion untouched by step A
        sql = rendered(spec)
        # Two outer selects, each carries the all-or-nothing predicate.
        assert sql.count("NOT EXISTS (SELECT * FROM rtbl") == 2

    def test_forall_rules_for_other_root_type_ignored(self):
        rule = Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="comp",  # tree(comp) — our spec's root is assy
            condition=ForAllRows(Comparison("=", Attribute("dec"), Const("+"))),
        )
        spec = modificator_with(rule).modify_recursive(
            recursive_mle_spec(), Actions.MULTI_LEVEL_EXPAND
        )
        assert "NOT EXISTS" not in rendered(spec)


class TestStepB_TreeAggregates:
    def test_aggregate_appended_to_outer_selects(self):
        rule = Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=TreeAggregate(
                "COUNT", None, "<=", Const(10), object_type="assy"
            ),
        )
        spec = modificator_with(rule).modify_recursive(
            recursive_mle_spec(), Actions.MULTI_LEVEL_EXPAND
        )
        sql = rendered(spec)
        assert sql.count("SELECT COUNT(*) FROM rtbl") == 2


class TestStepC_ExistsStructure:
    def rule(self):
        return Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",  # defined at the root object type...
            condition=ExistsStructure("comp", "specified_by", "spec"),
        )

    def test_inside_placement_modifies_comp_branch(self):
        spec = modificator_with(self.rule()).modify_recursive(
            recursive_mle_spec(),
            Actions.MULTI_LEVEL_EXPAND,
            exists_placement=ExistsPlacement.INSIDE,
        )
        sql = rendered(spec)
        # ... but evaluated at objects of type O = comp (paper remark).
        assert sql.count("EXISTS (SELECT * FROM specified_by") == 1
        comp_branch = [
            block
            for block in spec.recursive_blocks
            if block.object_type == "comp"
        ][0]
        assert comp_branch.core.where is not None

    def test_outside_placement_uses_type_discriminator(self):
        spec = modificator_with(self.rule()).modify_recursive(
            recursive_mle_spec(),
            Actions.MULTI_LEVEL_EXPAND,
            exists_placement=ExistsPlacement.OUTSIDE,
        )
        sql = rendered(spec)
        assert "type <> 'comp'" in sql
        # Probes correlate against the homogenised CTE, not the comp table.
        assert "rtbl.obid" in sql
        # The recursive comp branch stays unmodified.
        comp_branch = [
            block
            for block in spec.recursive_blocks
            if block.object_type == "comp"
        ][0]
        assert comp_branch.core.where is None


class TestOpaqueQueries:
    def test_view_cannot_be_modified(self):
        modificator = modificator_with()
        with pytest.raises(QueryModificationError):
            modificator.modify_recursive(
                OpaqueQuery(sql="SELECT * FROM hidden_view"), Actions.QUERY
            )
        with pytest.raises(QueryModificationError):
            modificator.modify_navigational(
                OpaqueQuery(sql="SELECT * FROM hidden_view"), Actions.QUERY
            )


class TestSpecAssembly:
    def test_unmodified_spec_matches_paper_shape(self):
        sql = render_select(recursive_mle_spec(order_by=True).to_statement())
        assert sql.startswith("WITH RECURSIVE rtbl")
        assert "UNION" in sql
        assert sql.endswith("ORDER BY 1, 2")
        parse_statement(sql)

    def test_all_blocks_listing(self):
        spec = recursive_mle_spec()
        assert len(spec.all_blocks()) == 5  # seed + 2 recursive + 2 outer
        roles = [block.role for block in spec.all_blocks()]
        assert roles.count(BlockRole.RECURSIVE) == 2
