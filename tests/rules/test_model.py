"""Rule 4-tuples: matching semantics (paper Section 3.1, footnote 9)."""

import pytest

from repro.errors import RuleError
from repro.rules.conditions import Attribute, Comparison, Const, ForAllRows
from repro.rules.model import ANY_USER, Actions, Rule


def row_rule(**overrides):
    defaults = dict(
        user="scott",
        action=Actions.MULTI_LEVEL_EXPAND,
        object_type="assy",
        condition=Comparison("<>", Attribute("make_or_buy"), Const("buy")),
    )
    defaults.update(overrides)
    return Rule(**defaults)


class TestMatching:
    def test_exact_match(self):
        rule = row_rule()
        assert rule.matches("scott", Actions.MULTI_LEVEL_EXPAND, "assy")

    def test_other_user_rejected(self):
        assert not row_rule().matches("mike", Actions.MULTI_LEVEL_EXPAND, "assy")

    def test_wildcard_user(self):
        rule = row_rule(user=ANY_USER)
        assert rule.matches("anybody", Actions.MULTI_LEVEL_EXPAND, "assy")

    def test_other_action_rejected(self):
        assert not row_rule().matches("scott", Actions.CHECK_OUT, "assy")

    def test_access_rules_apply_to_every_action(self):
        # Paper 5.5 step D: access rules are folded into any query that
        # touches the type, whatever the user action is.
        rule = row_rule(action=Actions.ACCESS)
        for action in (Actions.QUERY, Actions.EXPAND, Actions.CHECK_OUT):
            assert rule.matches("scott", action, "assy")

    def test_type_match_case_insensitive(self):
        assert row_rule().matches("scott", Actions.MULTI_LEVEL_EXPAND, "ASSY")

    def test_other_type_rejected(self):
        assert not row_rule().matches("scott", Actions.MULTI_LEVEL_EXPAND, "comp")


class TestValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(RuleError):
            row_rule(action="frobnicate")

    def test_empty_user_rejected(self):
        with pytest.raises(RuleError):
            row_rule(user="")

    def test_condition_classified_at_construction(self):
        rule = row_rule()
        assert rule.condition_class.value == "row"

    def test_paper_example_2(self):
        """user *, action check-out, type tree(assembly), all checked in."""
        rule = Rule(
            user=ANY_USER,
            action=Actions.CHECK_OUT,
            object_type="assy",
            condition=ForAllRows(
                Comparison("=", Attribute("checkedout"), Const(False))
            ),
            name="example-2",
        )
        assert rule.condition_class.value == "forall-rows"
        assert "check_out" in rule.describe()
        assert "example-2" in rule.describe()
