"""Client-side rule table: relevance filtering, translation caching."""

import pytest

from repro.rules.conditions import (
    Attribute,
    BoolFunction,
    Comparison,
    ConditionClass,
    Const,
    ExistsStructure,
    ForAllRows,
    TreeAggregate,
    UserVar,
)
from repro.rules.model import Actions, Rule
from repro.rules.ruletable import RuleTable


@pytest.fixture
def table():
    table = RuleTable()
    table.add(
        Rule(
            user="scott",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=Comparison("<>", Attribute("make_or_buy"), Const("buy")),
            name="scott-mle",
        )
    )
    table.add(
        Rule(
            user="*",
            action=Actions.ACCESS,
            object_type="link",
            condition=BoolFunction(
                "options_overlap", (Attribute("strc_opt"), UserVar("user_options"))
            ),
            name="options",
        )
    )
    table.add(
        Rule(
            user="*",
            action=Actions.CHECK_OUT,
            object_type="assy",
            condition=ForAllRows(
                Comparison("=", Attribute("checkedout"), Const(False))
            ),
            name="all-checked-in",
        )
    )
    table.add(
        Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=TreeAggregate("COUNT", None, "<=", Const(10), object_type="assy"),
            name="small-trees-only",
        )
    )
    table.add(
        Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=ExistsStructure("comp", "specified_by", "spec"),
            name="specified-comps",
        )
    )
    return table


class TestRelevance:
    def test_user_and_action_filtering(self, table):
        rules = table.relevant("scott", Actions.MULTI_LEVEL_EXPAND, "assy")
        names = {rule.name for rule in rules}
        assert "scott-mle" in names
        assert "all-checked-in" not in names  # different action

    def test_wildcard_rules_apply_to_everyone(self, table):
        rules = table.relevant("mike", Actions.QUERY, "link")
        assert {rule.name for rule in rules} == {"options"}

    def test_access_rules_included_for_any_action(self, table):
        rules = table.relevant("mike", Actions.CHECK_OUT, "link")
        assert {rule.name for rule in rules} == {"options"}

    def test_condition_class_filter(self, table):
        rows = table.relevant(
            "scott", Actions.MULTI_LEVEL_EXPAND, "assy", ConditionClass.ROW
        )
        assert {rule.name for rule in rows} == {"scott-mle"}
        aggregates = table.relevant(
            "scott",
            Actions.MULTI_LEVEL_EXPAND,
            "assy",
            ConditionClass.TREE_AGGREGATE,
        )
        assert {rule.name for rule in aggregates} == {"small-trees-only"}
        exists = table.relevant(
            "scott",
            Actions.MULTI_LEVEL_EXPAND,
            "assy",
            ConditionClass.EXISTS_STRUCTURE,
        )
        assert {rule.name for rule in exists} == {"specified-comps"}

    def test_remove(self, table):
        rule = next(r for r in table if r.name == "options")
        table.remove(rule)
        assert table.relevant("mike", Actions.QUERY, "link") == []

    def test_len_and_iter(self, table):
        assert len(table) == 5
        assert len(list(table)) == 5

    def test_object_types(self, table):
        assert table.object_types() == ["assy", "link"]


class TestTranslationCache:
    def test_translated_cached_per_user_env(self, table):
        rule = next(r for r in table if r.name == "options")
        env = {"user_options": 1}
        first = table.translated(rule, env)
        second = table.translated(rule, env)
        assert first is second

    def test_different_env_different_translation(self, table):
        rule = next(r for r in table if r.name == "options")
        first = table.translated(rule, {"user_options": 1})
        second = table.translated(rule, {"user_options": 2})
        assert first is not second

    def test_row_rule_sql_text_stored(self, table):
        """The paper stores the translated representation in the rule
        table; check it is available for inspection."""
        rule = next(r for r in table if r.name == "scott-mle")
        translated = table.translated(rule, {})
        assert "make_or_buy" in translated.sql_text

    def test_row_predicate_requalified_per_alias(self, table):
        rule = next(r for r in table if r.name == "scott-mle")
        translated = table.translated(rule, {})
        from repro.sqldb.render import render_expression

        assert "a1.make_or_buy" in render_expression(
            translated.row_predicate("a1")
        )

    def test_wrong_kind_accessors_raise(self, table):
        from repro.errors import RuleError

        rule = next(r for r in table if r.name == "scott-mle")
        translated = table.translated(rule, {})
        with pytest.raises(RuleError):
            translated.forall_predicate("rtbl")
        with pytest.raises(RuleError):
            translated.aggregate_predicate("rtbl")
        with pytest.raises(RuleError):
            translated.exists_predicate("assy")
