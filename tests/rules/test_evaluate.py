"""Late (client-side) rule evaluation — the reference semantics."""

import pytest

from repro.errors import RuleError
from repro.rules.conditions import (
    And,
    Apply,
    Attribute,
    BoolFunction,
    Comparison,
    Const,
    ExistsStructure,
    ForAllRows,
    Not,
    Or,
    TreeAggregate,
    UserVar,
)
from repro.rules.evaluate import (
    EvaluationContext,
    eval_row_condition,
    eval_term,
    exists_structure_holds,
    forall_holds,
    object_permitted,
    tree_aggregate_holds,
)
from repro.rules.model import Actions, Rule


@pytest.fixture
def ctx():
    return EvaluationContext(
        user_env={"user_options": 1, "unit": 5},
        functions={"options_overlap": lambda a, b: (a & b) != 0},
    )


ASSY = {"type": "assy", "obid": 1, "make_or_buy": "make", "weight": 2.0,
        "checkedout": False, "strc_opt": 1}
BOUGHT = {"type": "assy", "obid": 2, "make_or_buy": "buy", "weight": 5.0,
          "checkedout": True, "strc_opt": 2}
COMP = {"type": "comp", "obid": 101, "weight": 0.5, "checkedout": False,
        "strc_opt": 1}


class TestTerms:
    def test_attribute(self, ctx):
        assert eval_term(Attribute("weight"), ASSY, ctx) == 2.0

    def test_missing_attribute_raises(self, ctx):
        with pytest.raises(RuleError):
            eval_term(Attribute("missing"), ASSY, ctx)

    def test_const(self, ctx):
        assert eval_term(Const(7), {}, ctx) == 7

    def test_user_var(self, ctx):
        assert eval_term(UserVar("unit"), {}, ctx) == 5

    def test_missing_user_var_raises(self, ctx):
        with pytest.raises(RuleError):
            eval_term(UserVar("nope"), {}, ctx)

    def test_function_application(self, ctx):
        term = Apply("options_overlap", (Attribute("strc_opt"), Const(3)))
        assert eval_term(term, ASSY, ctx) is True

    def test_unknown_function_raises(self, ctx):
        with pytest.raises(RuleError):
            eval_term(Apply("mystery", ()), {}, ctx)


class TestRowConditions:
    def test_paper_example_1(self, ctx):
        condition = Comparison("<>", Attribute("make_or_buy"), Const("buy"))
        assert eval_row_condition(condition, ASSY, ctx)
        assert not eval_row_condition(condition, BOUGHT, ctx)

    def test_null_comparison_is_false(self, ctx):
        condition = Comparison("=", Attribute("state"), Const("x"))
        assert not eval_row_condition(condition, {"type": "t", "state": None}, ctx)

    def test_boolean_operators(self, ctx):
        both = And(
            Comparison(">", Attribute("weight"), Const(1)),
            Comparison("<", Attribute("weight"), Const(3)),
        )
        assert eval_row_condition(both, ASSY, ctx)
        assert not eval_row_condition(both, BOUGHT, ctx)
        either = Or(
            Comparison("=", Attribute("make_or_buy"), Const("buy")),
            Comparison("=", Attribute("make_or_buy"), Const("make")),
        )
        assert eval_row_condition(either, ASSY, ctx)
        assert eval_row_condition(Not(both), BOUGHT, ctx)

    def test_stored_function_condition(self, ctx):
        condition = BoolFunction(
            "options_overlap", (Attribute("strc_opt"), UserVar("user_options"))
        )
        assert eval_row_condition(condition, ASSY, ctx)
        assert not eval_row_condition(condition, BOUGHT, ctx)

    def test_tree_condition_rejected(self, ctx):
        with pytest.raises(RuleError):
            eval_row_condition(ForAllRows(Comparison("=", Attribute("a"), Const(1))), ASSY, ctx)


class TestObjectPermitted:
    def rule(self, condition, **kw):
        defaults = dict(user="*", action=Actions.ACCESS, object_type="assy")
        defaults.update(kw)
        return Rule(condition=condition, **defaults)

    def test_no_rules_default_permit(self, ctx):
        assert object_permitted([], ASSY, ctx)

    def test_no_rules_strict_mode_denies(self, ctx):
        assert not object_permitted([], ASSY, ctx, default_permit=False)

    def test_single_rule(self, ctx):
        rules = [self.rule(Comparison("<>", Attribute("make_or_buy"), Const("buy")))]
        assert object_permitted(rules, ASSY, ctx)
        assert not object_permitted(rules, BOUGHT, ctx)

    def test_rules_combine_with_or(self, ctx):
        # Paper 4.1: qualifying conditions are connected via OR.
        rules = [
            self.rule(Comparison("=", Attribute("make_or_buy"), Const("lease"))),
            self.rule(Comparison(">", Attribute("weight"), Const(4))),
        ]
        assert object_permitted(rules, BOUGHT, ctx)  # second rule permits
        assert not object_permitted(rules, ASSY, ctx)


class TestTreeConditions:
    def test_forall_all_pass(self, ctx):
        condition = ForAllRows(Comparison("=", Attribute("checkedout"), Const(False)))
        assert forall_holds(condition, [ASSY, COMP], ctx)

    def test_forall_one_violation_fails(self, ctx):
        condition = ForAllRows(Comparison("=", Attribute("checkedout"), Const(False)))
        assert not forall_holds(condition, [ASSY, BOUGHT], ctx)

    def test_forall_type_filter_skips_other_types(self, ctx):
        condition = ForAllRows(
            Comparison("=", Attribute("make_or_buy"), Const("make")),
            object_type="assy",
        )
        # COMP has no make_or_buy check applied because it's filtered by type.
        assert forall_holds(condition, [ASSY, {"type": "comp", "obid": 9}], ctx)

    def test_forall_empty_tree_holds(self, ctx):
        condition = ForAllRows(Comparison("=", Attribute("checkedout"), Const(False)))
        assert forall_holds(condition, [], ctx)

    def test_tree_aggregate_count(self, ctx):
        condition = TreeAggregate("COUNT", None, "<=", Const(2), object_type="assy")
        assert tree_aggregate_holds(condition, [ASSY, BOUGHT, COMP], ctx)
        condition_tight = TreeAggregate("COUNT", None, "<=", Const(1), object_type="assy")
        assert not tree_aggregate_holds(condition_tight, [ASSY, BOUGHT, COMP], ctx)

    def test_tree_aggregate_avg(self, ctx):
        condition = TreeAggregate("AVG", "weight", "<=", Const(3))
        assert tree_aggregate_holds(condition, [ASSY, COMP], ctx)  # avg 1.25
        assert not tree_aggregate_holds(condition, [BOUGHT, BOUGHT], ctx)

    def test_tree_aggregate_sum_min_max(self, ctx):
        nodes = [ASSY, BOUGHT, COMP]
        assert tree_aggregate_holds(TreeAggregate("SUM", "weight", ">", Const(7)), nodes, ctx)
        assert tree_aggregate_holds(TreeAggregate("MIN", "weight", "=", Const(0.5)), nodes, ctx)
        assert tree_aggregate_holds(TreeAggregate("MAX", "weight", "=", Const(5.0)), nodes, ctx)

    def test_aggregate_over_empty_set_fails(self, ctx):
        condition = TreeAggregate("AVG", "weight", "<=", Const(100))
        assert not tree_aggregate_holds(condition, [], ctx)

    def test_exists_structure_uses_resolver(self):
        related_calls = []

        def related(obid, relation, target):
            related_calls.append((obid, relation, target))
            return obid == 101

        ctx = EvaluationContext(related=related)
        condition = ExistsStructure("comp", "specified_by", "spec")
        assert exists_structure_holds(condition, COMP, ctx)
        assert not exists_structure_holds(condition, {"obid": 999}, ctx)
        assert related_calls[0] == (101, "specified_by", "spec")

    def test_exists_structure_without_resolver_raises(self, ctx):
        condition = ExistsStructure("comp", "specified_by", "spec")
        with pytest.raises(RuleError):
            exists_structure_holds(condition, COMP, ctx)
