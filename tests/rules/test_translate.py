"""Condition → SQL translation (paper Sections 4.1 and 5.3)."""

import pytest

from repro.errors import ConditionTranslationError
from repro.rules.conditions import (
    And,
    Apply,
    Attribute,
    BoolFunction,
    Comparison,
    Const,
    ExistsStructure,
    ForAllRows,
    Not,
    Or,
    TreeAggregate,
    UserVar,
)
from repro.rules.translate import (
    and_append,
    disjunction,
    translate_exists_structure,
    translate_forall,
    translate_row_condition,
    translate_tree_aggregate,
)
from repro.sqldb.parser import parse_expression
from repro.sqldb.render import render_expression


def sql_of(expr):
    return render_expression(expr)


class TestRowConditions:
    def test_paper_example_1(self):
        """assembly.make_or_buy <> 'buy' (Section 4.1)."""
        condition = Comparison("<>", Attribute("make_or_buy"), Const("buy"))
        sql = sql_of(translate_row_condition(condition, "assembly", {}))
        assert sql == "(assembly.make_or_buy <> 'buy')"

    def test_unqualified_attribute(self):
        condition = Comparison("=", Attribute("dec"), Const("+"))
        assert sql_of(translate_row_condition(condition, None, {})) == "(dec = '+')"

    def test_user_var_bound_to_literal(self):
        condition = Comparison(">=", Attribute("eff_to"), UserVar("unit"))
        sql = sql_of(translate_row_condition(condition, "link", {"unit": 7}))
        assert sql == "(link.eff_to >= 7)"

    def test_missing_user_var_raises(self):
        condition = Comparison("=", Attribute("a"), UserVar("missing"))
        with pytest.raises(ConditionTranslationError):
            translate_row_condition(condition, None, {})

    def test_function_condition(self):
        condition = BoolFunction(
            "options_overlap", (Attribute("strc_opt"), UserVar("user_options"))
        )
        sql = sql_of(translate_row_condition(condition, "link", {"user_options": 3}))
        assert sql == "options_overlap(link.strc_opt, 3)"

    def test_nested_function_term(self):
        condition = Comparison(
            ">", Apply("weight_of", (Attribute("obid"),)), Const(10)
        )
        sql = sql_of(translate_row_condition(condition, "assy", {}))
        assert sql == "(weight_of(assy.obid) > 10)"

    def test_boolean_combinations(self):
        condition = Or(
            Not(Comparison("=", Attribute("a"), Const(1))),
            And(
                Comparison("<", Attribute("b"), Const(2)),
                Comparison(">", Attribute("c"), Const(3)),
            ),
        )
        sql = sql_of(translate_row_condition(condition, "t", {}))
        assert sql == "((NOT ((t.a = 1))) OR ((t.b < 2) AND (t.c > 3)))"

    def test_tree_condition_rejected(self):
        with pytest.raises(ConditionTranslationError):
            translate_row_condition(
                ForAllRows(Comparison("=", Attribute("a"), Const(1))), None, {}
            )

    def test_translation_parses_as_sql(self):
        condition = And(
            Comparison("<>", Attribute("state"), Const("frozen")),
            BoolFunction("options_overlap", (Attribute("strc_opt"), Const(1))),
        )
        sql = sql_of(translate_row_condition(condition, "assy", {}))
        parse_expression(sql)  # must be valid SQL


class TestForAllRows:
    def test_all_or_nothing_shape(self):
        """Paper 5.3.1: NOT EXISTS (SELECT * FROM rtbl WHERE NOT row_cond)."""
        condition = ForAllRows(
            Comparison("=", Attribute("dec"), Const("+")), object_type="assy"
        )
        sql = sql_of(translate_forall(condition, "rtbl", {}))
        assert sql.startswith("NOT EXISTS (SELECT * FROM rtbl WHERE")
        assert "type = 'assy'" in sql
        assert "NOT ((dec = '+'))" in sql

    def test_untyped_forall_has_no_type_guard(self):
        condition = ForAllRows(Comparison("=", Attribute("checkedout"), Const(False)))
        sql = sql_of(translate_forall(condition, "rtbl", {}))
        assert "type =" not in sql

    def test_forall_parses(self):
        condition = ForAllRows(
            Comparison("=", Attribute("checkedout"), Const(False))
        )
        parse_expression(sql_of(translate_forall(condition, "rtbl", {})))


class TestTreeAggregate:
    def test_count_shape(self):
        """Paper 5.3.3: (SELECT COUNT(*) FROM rtbl WHERE type='assy') <= 10."""
        condition = TreeAggregate("COUNT", None, "<=", Const(10), object_type="assy")
        sql = sql_of(translate_tree_aggregate(condition, "rtbl", {}))
        assert sql == (
            "((SELECT COUNT(*) FROM rtbl WHERE (type = 'assy')) <= 10)"
        )

    def test_avg_with_attribute(self):
        condition = TreeAggregate("AVG", "weight", "<=", Const(12))
        sql = sql_of(translate_tree_aggregate(condition, "rtbl", {}))
        assert sql == "((SELECT AVG(weight) FROM rtbl) <= 12)"

    def test_threshold_user_var(self):
        condition = TreeAggregate(
            "COUNT", None, "<=", UserVar("max_nodes"), object_type="assy"
        )
        sql = sql_of(translate_tree_aggregate(condition, "rtbl", {"max_nodes": 50}))
        assert sql.endswith("<= 50)")


class TestExistsStructure:
    def test_paper_5_3_2_shape(self):
        condition = ExistsStructure(
            object_type="comp", relation_table="specified_by", related_table="spec"
        )
        sql = sql_of(translate_exists_structure(condition, "comp"))
        assert sql == (
            "EXISTS (SELECT * FROM specified_by AS rel_probe JOIN spec "
            "ON (rel_probe.right = spec.obid) "
            "WHERE (rel_probe.left = comp.obid))"
        )

    def test_custom_columns(self):
        condition = ExistsStructure(
            object_type="assy",
            relation_table="approved_by",
            related_table="engineer",
            left_column="subject",
            right_column="approver",
            related_id_column="id",
        )
        sql = sql_of(translate_exists_structure(condition, "a"))
        assert "approved_by" in sql
        assert "rel_probe.approver = engineer.id" in sql
        assert "rel_probe.subject = a.obid" in sql


class TestCombinators:
    def test_disjunction_of_one(self):
        predicate = parse_expression("a = 1")
        assert disjunction([predicate]) is predicate

    def test_disjunction_of_three(self):
        predicates = [parse_expression(f"a = {i}") for i in range(3)]
        sql = sql_of(disjunction(predicates))
        assert sql == "(((a = 0) OR (a = 1)) OR (a = 2))"

    def test_empty_disjunction_rejected(self):
        with pytest.raises(ConditionTranslationError):
            disjunction([])

    def test_and_append_to_existing(self):
        where = parse_expression("x > 0")
        combined = and_append(where, parse_expression("y < 1"))
        assert sql_of(combined) == "((x > 0) AND (y < 1))"

    def test_and_append_to_none_starts_clause(self):
        predicate = parse_expression("y < 1")
        assert and_append(None, predicate) is predicate
