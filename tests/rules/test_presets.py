"""Rule presets and the effectivity workflow on the paper's Figure 2 data."""

import pytest

from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import WAN_512
from repro.pdm.generator import figure2_dataset
from repro.pdm.operations import ExpandStrategy, PDMClient
from repro.rules.model import Actions
from repro.rules.presets import (
    EFFECTIVITY_UNIT_VAR,
    checkout_all_checked_in_rule,
    effectivity_rule,
    make_not_buy_rule,
    structure_option_rules,
)
from repro.rules.ruletable import RuleTable


class TestPresetShapes:
    def test_structure_option_rules_cover_types(self):
        rules = structure_option_rules()
        assert [rule.object_type for rule in rules] == ["assy", "comp", "link"]
        assert all(rule.action == Actions.ACCESS for rule in rules)

    def test_effectivity_rule_targets_links(self):
        rule = effectivity_rule()
        assert rule.object_type == "link"
        assert rule.condition.function == "is_effective"

    def test_checkout_rule_is_forall(self):
        assert checkout_all_checked_in_rule().condition_class.value == "forall-rows"

    def test_example1_rule(self):
        rule = make_not_buy_rule()
        assert rule.user == "scott"
        assert rule.action == Actions.MULTI_LEVEL_EXPAND


@pytest.fixture
def effectivity_scenario():
    """Figure 2 behind a WAN with only the effectivity rule installed."""
    table = RuleTable([effectivity_rule()])
    return build_scenario(
        TreeParameters(depth=2, branching=2, visibility=1.0),
        WAN_512,
        product=figure2_dataset(),
        rule_table=table,
    )


class TestEffectivityWorkflow:
    """Figure 2's printed effectivities: link 1001 (1-3), 1002 (4-10),
    1003/1004 (1-10), 1005 (6-10), 1006 (1-5), 1007/1008 (1-10)."""

    def expand(self, scenario, unit, strategy):
        client = PDMClient(
            scenario.connection,
            rule_table=scenario.rule_table,
            user="scott",
            user_env={EFFECTIVITY_UNIT_VAR: unit},
        )
        return client.multi_level_expand(
            1, strategy, root_attrs=scenario.product.root_attributes()
        ).tree

    @pytest.mark.parametrize(
        "strategy",
        [ExpandStrategy.NAVIGATIONAL_LATE, ExpandStrategy.RECURSIVE_EARLY],
    )
    def test_unit_2_excludes_late_branch(self, effectivity_scenario, strategy):
        """At unit 2, link 1002 (eff 4-10) is not yet effective: Assy3 is
        absent; link 1005 (6-10) hides Comp1."""
        tree = self.expand(effectivity_scenario, 2, strategy)
        obids = tree.obids()
        assert 3 not in obids
        assert 101 not in obids
        assert {1, 2, 4, 5, 102, 103, 104} <= obids

    @pytest.mark.parametrize(
        "strategy",
        [ExpandStrategy.NAVIGATIONAL_LATE, ExpandStrategy.RECURSIVE_EARLY],
    )
    def test_unit_7_excludes_early_links(self, effectivity_scenario, strategy):
        """At unit 7, link 1001 (1-3) has expired: the whole subtree of
        Assy2 disappears; link 1006 (1-5) hides Comp2."""
        tree = self.expand(effectivity_scenario, 7, strategy)
        obids = tree.obids()
        assert {2, 4, 5, 102, 103, 104}.isdisjoint(obids)
        assert 3 in obids
        assert 101 not in obids  # only reachable through Assy2's subtree

    def test_strategies_agree_across_units(self, effectivity_scenario):
        from repro.pdm.structure import trees_equal

        for unit in (1, 3, 4, 6, 9, 11):
            late = self.expand(
                effectivity_scenario, unit, ExpandStrategy.NAVIGATIONAL_LATE
            )
            recursive = self.expand(
                effectivity_scenario, unit, ExpandStrategy.RECURSIVE_EARLY
            )
            assert trees_equal(late, recursive), f"unit {unit}"

    def test_effectivity_prunes_traversal_bytes(self, effectivity_scenario):
        """Early evaluation of the effectivity ships fewer on-wire bytes
        than the late variant for the same restricted view.  (Payload
        bytes can actually be *larger* for early evaluation — the injected
        predicates lengthen the query text — but under the paper's
        packet accounting a request occupies whole packets either way,
        while the response shrinks.)"""
        client = PDMClient(
            effectivity_scenario.connection,
            rule_table=effectivity_scenario.rule_table,
            user="scott",
            user_env={EFFECTIVITY_UNIT_VAR: 7},
        )
        root_attrs = effectivity_scenario.product.root_attributes()
        late = client.multi_level_expand(
            1, ExpandStrategy.NAVIGATIONAL_LATE, root_attrs=root_attrs
        )
        early = client.multi_level_expand(
            1, ExpandStrategy.NAVIGATIONAL_EARLY, root_attrs=root_attrs
        )
        assert early.traffic.wire_bytes <= late.traffic.wire_bytes
