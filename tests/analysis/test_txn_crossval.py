"""Soundness on corpus: every deadlock the ContentionSim actually
produces on the workload scripts must be predicted statically by C001,
and the analyzer must never execute anything while predicting."""

import pytest

from repro.analysis.txn import (
    analyze_transaction_workload,
    parse_txn_script,
)
from repro.concurrency import ContentionConfig, ContentionSim
from repro.concurrency.sim import workload_scripts

#: Seeds known (and asserted below) to produce at least one deadlock at
#: this contention level — the cross-validation must not be vacuous.
SEEDS = (0, 1, 7, 42)

CONFIG = dict(clients=4, ops_per_client=8, conflict_rate=0.7)


def predicted_cycles():
    scripts = [
        parse_txn_script(name, text, sequenced=sequenced)
        for name, text, sequenced in workload_scripts()
    ]
    report = analyze_transaction_workload(scripts)
    return report.cycles


class TestSimVsStatic:
    @pytest.fixture(scope="class")
    def predictions(self):
        cycles = predicted_cycles()
        assert cycles, "the static analyzer predicted no deadlocks at all"
        return cycles

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_observed_deadlock_is_predicted(self, predictions, seed):
        sim = ContentionSim(ContentionConfig(seed=seed, **CONFIG))
        report = sim.run()
        observed = sim.locks.deadlock_cycles
        assert len(observed) == report["totals"]["deadlock_aborts"]
        for cycle_tables in observed:
            assert any(
                set(cycle_tables) <= set(prediction.tables)
                for prediction in predictions
            ), (
                f"seed {seed}: simulator deadlocked on tables "
                f"{cycle_tables} but no C001 prediction covers them "
                f"(predicted: {[p.tables for p in predictions]})"
            )

    def test_cross_validation_is_not_vacuous(self):
        total = 0
        for seed in SEEDS:
            sim = ContentionSim(ContentionConfig(seed=seed, **CONFIG))
            sim.run()
            total += len(sim.locks.deadlock_cycles)
        assert total > 0, (
            "no seed produced a deadlock — the soundness check tests nothing"
        )

    def test_self_pair_increment_is_predicted(self, predictions):
        # The known contended shape: two concurrent increment scripts.
        assert any(
            prediction.scripts == ("increment", "increment")
            and prediction.tables == ("counters",)
            for prediction in predictions
        )


class TestStaticness:
    """Analyzing scripts must leave the database byte-identical."""

    def snapshot(self, database):
        state = {}
        for name in sorted(database.catalog.table_names()):
            result = database.execute(f"SELECT * FROM {name}")
            state[name] = (tuple(result.columns), tuple(map(tuple, result.rows)))
        return state

    def test_workload_analysis_mutates_nothing(self):
        from repro.sqldb import Database

        database = Database()
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        database.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        before = self.snapshot(database)
        rows_before = dict(database.statistics)

        scripts = [
            parse_txn_script(
                "mutator",
                "BEGIN; DELETE FROM t WHERE id = 1; "
                "UPDATE t SET v = v + 1 WHERE id = 2; COMMIT",
                database=database,
            ),
            parse_txn_script(
                "ddl", "DROP TABLE t; SELECT 1 FROM t", database=database
            ),
        ]
        report = analyze_transaction_workload(scripts, database=database)
        assert report.findings  # it did analyze something

        assert self.snapshot(database) == before
        after = dict(database.statistics)
        # The snapshot SELECTs themselves count statements; everything
        # that tracks mutations must be untouched.
        for key in ("rows_inserted", "rows_updated", "rows_deleted"):
            if key in rows_before:
                assert after[key] == rows_before[key]
