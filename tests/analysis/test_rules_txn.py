"""Transaction-script C-rules: one triggering and one deliberately
similar non-triggering case per rule, the script model, and the proof
that the static footprint matches what the runtime actually acquires."""

import pytest

from repro.analysis import Severity
from repro.analysis.txn import (
    analyze_transaction_sql,
    analyze_transaction_workload,
    parse_txn_script,
    script_is_sequenced,
)
from repro.concurrency.footprint import (
    Granularity,
    LockRequest,
    may_conflict,
    may_overlap,
)
from repro.concurrency.locks import LockManager, LockMode
from repro.sqldb import Database

S = LockMode.SHARED
X = LockMode.EXCLUSIVE

SCHEMA = [
    "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)",
    "CREATE TABLE u (id INTEGER PRIMARY KEY, v INTEGER)",
    "CREATE TABLE nokey (v INTEGER)",
    "INSERT INTO t VALUES (1, 10), (2, 20)",
    "INSERT INTO u VALUES (1, 10), (2, 20)",
]


@pytest.fixture
def db():
    database = Database()
    for statement in SCHEMA:
        database.execute(statement)
    return database


def rule_ids(findings):
    return {finding.rule_id for finding in findings}


def find(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


class TestScriptModel:
    def test_explicit_segment_spans_begin_to_commit(self):
        script = parse_txn_script(
            "s",
            "BEGIN; UPDATE t SET v = 1 WHERE id = 1; COMMIT;"
            " SELECT v FROM t",
        )
        explicit, autocommit = script.segments
        assert explicit.explicit and explicit.committed
        assert [s.index for s in explicit.statements] == [1]
        assert explicit.end == 2
        assert not autocommit.explicit
        assert [s.index for s in autocommit.statements] == [3]

    def test_unterminated_transaction_has_no_end(self):
        script = parse_txn_script("s", "BEGIN; UPDATE t SET v = 1 WHERE id = 1")
        (segment,) = script.segments
        assert segment.explicit
        assert segment.end is None and not segment.committed

    def test_rollback_terminates_uncommitted(self):
        script = parse_txn_script(
            "s", "BEGIN; UPDATE t SET v = 1 WHERE id = 1; ROLLBACK"
        )
        (segment,) = script.segments
        assert segment.explicit and not segment.committed
        assert segment.end == 2

    def test_pragma_marks_script_sequenced(self):
        text = "-- pragma: sequenced\nUPDATE t SET v = v + 1 WHERE id = 1"
        assert script_is_sequenced(text)
        assert parse_txn_script("s", text).sequenced

    def test_pragma_only_counts_in_comments(self):
        assert not script_is_sequenced("SELECT v FROM t")
        # The flag can be forced regardless of the text.
        script = parse_txn_script("s", "SELECT v FROM t", sequenced=True)
        assert script.sequenced


class TestFootprintMatchesRuntime:
    """The static model and the runtime share one acquisition policy:
    every lock the engine actually holds inside a transaction maps onto
    a static request of the same table, mode, and granularity."""

    def locked_db(self):
        database = Database()
        for statement in SCHEMA:
            database.execute(statement)
        manager = LockManager()
        database.attach_lock_manager(manager)
        return database, manager

    def assert_held_covered(self, held, footprint):
        assert held, "statement acquired no locks"
        for (table, row_id), mode in held:
            granularity = (
                Granularity.TABLE if row_id is None else Granularity.ROWS
            )
            matches = [
                request
                for request in footprint
                if request.table == table
                and request.mode is mode
                and request.granularity is granularity
            ]
            assert matches, (
                f"runtime holds {mode.value} on {(table, row_id)} with no "
                f"matching static request in {footprint}"
            )

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT v FROM t WHERE id = 1",
            "INSERT INTO t VALUES (3, 30)",
            "UPDATE t SET v = 5 WHERE id = 1",
            "DELETE FROM u WHERE id = 2",
            "UPDATE t SET v = 0",
            "INSERT INTO u SELECT id + 10, v FROM t",
        ],
    )
    def test_static_footprint_covers_runtime_locks(self, sql):
        database, manager = self.locked_db()
        script = parse_txn_script("s", sql, database=database)
        (stmt,) = script.statements
        txn_id = database.begin()
        database.execute(sql)
        self.assert_held_covered(manager.locks_held(txn_id), stmt.footprint)
        database.rollback()


class TestMayConflict:
    def test_disjoint_literal_keys_do_not_overlap(self):
        a = LockRequest("t", X, Granularity.ROWS, key_column="id", keys=(1,))
        b = LockRequest("t", X, Granularity.ROWS, key_column="id", keys=(2,))
        assert not may_overlap(a, b)
        assert not may_conflict(a, b)

    def test_unbounded_rows_overlap_everything_on_the_table(self):
        bounded = LockRequest(
            "t", X, Granularity.ROWS, key_column="id", keys=(1,)
        )
        unbounded = LockRequest("t", X, Granularity.ROWS)
        assert may_conflict(bounded, unbounded)

    def test_shared_requests_never_conflict(self):
        a = LockRequest("t", S, Granularity.TABLE)
        b = LockRequest("t", S, Granularity.TABLE)
        assert may_overlap(a, b) and not may_conflict(a, b)

    def test_different_tables_never_overlap(self):
        a = LockRequest("t", X, Granularity.TABLE)
        b = LockRequest("u", X, Granularity.TABLE)
        assert not may_overlap(a, b)


class TestC001Inversion:
    def increments(self, order):
        updates = ";\n".join(
            f"UPDATE t SET v = 1 WHERE id = {key}" for key in order
        )
        return f"BEGIN;\n{updates};\nCOMMIT"

    def test_opposite_key_order_triggers(self):
        first = parse_txn_script("ab", self.increments([1, 2]))
        second = parse_txn_script("ba", self.increments([2, 1]))
        report = analyze_transaction_workload([first, second])
        findings = find(report.findings, "C001")
        assert findings and all(
            f.severity is Severity.WARNING for f in findings
        )
        assert any(
            set(cycle.scripts) == {"ab", "ba"} and cycle.tables == ("t",)
            for cycle in report.cycles
        )

    def test_same_key_order_is_clean(self):
        first = parse_txn_script("one", self.increments([1, 2]))
        second = parse_txn_script("two", self.increments([1, 2]))
        report = analyze_transaction_workload([first, second])
        assert not find(report.findings, "C001")
        assert not report.cycles

    def test_unbounded_self_pair_triggers(self):
        # Parameters are unbounded: two concurrent instances may collide
        # on the same rows in either order.
        sql = (
            "-- pragma: sequenced\n"
            "BEGIN;\n"
            "UPDATE t SET v = v + 1 WHERE id = ?;\n"
            "UPDATE t SET v = v + 1 WHERE id = ?;\n"
            "COMMIT"
        )
        findings = analyze_transaction_sql(sql)
        (finding,) = find(findings, "C001")
        assert "two concurrent instances" in finding.message
        assert finding.node_path == "pair[script,script]"

    def test_autocommit_statements_cannot_deadlock(self):
        # The same two updates without BEGIN..COMMIT: autocommit acquires
        # non-parking (fail fast), so no hold-and-wait is possible.
        sql = (
            "-- pragma: sequenced\n"
            "UPDATE t SET v = v + 1 WHERE id = ?;\n"
            "UPDATE t SET v = v + 1 WHERE id = ?"
        )
        assert not find(analyze_transaction_sql(sql), "C001")

    def test_coheld_table_locks_are_not_an_inversion(self):
        # Two instances both INSERT into t first: the two table-X locks
        # can never be held at once, so no cycle can start there.
        sql = (
            "-- pragma: sequenced\n"
            "BEGIN;\n"
            "INSERT INTO t VALUES (3, 30);\n"
            "INSERT INTO t VALUES (4, 40);\n"
            "COMMIT"
        )
        assert not find(analyze_transaction_sql(sql), "C001")

    def test_opposite_table_order_inserts_trigger(self):
        first = parse_txn_script(
            "tu",
            "BEGIN; INSERT INTO t VALUES (3, 1); "
            "INSERT INTO u VALUES (3, 1); COMMIT",
            sequenced=True,
        )
        second = parse_txn_script(
            "ut",
            "BEGIN; INSERT INTO u VALUES (4, 1); "
            "INSERT INTO t VALUES (4, 1); COMMIT",
            sequenced=True,
        )
        report = analyze_transaction_workload([first, second])
        findings = find(report.findings, "C001")
        assert any("tu" in f.node_path and "ut" in f.node_path for f in findings)
        assert any(cycle.tables == ("t", "u") for cycle in report.cycles)


class TestC002Idempotence:
    def test_self_referential_update_triggers(self):
        findings = analyze_transaction_sql("UPDATE t SET v = v + 1 WHERE id = 1")
        (finding,) = find(findings, "C002")
        assert finding.severity is Severity.ERROR
        assert "non-idempotent UPDATE" in finding.message

    def test_constant_update_is_clean(self):
        findings = analyze_transaction_sql("UPDATE t SET v = 5 WHERE id = 1")
        assert not find(findings, "C002")

    def test_reading_an_unassigned_column_is_clean(self):
        findings = analyze_transaction_sql("UPDATE t SET v = id + 1 WHERE id = 1")
        assert not find(findings, "C002")

    def test_sequenced_pragma_suppresses(self):
        findings = analyze_transaction_sql(
            "-- pragma: sequenced\nUPDATE t SET v = v + 1 WHERE id = 1"
        )
        assert not find(findings, "C002")

    def test_insert_into_keyless_table_triggers(self, db):
        findings = analyze_transaction_sql(
            "INSERT INTO nokey VALUES (1)", database=db
        )
        (finding,) = find(findings, "C002")
        assert "no primary key" in finding.message

    def test_insert_omitting_the_key_triggers(self, db):
        findings = analyze_transaction_sql(
            "INSERT INTO t (v) VALUES (1)", database=db
        )
        (finding,) = find(findings, "C002")
        assert "omits the primary key" in finding.message

    def test_keyed_insert_is_clean(self, db):
        findings = analyze_transaction_sql(
            "INSERT INTO t VALUES (9, 1)", database=db
        )
        assert not find(findings, "C002")

    def test_insert_without_catalog_gets_benefit_of_the_doubt(self):
        findings = analyze_transaction_sql("INSERT INTO nokey VALUES (1)")
        assert not find(findings, "C002")


class TestC003HeldRoundTrips:
    def test_early_x_lock_triggers_with_wan_cost(self):
        findings = analyze_transaction_sql(
            "-- pragma: sequenced\n"
            "BEGIN; UPDATE t SET v = 1 WHERE id = 1; "
            "SELECT v FROM u WHERE id = 1; COMMIT"
        )
        (finding,) = find(findings, "C003")
        assert finding.severity is Severity.WARNING
        assert "2 further client round trips" in finding.message
        assert "~0.6 s" in finding.message

    def test_late_x_lock_is_clean(self):
        findings = analyze_transaction_sql(
            "-- pragma: sequenced\n"
            "BEGIN; SELECT v FROM u WHERE id = 1; "
            "UPDATE t SET v = 1 WHERE id = 1; COMMIT"
        )
        assert not find(findings, "C003")

    def test_autocommit_holds_nothing_across_trips(self):
        findings = analyze_transaction_sql(
            "-- pragma: sequenced\n"
            "UPDATE t SET v = 1 WHERE id = 1;\n"
            "SELECT v FROM u WHERE id = 1;\n"
            "SELECT v FROM u WHERE id = 2"
        )
        assert not find(findings, "C003")


class TestC004Escalation:
    LONG_TAIL = (
        "SELECT v FROM t WHERE id = 1; "
        "SELECT v FROM t WHERE id = 2; "
        "SELECT v FROM u WHERE id = 1; "
    )

    def test_table_x_in_long_transaction_triggers(self):
        findings = analyze_transaction_sql(
            "-- pragma: sequenced\n"
            f"BEGIN; {self.LONG_TAIL} INSERT INTO u VALUES (9, 1); COMMIT"
        )
        (finding,) = find(findings, "C004")
        assert finding.severity is Severity.WARNING
        assert "4-statement" in finding.message

    def test_whole_table_update_in_long_transaction_triggers(self):
        findings = analyze_transaction_sql(
            "-- pragma: sequenced\n"
            f"BEGIN; {self.LONG_TAIL} UPDATE u SET v = 0; COMMIT"
        )
        assert find(findings, "C004")

    def test_short_transaction_is_clean(self):
        findings = analyze_transaction_sql(
            "-- pragma: sequenced\n"
            "BEGIN; SELECT v FROM t WHERE id = 1; "
            "INSERT INTO u VALUES (9, 1); COMMIT"
        )
        assert not find(findings, "C004")

    def test_long_row_level_transaction_is_clean(self):
        findings = analyze_transaction_sql(
            "-- pragma: sequenced\n"
            f"BEGIN; {self.LONG_TAIL} UPDATE u SET v = 0 WHERE id = 1; COMMIT"
        )
        assert not find(findings, "C004")


class TestC005Ddl:
    def test_ddl_inside_transaction_is_error(self):
        findings = analyze_transaction_sql(
            "BEGIN; CREATE TABLE w (id INTEGER PRIMARY KEY); COMMIT"
        )
        (finding,) = find(findings, "C005")
        assert finding.severity is Severity.ERROR

    def test_ddl_mixed_into_script_is_warning(self):
        findings = analyze_transaction_sql(
            "CREATE INDEX t_v ON t (v); SELECT v FROM t WHERE id = 1"
        )
        (finding,) = find(findings, "C005")
        assert finding.severity is Severity.WARNING

    def test_lone_ddl_script_is_clean(self):
        findings = analyze_transaction_sql(
            "CREATE TABLE w (id INTEGER PRIMARY KEY)"
        )
        assert not find(findings, "C005")


class TestC006UndeclaredReadOnly:
    def test_multi_select_script_without_declaration_warns(self):
        findings = analyze_transaction_sql(
            "SELECT v FROM t WHERE id = 1; SELECT COUNT(*) FROM u"
        )
        (finding,) = find(findings, "C006")
        assert finding.severity is Severity.WARNING
        assert "READ ONLY" in finding.message
        assert finding.node_path == "stmt[0]"

    def test_declared_read_only_is_clean(self):
        findings = analyze_transaction_sql(
            "BEGIN TRANSACTION READ ONLY;"
            " SELECT v FROM t WHERE id = 1;"
            " SELECT COUNT(*) FROM u;"
            " COMMIT"
        )
        assert not find(findings, "C006")

    def test_selects_in_a_plain_transaction_still_warn(self):
        findings = analyze_transaction_sql(
            "BEGIN; SELECT v FROM t WHERE id = 1;"
            " SELECT COUNT(*) FROM u; COMMIT"
        )
        (finding,) = find(findings, "C006")
        assert finding.severity is Severity.WARNING

    def test_single_select_is_clean(self):
        findings = analyze_transaction_sql("SELECT v FROM t WHERE id = 1")
        assert not find(findings, "C006")

    def test_any_dml_makes_the_script_exempt(self):
        findings = analyze_transaction_sql(
            "SELECT v FROM t WHERE id = 1;"
            " UPDATE u SET v = 1 WHERE id = 1"
        )
        assert not find(findings, "C006")

    def test_message_names_the_lock_footprint(self):
        findings = analyze_transaction_sql(
            "SELECT v FROM t WHERE id = 1; SELECT COUNT(*) FROM u"
        )
        (finding,) = find(findings, "C006")
        assert "S on table 't'" in finding.message
        assert "S on table 'u'" in finding.message


class TestWorkloadReport:
    def test_script_findings_carry_script_prefix(self):
        script = parse_txn_script("inc", "UPDATE t SET v = v + 1 WHERE id = 1")
        report = analyze_transaction_workload([script])
        (finding,) = find(report.findings, "C002")
        assert finding.node_path.startswith("script[inc].")

    def test_conflict_edges_are_deduplicated_and_sorted(self):
        reader = parse_txn_script("read", "SELECT v FROM t WHERE id = 1")
        writer = parse_txn_script(
            "write", "UPDATE t SET v = 1 WHERE id = 1", sequenced=True
        )
        report = analyze_transaction_workload([reader, writer])
        assert ("read", "write", "t") in report.conflict_edges
        assert report.conflict_edges == sorted(set(report.conflict_edges))

    def test_base_rules_run_per_statement(self):
        # The single-statement analyzer still applies inside scripts.
        script = parse_txn_script(
            "inlist",
            "SELECT v FROM t WHERE id IN (?, ?, ?)",
            sequenced=True,
        )
        report = analyze_transaction_workload([script])
        (finding,) = find(report.findings, "P003")
        assert finding.node_path.startswith("script[inlist].stmt[0].")


class TestLintTransactionStatement:
    def test_returns_findings_as_rows(self, db):
        result = db.execute(
            "LINT TRANSACTION 'UPDATE t SET v = v + 1 WHERE id = 1'"
        )
        assert result.columns == ["rule_id", "severity", "message", "node_path"]
        assert "C002" in [row[0] for row in result.rows]

    def test_never_executes_the_script(self, db):
        before = db.execute("SELECT id, v FROM t ORDER BY id").rows
        db.execute("LINT TRANSACTION 'UPDATE t SET v = v + 1 WHERE id = 1'")
        db.execute(
            "LINT TRANSACTION 'BEGIN; DELETE FROM t WHERE id = 1; COMMIT'"
        )
        assert db.execute("SELECT id, v FROM t ORDER BY id").rows == before

    def test_renders_and_reparses(self):
        from repro.sqldb.parser import parse_statement
        from repro.sqldb.render import render_statement

        statement = parse_statement(
            "LINT TRANSACTION 'SELECT ''quoted'' FROM t'"
        )
        assert parse_statement(render_statement(statement)) == statement
