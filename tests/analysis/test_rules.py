"""Per-rule coverage: one triggering and one deliberately-similar
non-triggering case for every rule_id in the catalog."""

import pytest

from repro.analysis import RULE_CATALOG, Severity, analyze_sql
from repro.sqldb import Database


@pytest.fixture(scope="module")
def pdm_db():
    from repro.pdm.schema import new_pdm_database

    return new_pdm_database()


def rule_ids(findings):
    return {finding.rule_id for finding in findings}


def find(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


class TestRecursionRules:
    def test_r001_nonlinear_triggers(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
            "  JOIN r r2 ON r2.obid = l.right"
            ") SELECT obid FROM r"
        )
        (finding,) = find(findings, "R001")
        assert finding.severity is Severity.ERROR
        assert "cte[r].branch[1]" in finding.node_path

    def test_r001_linear_is_clean(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
            ") SELECT obid FROM r"
        )
        assert "R001" not in rule_ids(findings)

    def test_r002_set_operator_triggers(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  EXCEPT SELECT obid FROM r"
            ") SELECT obid FROM r"
        )
        (finding,) = find(findings, "R002")
        assert finding.severity is Severity.ERROR
        assert "EXCEPT" in finding.message

    def test_r002_aggregate_in_recursive_branch_triggers(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT MAX(l.right) FROM r JOIN link l ON l.left = r.obid"
            ") SELECT obid FROM r"
        )
        assert "R002" in rule_ids(findings)

    def test_r002_negated_membership_triggers(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT l.right FROM link l WHERE NOT EXISTS ("
            "    SELECT 1 FROM r WHERE r.obid = l.right)"
            ") SELECT obid FROM r"
        )
        assert find(findings, "R002")

    def test_r002_aggregate_in_outer_select_is_clean(self):
        # Aggregating over the *finished* recursion result is exactly
        # where the paper puts tree aggregates (Section 5.5 step B).
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
            ") SELECT COUNT(*) FROM r"
        )
        assert "R002" not in rule_ids(findings)

    def test_r002_negation_over_other_table_is_clean(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
            "  WHERE NOT EXISTS (SELECT 1 FROM banned b WHERE b.obid = l.right)"
            ") SELECT obid FROM r"
        )
        assert "R002" not in rule_ids(findings)

    def test_r003_unguarded_union_all_triggers(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid, depth) AS ("
            "  SELECT obid, 0 FROM part WHERE obid = ?"
            "  UNION ALL SELECT l.right, r.depth + 1"
            "  FROM r JOIN link l ON l.left = r.obid"
            ") SELECT obid FROM r"
        )
        (finding,) = find(findings, "R003")
        assert finding.severity is Severity.WARNING

    def test_r003_depth_guard_is_clean(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid, depth) AS ("
            "  SELECT obid, 0 FROM part WHERE obid = ?"
            "  UNION ALL SELECT l.right, r.depth + 1"
            "  FROM r JOIN link l ON l.left = r.obid WHERE r.depth < ?"
            ") SELECT obid FROM r"
        )
        assert "R003" not in rule_ids(findings)

    def test_r003_union_distinct_is_clean(self):
        # UNION's duplicate elimination is the cycle protection.
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
            ") SELECT obid FROM r"
        )
        assert "R003" not in rule_ids(findings)


class TestPushdownRules:
    def test_p001_tree_condition_inside_recursion_triggers(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
            "  WHERE (SELECT COUNT(*) FROM r) < ?"
            ") SELECT obid FROM r"
        )
        (finding,) = find(findings, "P001")
        assert finding.severity is Severity.ERROR

    def test_p001_exists_probe_over_base_table_is_clean(self):
        # The ∃structure probe of Section 5.5 step C: references base
        # tables only, legal INSIDE the recursive block.
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
            "  WHERE EXISTS (SELECT 1 FROM link lp WHERE lp.left = l.right)"
            ") SELECT obid FROM r"
        )
        assert "P001" not in rule_ids(findings)

    def test_p002_wrapped_column_triggers_info_without_catalog(self):
        findings = analyze_sql("SELECT name FROM part WHERE UPPER(name) = ?")
        (finding,) = find(findings, "P002")
        assert finding.severity is Severity.INFO

    def test_p002_indexed_column_escalates_to_warning(self, pdm_db):
        findings = pdm_db.lint("SELECT name FROM assy WHERE obid + 0 = ?")
        assert any(
            f.rule_id == "P002" and f.severity is Severity.WARNING
            for f in findings
        )

    def test_p002_bare_column_is_clean(self):
        findings = analyze_sql("SELECT name FROM part WHERE name = ?")
        assert "P002" not in rule_ids(findings)

    def test_p002_leading_wildcard_like_triggers(self):
        findings = analyze_sql("SELECT name FROM part WHERE name LIKE '%x'")
        assert find(findings, "P002")

    def test_p002_prefix_like_is_clean(self):
        findings = analyze_sql("SELECT name FROM part WHERE name LIKE 'x%'")
        assert "P002" not in rule_ids(findings)

    def test_p003_unpadded_parameter_in_list_triggers(self):
        findings = analyze_sql(
            "SELECT name FROM part WHERE obid IN (?, ?, ?)"
        )
        (finding,) = find(findings, "P003")
        assert finding.severity is Severity.WARNING

    def test_p003_bucket_sized_in_list_is_clean(self):
        findings = analyze_sql(
            "SELECT name FROM part WHERE obid IN (?, ?, ?, ?)"
        )
        assert "P003" not in rule_ids(findings)

    def test_p003_literal_in_list_is_clean(self):
        # Literal IN-lists are one SQL text per query anyway; padding
        # would not change the number of cached plans.
        findings = analyze_sql(
            "SELECT name FROM part WHERE obid IN (1, 2, 3)"
        )
        assert "P003" not in rule_ids(findings)


class TestWanRules:
    def test_w001_point_select_is_info(self):
        findings = analyze_sql("SELECT name FROM part WHERE obid = ?")
        (finding,) = find(findings, "W001")
        assert finding.severity is Severity.INFO

    def test_w001_batched_in_list_is_clean(self):
        findings = analyze_sql(
            "SELECT name FROM part WHERE obid IN (?, ?, ?, ?)"
        )
        assert "W001" not in rule_ids(findings)

    def test_w001_recursive_query_is_clean(self):
        findings = analyze_sql(
            "WITH RECURSIVE r(obid) AS ("
            "  SELECT obid FROM part WHERE obid = ?"
            "  UNION SELECT l.right FROM r JOIN link l ON l.left = r.obid"
            ") SELECT obid FROM r"
        )
        assert "W001" not in rule_ids(findings)

    def test_w002_or_disjunction_forces_seq_scan(self, pdm_db):
        findings = pdm_db.lint(
            "SELECT name FROM assy WHERE obid = ? OR obid = ?"
        )
        (finding,) = find(findings, "W002")
        assert finding.severity is Severity.WARNING
        assert "assy" in finding.message

    def test_w002_index_probe_is_clean(self, pdm_db):
        findings = pdm_db.lint("SELECT name FROM assy WHERE obid = ?")
        assert "W002" not in rule_ids(findings)

    def test_w002_unconstrained_scan_is_clean(self, pdm_db):
        # A full scan with no equality candidates is a table scan by
        # intent, not a missed index.
        findings = pdm_db.lint("SELECT name FROM assy")
        assert "W002" not in rule_ids(findings)

    def test_w003_cartesian_product_triggers(self):
        findings = analyze_sql("SELECT p.name, l.qty FROM part p, link l")
        (finding,) = find(findings, "W003")
        assert finding.severity is Severity.WARNING

    def test_w003_join_predicate_is_clean(self):
        findings = analyze_sql(
            "SELECT p.name, l.qty FROM part p, link l WHERE p.obid = l.left"
        )
        assert "W003" not in rule_ids(findings)

    def test_w003_explicit_cross_join_is_clean(self):
        findings = analyze_sql("SELECT p.name FROM part p CROSS JOIN opt o")
        assert "W003" not in rule_ids(findings)


class TestConstantish:
    """The rule modules used to carry three identical private copies of
    the constant-expression test; they must all share the one in
    ast_walk now."""

    def test_rule_modules_share_one_helper(self):
        from repro.analysis import rules_pushdown, rules_recursion, rules_wan
        from repro.sqldb import ast_walk

        assert rules_wan._constantish is ast_walk.constantish
        assert rules_pushdown._constantish is ast_walk.constantish
        assert rules_recursion._constantish is ast_walk.constantish

    @pytest.mark.parametrize(
        ("sql", "expected"),
        [
            ("42", True),
            ("?", True),
            ("? + 1", True),
            ("UPPER('x')", True),
            ("obid", False),
            ("obid + 1", False),
            ("(SELECT MAX(obid) FROM part)", False),
            ("EXISTS (SELECT 1 FROM part)", False),
        ],
    )
    def test_constant_expressions(self, sql, expected):
        from repro.sqldb.ast_walk import constantish
        from repro.sqldb.parser import parse_expression

        assert constantish(parse_expression(sql)) is expected


class TestCatalogOfRules:
    def test_every_rule_has_catalog_entry(self):
        assert set(RULE_CATALOG) == {
            "R001",
            "R002",
            "R003",
            "P001",
            "P002",
            "P003",
            "W001",
            "W002",
            "W003",
            "C001",
            "C002",
            "C003",
            "C004",
            "C005",
        }
        for rule_id, info in RULE_CATALOG.items():
            assert info.rule_id == rule_id
            assert info.paper_section

    def test_analyzer_is_static_even_with_database(self):
        # Linting a statement must not execute it: the table stays empty
        # and the statement counter untouched.
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        statements_before = db.statistics["statements"]
        db.lint("SELECT id FROM t WHERE id = ?")
        assert db.statistics["statements"] == statements_before
        assert db.execute("SELECT COUNT(*) FROM t").rows[0][0] == 0


class TestStatsKeyedSeverity:
    """W002/P002 severity keyed off ANALYZE statistics: a finding about
    an index the cost model would not use anyway drops to INFO."""

    @pytest.fixture
    def skewed_db(self):
        db = Database()
        db.execute(
            "CREATE TABLE ev (id INTEGER PRIMARY KEY, flag INTEGER, "
            "code INTEGER)"
        )
        db.execute("CREATE INDEX ev_flag ON ev (flag)")
        db.execute("CREATE INDEX ev_code ON ev (code)")
        # flag has 2 values over 100 rows (selectivity 0.5);
        # code is unique-ish (selectivity 0.01).
        db.executemany(
            "INSERT INTO ev VALUES (?, ?, ?)",
            [(i, i % 2, i) for i in range(100)],
        )
        return db

    SCAN_SQL = "SELECT id FROM ev WHERE flag = ? OR flag = ?"
    WRAPPED_SQL = "SELECT id FROM ev WHERE flag + 0 = ?"

    def test_w002_warning_without_stats(self, skewed_db):
        (finding,) = find(skewed_db.lint(self.SCAN_SQL), "W002")
        assert finding.severity is Severity.WARNING

    def test_w002_downgraded_for_nonselective_column(self, skewed_db):
        skewed_db.execute("ANALYZE ev")
        (finding,) = find(skewed_db.lint(self.SCAN_SQL), "W002")
        assert finding.severity is Severity.INFO
        assert "cost-justified" in finding.message

    def test_w002_stays_warning_for_selective_column(self, skewed_db):
        skewed_db.execute("ANALYZE ev")
        findings = skewed_db.lint(
            "SELECT id FROM ev WHERE code = ? OR code = ?"
        )
        (finding,) = find(findings, "W002")
        assert finding.severity is Severity.WARNING

    def test_p002_warning_without_stats(self, skewed_db):
        (finding,) = find(skewed_db.lint(self.WRAPPED_SQL), "P002")
        assert finding.severity is Severity.WARNING

    def test_p002_downgraded_for_nonselective_column(self, skewed_db):
        skewed_db.execute("ANALYZE ev")
        (finding,) = find(skewed_db.lint(self.WRAPPED_SQL), "P002")
        assert finding.severity is Severity.INFO

    def test_p002_stays_warning_for_selective_column(self, skewed_db):
        skewed_db.execute("ANALYZE ev")
        findings = skewed_db.lint("SELECT id FROM ev WHERE code + 0 = ?")
        (finding,) = find(findings, "P002")
        assert finding.severity is Severity.WARNING
