"""The analyzer's user-facing surfaces: Database.lint, the LINT
statement, workload analysis, the template self-check, and the CLI."""

import json

from repro.analysis import (
    PLAN_CACHE_KEY_BUCKETS,
    REPEAT_THRESHOLD,
    Severity,
    analyze_sql,
    analyze_workload,
    is_lint_clean,
)
from repro.analysis.__main__ import main as cli_main
from repro.analysis.templates import (
    recursive_early_workload,
    table2_late_workload,
    template_queries,
)
from repro.sqldb import Database

POINT_SELECT = "SELECT name FROM part WHERE obid = ?"


class TestDatabaseSurfaces:
    def test_lint_statement_returns_findings_as_rows(self):
        db = Database()
        result = db.execute("LINT SELECT name FROM part WHERE obid IN (?, ?, ?)")
        assert result.columns == ["rule_id", "severity", "message", "node_path"]
        assert [row[0] for row in result.rows] == ["P003"]

    def test_lint_statement_clean_query_returns_no_rows(self):
        db = Database()
        result = db.execute(
            "LINT SELECT name FROM part WHERE obid IN (?, ?, ?, ?)"
        )
        assert result.rows == []

    def test_lint_statement_renders_and_reparses(self):
        from repro.sqldb.parser import parse_statement
        from repro.sqldb.render import render_statement

        statement = parse_statement("LINT SELECT a FROM t")
        assert parse_statement(render_statement(statement)) == statement

    def test_database_lint_matches_analyze_sql(self):
        db = Database()
        db.execute("CREATE TABLE part (obid INTEGER PRIMARY KEY, name VARCHAR(10))")
        assert db.lint(POINT_SELECT) == analyze_sql(POINT_SELECT, database=db)


class TestWorkloadAnalysis:
    def test_repeated_point_select_escalates(self):
        report = analyze_workload([POINT_SELECT] * REPEAT_THRESHOLD)
        w001 = [f for f in report.findings if f.rule_id == "W001"]
        assert w001 and all(f.severity is Severity.WARNING for f in w001)
        assert report.statement_count == REPEAT_THRESHOLD
        assert report.distinct_shapes == 1

    def test_below_threshold_stays_info(self):
        report = analyze_workload([POINT_SELECT] * (REPEAT_THRESHOLD - 1))
        w001 = [f for f in report.findings if f.rule_id == "W001"]
        assert w001 and all(f.severity is Severity.INFO for f in w001)

    def test_whitespace_variants_count_as_one_shape(self):
        report = analyze_workload(
            [POINT_SELECT, "SELECT name\n  FROM part WHERE obid = ?"] * 5
        )
        assert report.distinct_shapes == 1

    def test_table2_late_workload_is_flagged(self):
        report = analyze_workload(table2_late_workload(nodes=100))
        assert report.max_severity is Severity.WARNING

    def test_recursive_early_workload_is_clean(self):
        report = analyze_workload(recursive_early_workload())
        assert report.max_severity < Severity.WARNING


class TestTemplateSelfCheck:
    def test_every_template_is_lint_clean(self):
        """Every query the PDM layer or the rule rewriter can emit must
        have no findings at WARNING or above."""
        dirty = {}
        for name, sql in template_queries():
            findings = analyze_sql(sql)
            if not is_lint_clean(findings):
                dirty[name] = [f.as_row() for f in findings]
        assert not dirty, f"templates with warnings/errors: {dirty}"

    def test_corpus_covers_builders_and_rewrites(self):
        names = {name for name, __ in template_queries()}
        assert "mle-recursive" in names
        assert "rewrite-mle-early-inside" in names
        assert any(name.startswith("batched-children") for name in names)

    def test_bucket_constant_shared_with_pdm_client(self):
        from repro.pdm import operations

        assert operations.BATCH_KEY_BUCKETS is PLAN_CACHE_KEY_BUCKETS


class TestCli:
    def test_templates_mode_passes_warning_gate(self, capsys):
        assert cli_main(["--templates", "--fail-on", "warning"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_late_workload_fails_warning_gate(self, capsys):
        exit_code = cli_main(
            ["--workload", "table2-late", "--nodes", "20", "--fail-on", "warning"]
        )
        assert exit_code == 1
        assert "W001" in capsys.readouterr().out

    def test_late_workload_passes_error_gate(self, capsys):
        assert cli_main(["--workload", "table2-late", "--nodes", "20"]) == 0
        capsys.readouterr()

    def test_json_output(self, capsys):
        assert cli_main(["--workload", "recursive-early", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["worst"] == "INFO"
        assert payload["results"][0]["source"] == "workload:recursive-early"

    def test_lints_sql_file(self, tmp_path, capsys):
        workload = tmp_path / "workload.sql"
        workload.write_text(
            "SELECT name FROM part WHERE obid IN (?, ?, ?);\n"
            "SELECT p.name, l.qty FROM part p, link l;\n"
        )
        exit_code = cli_main([str(workload), "--fail-on", "warning"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "P003" in out and "W003" in out

    def test_unparseable_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.sql"
        bad.write_text("SELEKT nonsense;")
        assert cli_main([str(bad)]) == 1
        capsys.readouterr()

    def test_no_input_is_usage_error(self, capsys):
        assert cli_main([]) == 2
        err = capsys.readouterr().err
        assert "--scripts" in err


class TestScriptsCli:
    CLEAN = (
        "-- pragma: sequenced\n"
        "BEGIN;\n"
        "SELECT v FROM t WHERE id = 1;\n"
        "COMMIT;\n"
    )
    NON_IDEMPOTENT = "UPDATE t SET v = v + 1 WHERE id = 1;\n"

    def write_corpus(self, tmp_path, **scripts):
        for name, text in scripts.items():
            (tmp_path / f"{name}.sql").write_text(text)
        return str(tmp_path)

    def test_clean_corpus_passes_error_gate(self, tmp_path, capsys):
        corpus = self.write_corpus(tmp_path, reader=self.CLEAN)
        assert cli_main(["--scripts", corpus, "--fail-on", "error"]) == 0
        capsys.readouterr()

    def test_c002_error_fails_error_gate(self, tmp_path, capsys):
        corpus = self.write_corpus(tmp_path, bump=self.NON_IDEMPOTENT)
        exit_code = cli_main(["--scripts", corpus, "--fail-on", "error"])
        assert exit_code == 1
        assert "C002" in capsys.readouterr().out

    def test_c001_warning_fails_warning_gate_only(self, tmp_path, capsys):
        inversion = (
            "-- pragma: sequenced\n"
            "BEGIN;\n"
            "UPDATE t SET v = 1 WHERE id = ?;\n"
            "UPDATE t SET v = 1 WHERE id = ?;\n"
            "COMMIT;\n"
        )
        corpus = self.write_corpus(tmp_path, contended=inversion)
        assert cli_main(["--scripts", corpus, "--fail-on", "error"]) == 0
        capsys.readouterr()
        exit_code = cli_main(["--scripts", corpus, "--fail-on", "warning"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "C001" in out
        assert "predicted deadlock contended <-> contended" in out

    def test_unparseable_script_fails(self, tmp_path, capsys):
        corpus = self.write_corpus(tmp_path, bad="SELEKT nonsense;")
        assert cli_main(["--scripts", corpus]) == 1
        capsys.readouterr()

    def test_json_shape(self, tmp_path, capsys):
        corpus = self.write_corpus(
            tmp_path, bump=self.NON_IDEMPOTENT, reader=self.CLEAN
        )
        exit_code = cli_main(["--scripts", corpus, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1  # C002 is an ERROR, default --fail-on error
        assert payload["worst"] == "ERROR"
        (entry,) = [
            r for r in payload["results"] if r["source"] == "scripts"
        ]
        assert entry["scripts"] == ["bump", "reader"]
        assert {"rule_id", "severity", "message", "node_path"} <= set(
            entry["findings"][0]
        )
        assert any(
            finding["rule_id"] == "C002" for finding in entry["findings"]
        )
        assert isinstance(entry["conflict_edges"], list)
        assert isinstance(entry["deadlock_cycles"], list)

    def test_explicit_file_and_directory_mix(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "reader.sql").write_text(self.CLEAN)
        lone = tmp_path / "lone.sql"
        lone.write_text(self.CLEAN)
        exit_code = cli_main(
            ["--scripts", str(corpus), str(lone), "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        (entry,) = [
            r for r in payload["results"] if r["source"] == "scripts"
        ]
        assert entry["scripts"] == ["reader", "lone"]

    def test_committed_corpus_is_error_free(self, capsys):
        import os

        corpus = os.path.join(
            os.path.dirname(__file__), "..", "..", "examples", "txn_scripts"
        )
        assert cli_main(["--scripts", corpus, "--fail-on", "error"]) == 0
        capsys.readouterr()
