"""Every example script must run to completion and print its story.

These are true end-to-end smoke tests: each example wires the full stack
(engine + WAN + server + PDM + rules) through the public API only.
"""

import pathlib
import subprocess
import sys

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=180):
    process = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "worldwide_expand.py",
        "access_rules.py",
        "checkout_workflow.py",
        "capacity_planning.py",
        "global_replication.py",
        "impact_analysis.py",
        "engineer_session.py",
    } <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "recursive-early" in out
    assert "retrieved tree" in out


def test_worldwide_expand_small():
    out = run_example("worldwide_expand.py", "--small")
    assert "LAN" in out
    assert "WAN-256" in out


def test_access_rules():
    out = run_example("access_rules.py")
    assert "ROW condition" in out
    assert "0 nodes retrieved" in out  # the all-or-nothing example
    assert "WITH RECURSIVE" in out  # prints the generated SQL


def test_checkout_workflow():
    out = run_example("checkout_workflow.py")
    assert "denied" in out
    assert "function shipping saves" in out


def test_capacity_planning():
    out = run_example("capacity_planning.py")
    assert "Buy bandwidth" in out
    assert "Closed-form planning" in out
    assert "impossible" in out


def test_global_replication():
    out = run_example("global_replication.py")
    assert "STALE" in out
    assert "after flush" in out


def test_engineer_session():
    out = run_example("engineer_session.py")
    assert "session recipe" in out
    assert "recursive-early" in out


def test_impact_analysis():
    out = run_example("impact_analysis.py")
    assert "where-used" in out
    assert "denied atomically" in out
