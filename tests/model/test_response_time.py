"""Response-time equations (1)-(6) and their published values.

The decisive test: every cell of Tables 2, 3 and 4 — latency part,
transfer part, total, and saving percentage — must match the paper to
±0.01 s / ±0.02 percentage points.
"""

import pytest

from repro.bench import paper_values
from repro.errors import ModelError
from repro.model.parameters import (
    NetworkParameters,
    PAPER_NETWORKS,
    PAPER_TREES,
    TreeParameters,
)
from repro.model.response_time import (
    Action,
    Strategy,
    predict,
    saving_percent,
    t_batched,
)


def tree_for(key):
    return next(
        tree
        for tree in PAPER_TREES
        if (tree.depth, tree.branching) == key
    )


def network_for(key):
    return next(
        network
        for network in PAPER_NETWORKS
        if (network.latency_s, network.dtr_kbit_s) == key
    )


ACTIONS = {
    "query": Action.QUERY,
    "expand": Action.EXPAND,
    "mle": Action.MLE,
}


class TestTable2LateEvaluation:
    @pytest.mark.parametrize("network_key", paper_values.NETWORKS)
    @pytest.mark.parametrize("tree_key", paper_values.TREES)
    @pytest.mark.parametrize("action_name", paper_values.ACTIONS)
    def test_cell(self, network_key, tree_key, action_name):
        latency, transfer, total = paper_values.TABLE2[network_key][tree_key][
            action_name
        ]
        prediction = predict(
            ACTIONS[action_name],
            Strategy.LATE,
            tree_for(tree_key),
            network_for(network_key),
        )
        assert prediction.latency_seconds == pytest.approx(latency, abs=0.011)
        assert prediction.transfer_seconds == pytest.approx(transfer, abs=0.011)
        assert prediction.total_seconds == pytest.approx(total, abs=0.011)


class TestTable3EarlyEvaluation:
    @pytest.mark.parametrize("network_key", paper_values.NETWORKS)
    @pytest.mark.parametrize("tree_key", paper_values.TREES)
    @pytest.mark.parametrize("action_name", paper_values.ACTIONS)
    def test_cell(self, network_key, tree_key, action_name):
        latency, transfer, total = paper_values.TABLE3[network_key][tree_key][
            action_name
        ]
        prediction = predict(
            ACTIONS[action_name],
            Strategy.EARLY,
            tree_for(tree_key),
            network_for(network_key),
        )
        assert prediction.latency_seconds == pytest.approx(latency, abs=0.011)
        assert prediction.transfer_seconds == pytest.approx(transfer, abs=0.011)
        assert prediction.total_seconds == pytest.approx(total, abs=0.011)

    @pytest.mark.parametrize("network_key", paper_values.NETWORKS)
    @pytest.mark.parametrize("tree_key", paper_values.TREES)
    @pytest.mark.parametrize("action_name", paper_values.ACTIONS)
    def test_saving(self, network_key, tree_key, action_name):
        published = paper_values.TABLE3_SAVINGS[network_key][tree_key][action_name]
        tree, network = tree_for(tree_key), network_for(network_key)
        late = predict(ACTIONS[action_name], Strategy.LATE, tree, network)
        early = predict(ACTIONS[action_name], Strategy.EARLY, tree, network)
        saving = saving_percent(late.total_seconds, early.total_seconds)
        assert saving == pytest.approx(published, abs=0.02)


class TestTable4Recursive:
    @pytest.mark.parametrize("network_key", paper_values.NETWORKS)
    @pytest.mark.parametrize("tree_key", paper_values.TREES)
    def test_cell(self, network_key, tree_key):
        latency, transfer, total, published_saving = paper_values.TABLE4[
            network_key
        ][tree_key]
        tree, network = tree_for(tree_key), network_for(network_key)
        prediction = predict(Action.MLE, Strategy.RECURSIVE, tree, network)
        assert prediction.latency_seconds == pytest.approx(latency, abs=0.011)
        assert prediction.transfer_seconds == pytest.approx(transfer, abs=0.011)
        assert prediction.total_seconds == pytest.approx(total, abs=0.011)
        late = predict(Action.MLE, Strategy.LATE, tree, network)
        saving = saving_percent(late.total_seconds, prediction.total_seconds)
        assert saving == pytest.approx(published_saving, abs=0.02)

    def test_recursive_mle_uses_two_communications(self):
        prediction = predict(
            Action.MLE, Strategy.RECURSIVE, PAPER_TREES[0], PAPER_NETWORKS[0]
        )
        assert prediction.communications == 2.0

    def test_larger_query_text_costs_more_packets(self):
        tree, network = PAPER_TREES[0], PAPER_NETWORKS[0]
        one = predict(Action.MLE, Strategy.RECURSIVE, tree, network, query_packets=1)
        three = predict(Action.MLE, Strategy.RECURSIVE, tree, network, query_packets=3)
        expected_extra = 2 * 1.5 * network.packet_bytes * 8 / network.bits_per_second
        assert three.total_seconds - one.total_seconds == pytest.approx(expected_extra)

    def test_zero_query_packets_rejected(self):
        with pytest.raises(ModelError):
            predict(
                Action.MLE,
                Strategy.RECURSIVE,
                PAPER_TREES[0],
                PAPER_NETWORKS[0],
                query_packets=0,
            )


class TestModelStructure:
    def test_communications_twice_queries(self):
        prediction = predict(
            Action.MLE, Strategy.LATE, PAPER_TREES[0], PAPER_NETWORKS[0]
        )
        assert prediction.communications == pytest.approx(2 * prediction.queries)

    def test_recursion_equals_early_for_query_and_expand(self):
        for action in (Action.QUERY, Action.EXPAND):
            early = predict(action, Strategy.EARLY, PAPER_TREES[1], PAPER_NETWORKS[1])
            recursive = predict(
                action, Strategy.RECURSIVE, PAPER_TREES[1], PAPER_NETWORKS[1]
            )
            assert recursive.total_seconds == pytest.approx(early.total_seconds)

    def test_saving_requires_positive_baseline(self):
        with pytest.raises(ModelError):
            saving_percent(0.0, 1.0)

    def test_network_validation(self):
        with pytest.raises(ModelError):
            NetworkParameters(latency_s=-1, dtr_kbit_s=256)
        with pytest.raises(ModelError):
            NetworkParameters(latency_s=0.1, dtr_kbit_s=0)

    def test_volume_decomposition(self):
        """vol = q*size_p + n_t*size_node + q*size_p/2 (equation (3))."""
        tree, network = PAPER_TREES[0], PAPER_NETWORKS[0]
        prediction = predict(Action.QUERY, Strategy.LATE, tree, network)
        expected = (
            prediction.queries * network.packet_bytes
            + prediction.transmitted_nodes * network.node_bytes
            + prediction.queries * network.packet_bytes / 2
        )
        assert prediction.volume_bytes == pytest.approx(expected)


class TestBatchedStrategy:
    def test_latency_is_two_communications_per_level(self):
        tree, network = PAPER_TREES[1], PAPER_NETWORKS[1]
        prediction = t_batched(tree, network)
        assert prediction.queries == tree.depth
        assert prediction.communications == 2 * tree.depth
        assert prediction.latency_seconds == pytest.approx(
            2 * tree.depth * network.latency_s
        )

    def test_sits_between_early_and_recursive(self):
        for tree in PAPER_TREES:
            for network in PAPER_NETWORKS:
                early = predict(Action.MLE, Strategy.EARLY, tree, network)
                batched = predict(Action.MLE, Strategy.BATCHED, tree, network)
                recursive = predict(
                    Action.MLE, Strategy.RECURSIVE, tree, network
                )
                assert (
                    recursive.total_seconds
                    < batched.total_seconds
                    < early.total_seconds
                )

    def test_ships_the_early_visible_node_set(self):
        tree, network = PAPER_TREES[0], PAPER_NETWORKS[0]
        batched = predict(Action.MLE, Strategy.BATCHED, tree, network)
        recursive = predict(Action.MLE, Strategy.RECURSIVE, tree, network)
        assert batched.transmitted_nodes == recursive.transmitted_nodes

    def test_volume_decomposition(self):
        """vol_b = delta*q_b*size_p + n_v*size_node + delta*q_b*size_p/2."""
        tree, network = PAPER_TREES[2], PAPER_NETWORKS[0]
        prediction = t_batched(tree, network, query_packets=2)
        expected = (
            tree.depth * 2 * network.packet_bytes
            + prediction.transmitted_nodes * network.node_bytes
            + tree.depth * 2 * network.packet_bytes / 2
        )
        assert prediction.volume_bytes == pytest.approx(expected)

    def test_equals_early_for_query_and_expand(self):
        for action in (Action.QUERY, Action.EXPAND):
            early = predict(action, Strategy.EARLY, PAPER_TREES[1], PAPER_NETWORKS[1])
            batched = predict(
                action, Strategy.BATCHED, PAPER_TREES[1], PAPER_NETWORKS[1]
            )
            assert batched.total_seconds == pytest.approx(early.total_seconds)

    def test_query_packets_must_be_positive(self):
        with pytest.raises(ModelError):
            t_batched(PAPER_TREES[0], PAPER_NETWORKS[0], query_packets=0)
