"""Response-time equations (1)-(6) and their published values.

The decisive test: every cell of Tables 2, 3 and 4 — latency part,
transfer part, total, and saving percentage — must match the paper to
±0.01 s / ±0.02 percentage points.
"""

import pytest

from repro.bench import paper_values
from repro.errors import ModelError
from repro.model.parameters import (
    NetworkParameters,
    PAPER_NETWORKS,
    PAPER_TREES,
)
from repro.model.response_time import (
    Action,
    Strategy,
    predict,
    saving_percent,
    t_batched,
)


def tree_for(key):
    return next(
        tree
        for tree in PAPER_TREES
        if (tree.depth, tree.branching) == key
    )


def network_for(key):
    return next(
        network
        for network in PAPER_NETWORKS
        if (network.latency_s, network.dtr_kbit_s) == key
    )


ACTIONS = {
    "query": Action.QUERY,
    "expand": Action.EXPAND,
    "mle": Action.MLE,
}


class TestTable2LateEvaluation:
    @pytest.mark.parametrize("network_key", paper_values.NETWORKS)
    @pytest.mark.parametrize("tree_key", paper_values.TREES)
    @pytest.mark.parametrize("action_name", paper_values.ACTIONS)
    def test_cell(self, network_key, tree_key, action_name):
        latency, transfer, total = paper_values.TABLE2[network_key][tree_key][
            action_name
        ]
        prediction = predict(
            ACTIONS[action_name],
            Strategy.LATE,
            tree_for(tree_key),
            network_for(network_key),
        )
        assert prediction.latency_seconds == pytest.approx(latency, abs=0.011)
        assert prediction.transfer_seconds == pytest.approx(transfer, abs=0.011)
        assert prediction.total_seconds == pytest.approx(total, abs=0.011)


class TestTable3EarlyEvaluation:
    @pytest.mark.parametrize("network_key", paper_values.NETWORKS)
    @pytest.mark.parametrize("tree_key", paper_values.TREES)
    @pytest.mark.parametrize("action_name", paper_values.ACTIONS)
    def test_cell(self, network_key, tree_key, action_name):
        latency, transfer, total = paper_values.TABLE3[network_key][tree_key][
            action_name
        ]
        prediction = predict(
            ACTIONS[action_name],
            Strategy.EARLY,
            tree_for(tree_key),
            network_for(network_key),
        )
        assert prediction.latency_seconds == pytest.approx(latency, abs=0.011)
        assert prediction.transfer_seconds == pytest.approx(transfer, abs=0.011)
        assert prediction.total_seconds == pytest.approx(total, abs=0.011)

    @pytest.mark.parametrize("network_key", paper_values.NETWORKS)
    @pytest.mark.parametrize("tree_key", paper_values.TREES)
    @pytest.mark.parametrize("action_name", paper_values.ACTIONS)
    def test_saving(self, network_key, tree_key, action_name):
        published = paper_values.TABLE3_SAVINGS[network_key][tree_key][action_name]
        tree, network = tree_for(tree_key), network_for(network_key)
        late = predict(ACTIONS[action_name], Strategy.LATE, tree, network)
        early = predict(ACTIONS[action_name], Strategy.EARLY, tree, network)
        saving = saving_percent(late.total_seconds, early.total_seconds)
        assert saving == pytest.approx(published, abs=0.02)


class TestTable4Recursive:
    @pytest.mark.parametrize("network_key", paper_values.NETWORKS)
    @pytest.mark.parametrize("tree_key", paper_values.TREES)
    def test_cell(self, network_key, tree_key):
        latency, transfer, total, published_saving = paper_values.TABLE4[
            network_key
        ][tree_key]
        tree, network = tree_for(tree_key), network_for(network_key)
        prediction = predict(Action.MLE, Strategy.RECURSIVE, tree, network)
        assert prediction.latency_seconds == pytest.approx(latency, abs=0.011)
        assert prediction.transfer_seconds == pytest.approx(transfer, abs=0.011)
        assert prediction.total_seconds == pytest.approx(total, abs=0.011)
        late = predict(Action.MLE, Strategy.LATE, tree, network)
        saving = saving_percent(late.total_seconds, prediction.total_seconds)
        assert saving == pytest.approx(published_saving, abs=0.02)

    def test_recursive_mle_uses_two_communications(self):
        prediction = predict(
            Action.MLE, Strategy.RECURSIVE, PAPER_TREES[0], PAPER_NETWORKS[0]
        )
        assert prediction.communications == 2.0

    def test_larger_query_text_costs_more_packets(self):
        tree, network = PAPER_TREES[0], PAPER_NETWORKS[0]
        one = predict(Action.MLE, Strategy.RECURSIVE, tree, network, query_packets=1)
        three = predict(Action.MLE, Strategy.RECURSIVE, tree, network, query_packets=3)
        expected_extra = 2 * 1.5 * network.packet_bytes * 8 / network.bits_per_second
        assert three.total_seconds - one.total_seconds == pytest.approx(expected_extra)

    def test_zero_query_packets_rejected(self):
        with pytest.raises(ModelError):
            predict(
                Action.MLE,
                Strategy.RECURSIVE,
                PAPER_TREES[0],
                PAPER_NETWORKS[0],
                query_packets=0,
            )


class TestModelStructure:
    def test_communications_twice_queries(self):
        prediction = predict(
            Action.MLE, Strategy.LATE, PAPER_TREES[0], PAPER_NETWORKS[0]
        )
        assert prediction.communications == pytest.approx(2 * prediction.queries)

    def test_recursion_equals_early_for_query_and_expand(self):
        for action in (Action.QUERY, Action.EXPAND):
            early = predict(action, Strategy.EARLY, PAPER_TREES[1], PAPER_NETWORKS[1])
            recursive = predict(
                action, Strategy.RECURSIVE, PAPER_TREES[1], PAPER_NETWORKS[1]
            )
            assert recursive.total_seconds == pytest.approx(early.total_seconds)

    def test_saving_requires_positive_baseline(self):
        with pytest.raises(ModelError):
            saving_percent(0.0, 1.0)

    def test_network_validation(self):
        with pytest.raises(ModelError):
            NetworkParameters(latency_s=-1, dtr_kbit_s=256)
        with pytest.raises(ModelError):
            NetworkParameters(latency_s=0.1, dtr_kbit_s=0)

    def test_volume_decomposition(self):
        """vol = q*size_p + n_t*size_node + q*size_p/2 (equation (3))."""
        tree, network = PAPER_TREES[0], PAPER_NETWORKS[0]
        prediction = predict(Action.QUERY, Strategy.LATE, tree, network)
        expected = (
            prediction.queries * network.packet_bytes
            + prediction.transmitted_nodes * network.node_bytes
            + prediction.queries * network.packet_bytes / 2
        )
        assert prediction.volume_bytes == pytest.approx(expected)


class TestBatchedStrategy:
    def test_latency_is_two_communications_per_level(self):
        tree, network = PAPER_TREES[1], PAPER_NETWORKS[1]
        prediction = t_batched(tree, network)
        assert prediction.queries == tree.depth
        assert prediction.communications == 2 * tree.depth
        assert prediction.latency_seconds == pytest.approx(
            2 * tree.depth * network.latency_s
        )

    def test_sits_between_early_and_recursive(self):
        for tree in PAPER_TREES:
            for network in PAPER_NETWORKS:
                early = predict(Action.MLE, Strategy.EARLY, tree, network)
                batched = predict(Action.MLE, Strategy.BATCHED, tree, network)
                recursive = predict(
                    Action.MLE, Strategy.RECURSIVE, tree, network
                )
                assert (
                    recursive.total_seconds
                    < batched.total_seconds
                    < early.total_seconds
                )

    def test_ships_the_early_visible_node_set(self):
        tree, network = PAPER_TREES[0], PAPER_NETWORKS[0]
        batched = predict(Action.MLE, Strategy.BATCHED, tree, network)
        recursive = predict(Action.MLE, Strategy.RECURSIVE, tree, network)
        assert batched.transmitted_nodes == recursive.transmitted_nodes

    def test_volume_decomposition(self):
        """vol_b = delta*q_b*size_p + n_v*size_node + delta*q_b*size_p/2."""
        tree, network = PAPER_TREES[2], PAPER_NETWORKS[0]
        prediction = t_batched(tree, network, query_packets=2)
        expected = (
            tree.depth * 2 * network.packet_bytes
            + prediction.transmitted_nodes * network.node_bytes
            + tree.depth * 2 * network.packet_bytes / 2
        )
        assert prediction.volume_bytes == pytest.approx(expected)

    def test_equals_early_for_query_and_expand(self):
        for action in (Action.QUERY, Action.EXPAND):
            early = predict(action, Strategy.EARLY, PAPER_TREES[1], PAPER_NETWORKS[1])
            batched = predict(
                action, Strategy.BATCHED, PAPER_TREES[1], PAPER_NETWORKS[1]
            )
            assert batched.total_seconds == pytest.approx(early.total_seconds)

    def test_query_packets_must_be_positive(self):
        with pytest.raises(ModelError):
            t_batched(PAPER_TREES[0], PAPER_NETWORKS[0], query_packets=0)


class TestFaultyPrediction:
    def faults(self, **kwargs):
        from repro.network.faults import FaultProfile

        kwargs.setdefault("name", "test")
        return FaultProfile(**kwargs)

    def policy(self, **kwargs):
        from repro.network.faults import RetryPolicy

        return RetryPolicy(**kwargs)

    def predict_faulty(self, faults, policy, strategy=Strategy.BATCHED):
        from repro.model.response_time import predict_with_faults

        return predict_with_faults(
            Action.MLE,
            strategy,
            PAPER_TREES[0],
            PAPER_NETWORKS[0],
            faults,
            policy,
        )

    def test_zero_faults_reduce_to_base(self):
        prediction = self.predict_faulty(self.faults(), self.policy())
        base = predict(
            Action.MLE, Strategy.BATCHED, PAPER_TREES[0], PAPER_NETWORKS[0]
        )
        assert prediction.total_seconds == pytest.approx(base.total_seconds)
        assert prediction.retry_seconds == 0.0
        assert prediction.backoff_seconds == 0.0
        assert prediction.expected_retries == 0.0
        assert prediction.expected_attempts_per_round_trip == 1.0

    def test_monotonic_in_drop_probability(self):
        policy = self.policy()
        totals = [
            self.predict_faulty(
                self.faults(drop_probability=p), policy
            ).total_seconds
            for p in (0.0, 0.02, 0.05, 0.10, 0.20)
        ]
        assert totals == sorted(totals)
        assert totals[0] < totals[-1]

    def test_expected_attempts_is_reciprocal_success(self):
        prediction = self.predict_faulty(
            self.faults(drop_probability=0.1), self.policy()
        )
        assert prediction.expected_attempts_per_round_trip == pytest.approx(
            1.0 / ((1.0 - 0.1) ** 2)
        )

    def test_corruption_and_truncation_fold_together(self):
        policy = self.policy()
        both = self.predict_faulty(
            self.faults(corrupt_probability=0.1, truncate_probability=0.1),
            policy,
        )
        assert both.corrupt_probability == pytest.approx(1 - 0.9 * 0.9)

    def test_strategy_exposure_scales_with_round_trips(self):
        """Every round trip is a chance to lose a message: under the same
        loss rate the many-trip navigational strategy expects many more
        retries than the single-trip recursive one."""
        faults = self.faults(drop_probability=0.05)
        policy = self.policy()
        late = self.predict_faulty(faults, policy, Strategy.LATE)
        recursive = self.predict_faulty(faults, policy, Strategy.RECURSIVE)
        assert late.expected_retries > recursive.expected_retries * 10

    def test_spike_term(self):
        prediction = self.predict_faulty(
            self.faults(spike_probability=0.5, spike_seconds=1.0),
            self.policy(),
            Strategy.RECURSIVE,
        )
        # One round trip, two messages, half of them spiking 1 s each.
        assert prediction.spike_seconds == pytest.approx(1.0)

    def test_certain_loss_rejected(self):
        with pytest.raises(ModelError):
            from repro.model.response_time import predict_with_faults

            class Certain:
                drop_probability = 1.0
                corrupt_probability = 0.0
                truncate_probability = 0.0
                spike_probability = 0.0
                spike_seconds = 0.0

            predict_with_faults(
                Action.MLE,
                Strategy.BATCHED,
                PAPER_TREES[0],
                PAPER_NETWORKS[0],
                Certain(),
                self.policy(),
            )
