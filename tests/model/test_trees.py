"""Tree node-count formulas (paper Section 2)."""

import pytest

from repro.errors import ModelError
from repro.model.parameters import TreeParameters
from repro.model.trees import (
    expected_visible_nodes,
    full_node_count,
    level_width,
    navigational_query_count,
    transmitted_nodes,
    visible_node_count,
)


class TestCounts:
    def test_level_width(self):
        tree = TreeParameters(depth=3, branching=4)
        assert [level_width(tree, i) for i in range(4)] == [1, 4, 16, 64]

    def test_level_out_of_range(self):
        tree = TreeParameters(depth=3, branching=4)
        with pytest.raises(ModelError):
            level_width(tree, 4)

    def test_full_node_count_excludes_root(self):
        tree = TreeParameters(depth=3, branching=9)
        assert full_node_count(tree) == 9 + 81 + 729  # paper scenario 1

    def test_paper_scenario_counts(self):
        assert full_node_count(TreeParameters(9, 3)) == 29523
        assert full_node_count(TreeParameters(7, 5)) == 97655

    def test_visible_counts_are_expectations(self):
        tree = TreeParameters(depth=3, branching=9, visibility=0.6)
        expected = 5.4 + 5.4**2 + 5.4**3
        assert visible_node_count(tree) == pytest.approx(expected)

    def test_expected_visible_per_level(self):
        tree = TreeParameters(depth=2, branching=10, visibility=0.5)
        assert expected_visible_nodes(tree, 1) == pytest.approx(5.0)
        assert expected_visible_nodes(tree, 2) == pytest.approx(25.0)

    def test_sigma_one_matches_full_count(self):
        tree = TreeParameters(depth=5, branching=2, visibility=1.0)
        assert visible_node_count(tree) == full_node_count(tree)


class TestTransmittedNodes:
    def test_query_action(self):
        tree = TreeParameters(depth=3, branching=9, visibility=0.6)
        assert transmitted_nodes(tree, "query", early=False) == 819
        assert transmitted_nodes(tree, "query", early=True) == pytest.approx(
            visible_node_count(tree)
        )

    def test_expand_action(self):
        tree = TreeParameters(depth=3, branching=9, visibility=0.6)
        assert transmitted_nodes(tree, "expand", early=False) == 9
        assert transmitted_nodes(tree, "expand", early=True) == pytest.approx(5.4)

    def test_mle_late_formula(self):
        """n_t = κ · Σ_{i=0..δ-1} (σκ)^i."""
        tree = TreeParameters(depth=3, branching=9, visibility=0.6)
        expected = 9 * (1 + 5.4 + 5.4**2)
        assert transmitted_nodes(tree, "mle", early=False) == pytest.approx(expected)

    def test_mle_early_is_visible_count(self):
        tree = TreeParameters(depth=3, branching=9, visibility=0.6)
        assert transmitted_nodes(tree, "mle", early=True) == pytest.approx(
            visible_node_count(tree)
        )

    def test_unknown_action_rejected(self):
        with pytest.raises(ModelError):
            transmitted_nodes(TreeParameters(1, 1), "drop", early=False)


class TestQueryCounts:
    def test_single_query_actions(self):
        tree = TreeParameters(depth=3, branching=9, visibility=0.6)
        assert navigational_query_count(tree, "query") == 1.0
        assert navigational_query_count(tree, "expand") == 1.0

    def test_mle_query_count_has_root_probe(self):
        """Pinned by Table 2's latency column: 57.91 / 0.15 / 2 = 193.02."""
        tree = TreeParameters(depth=3, branching=9, visibility=0.6)
        assert navigational_query_count(tree, "mle") == pytest.approx(
            193.024, abs=0.001
        )


class TestParameterValidation:
    def test_bad_depth(self):
        with pytest.raises(ModelError):
            TreeParameters(depth=0, branching=2)

    def test_bad_branching(self):
        with pytest.raises(ModelError):
            TreeParameters(depth=2, branching=0)

    def test_bad_visibility(self):
        with pytest.raises(ModelError):
            TreeParameters(depth=2, branching=2, visibility=1.5)

    def test_label(self):
        assert "kappa=3" in TreeParameters(9, 3).label
