"""Capacity-planning helpers: closed-form solutions vs brute force."""

import pytest

from repro.errors import ModelError
from repro.model.crossover import (
    latency_where_saving_reaches,
    max_latency_for_budget,
    min_bandwidth_for_budget,
    response_time_at,
    saving_is_monotone_in_latency,
)
from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.response_time import Action, Strategy, predict, saving_percent

TREE = TreeParameters(depth=9, branching=3, visibility=0.6)
NETWORK = NetworkParameters(latency_s=0.15, dtr_kbit_s=512)


class TestOverrides:
    def test_response_time_at_reproduces_base(self):
        direct = predict(Action.MLE, Strategy.LATE, TREE, NETWORK).total_seconds
        assert response_time_at(Action.MLE, Strategy.LATE, TREE, NETWORK) == (
            pytest.approx(direct)
        )

    def test_latency_override(self):
        fast = response_time_at(
            Action.MLE, Strategy.LATE, TREE, NETWORK, latency_s=0.01
        )
        assert fast < predict(
            Action.MLE, Strategy.LATE, TREE, NETWORK
        ).total_seconds


class TestLatencyBudget:
    def test_solution_is_exact(self):
        budget = 60.0  # above the ~47.5 s pure-transfer share
        threshold = max_latency_for_budget(
            Action.MLE, Strategy.LATE, TREE, NETWORK, budget
        )
        at_threshold = response_time_at(
            Action.MLE, Strategy.LATE, TREE, NETWORK, latency_s=threshold
        )
        assert at_threshold == pytest.approx(budget)
        above = response_time_at(
            Action.MLE, Strategy.LATE, TREE, NETWORK, latency_s=threshold * 1.01
        )
        assert above > budget

    def test_none_when_bandwidth_bound(self):
        # 2 s budget but the transfer alone takes ~45 s: hopeless.
        assert (
            max_latency_for_budget(Action.MLE, Strategy.LATE, TREE, NETWORK, 2.0)
            is None
        )

    def test_recursive_tolerates_huge_latency(self):
        threshold = max_latency_for_budget(
            Action.MLE, Strategy.RECURSIVE, TREE, NETWORK, 10.0
        )
        # Two communications: even seconds of latency are fine.
        assert threshold > 1.0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ModelError):
            max_latency_for_budget(Action.MLE, Strategy.LATE, TREE, NETWORK, 0)


class TestBandwidthBudget:
    def test_solution_is_exact(self):
        budget = 200.0
        dtr = min_bandwidth_for_budget(
            Action.MLE, Strategy.LATE, TREE, NETWORK, budget
        )
        at_threshold = response_time_at(
            Action.MLE, Strategy.LATE, TREE, NETWORK, dtr_kbit_s=dtr
        )
        assert at_threshold == pytest.approx(budget)

    def test_none_when_latency_bound(self):
        # The late MLE pays ~890 communications x 150 ms = ~133 s of pure
        # latency: a 60-second budget is unreachable at any bandwidth.
        assert (
            min_bandwidth_for_budget(Action.MLE, Strategy.LATE, TREE, NETWORK, 60.0)
            is None
        )
        # ... while the recursive query only needs a modest link.
        dtr = min_bandwidth_for_budget(
            Action.MLE, Strategy.RECURSIVE, TREE, NETWORK, 60.0
        )
        assert dtr is not None and dtr < NETWORK.dtr_kbit_s


class TestSavingThreshold:
    def test_threshold_matches_brute_force(self):
        target = 95.0
        threshold = latency_where_saving_reaches(TREE, NETWORK, target)
        assert threshold is not None

        def saving_at(latency):
            late = response_time_at(
                Action.MLE, Strategy.LATE, TREE, NETWORK, latency_s=latency
            )
            recursive = response_time_at(
                Action.MLE, Strategy.RECURSIVE, TREE, NETWORK, latency_s=latency
            )
            return saving_percent(late, recursive)

        assert saving_at(threshold) == pytest.approx(target, abs=0.01)
        assert saving_at(threshold * 1.5) > target
        if threshold > 0:
            assert saving_at(threshold * 0.5) < target

    def test_paper_grid_already_beyond_95(self):
        threshold = latency_where_saving_reaches(TREE, NETWORK, 95.0)
        assert threshold < 0.15  # table rows use 150 ms -> saving > 95 %

    def test_unreachable_target_returns_none(self):
        assert (
            latency_where_saving_reaches(TREE, NETWORK, 99.999) is None
            or latency_where_saving_reaches(TREE, NETWORK, 99.999) > 0
        )
        # Against itself no saving is ever possible.
        assert (
            latency_where_saving_reaches(
                TREE, NETWORK, 50.0, baseline=Strategy.RECURSIVE
            )
            is None
        )

    def test_invalid_target_rejected(self):
        with pytest.raises(ModelError):
            latency_where_saving_reaches(TREE, NETWORK, 0)
        with pytest.raises(ModelError):
            latency_where_saving_reaches(TREE, NETWORK, 100)

    def test_monotonicity_predicate(self):
        assert saving_is_monotone_in_latency(TREE, NETWORK)
        assert not saving_is_monotone_in_latency(
            TREE, NETWORK, baseline=Strategy.RECURSIVE, improved=Strategy.LATE
        )
