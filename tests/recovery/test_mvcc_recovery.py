"""Recovery on an MVCC build: version state rebuilds deterministically.

The commit clock is a pure function of the committed write history, so
replaying the log (or restoring a checkpoint and replaying the records
behind it) must reproduce ``MvccManager.dump()`` byte for byte — and a
snapshot opened on the recovered database must see exactly the committed
pre-crash state.
"""

from repro.recovery import Durability, SimDisk


def make_durability():
    durability = Durability(SimDisk(), db_kwargs={"mvcc": True})
    db = durability.open()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    return durability, db


class TestMvccRecovery:
    def test_clock_and_chains_rebuild_identically(self):
        durability, db = make_durability()
        with db.transaction():
            db.execute("UPDATE t SET v = 11 WHERE id = 1")
            db.execute("INSERT INTO t VALUES (3, 30)")
        db.execute("DELETE FROM t WHERE id = 2")
        before = db.mvcc.dump()
        recovered = durability.recover()
        assert recovered.mvcc.dump() == before
        # Recovery is a fixpoint: recovering again changes nothing.
        again = durability.recover()
        assert again.mvcc.dump() == before

    def test_in_flight_writes_leave_no_version_state(self):
        durability, db = make_durability()
        db.begin()
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        # No commit: the crash eats the transaction — and its versions.
        recovered = durability.recover()
        assert recovered.mvcc.chain_count() == 0
        recovered.execute("BEGIN TRANSACTION READ ONLY", session="r")
        rows = recovered.execute(
            "SELECT id, v FROM t ORDER BY id", session="r"
        ).rows
        assert rows == [(1, 10), (2, 20)]
        recovered.execute("COMMIT", session="r")

    def test_checkpoint_preserves_the_commit_clock(self):
        durability, db = make_durability()
        with db.transaction():
            db.execute("UPDATE t SET v = 11 WHERE id = 1")
        durability.checkpoint()
        with db.transaction():
            db.execute("UPDATE t SET v = 12 WHERE id = 1")
        before = db.mvcc.dump()
        recovered = durability.recover()
        assert durability.last_report.checkpoint_used
        assert recovered.mvcc.dump() == before
        assert recovered.mvcc.clock == db.mvcc.clock

    def test_snapshot_on_recovered_database_reads_committed_state(self):
        durability, db = make_durability()
        with db.transaction():
            db.execute("UPDATE t SET v = 42 WHERE id = 2")
        recovered = durability.recover()
        recovered.execute("BEGIN TRANSACTION READ ONLY", session="r")
        recovered.execute("UPDATE t SET v = 43 WHERE id = 2")
        rows = recovered.execute(
            "SELECT v FROM t WHERE id = 2", session="r"
        ).rows
        assert rows == [(42,)]
        recovered.execute("COMMIT", session="r")
        assert recovered.mvcc.chain_count() == 0

    def test_seeded_crash_chaos_rebuilds_versions(self):
        """A torn-tail crash mid-workload: the recovered version store
        must match a second recovery of the same log exactly (the
        dump-equality yardstick under actual crash damage)."""
        from repro.recovery import DiskFaultProfile

        durability, db = make_durability()
        durability.disk.arm(
            DiskFaultProfile("torn-tail", crash_at_append=9, torn=True),
            seed=3,
        )
        from repro.errors import DiskCrashed

        try:
            for value in range(100, 130):
                with db.transaction():
                    db.execute(
                        "UPDATE t SET v = ? WHERE id = 1", [value]
                    )
        except DiskCrashed:
            pass
        first = durability.recover()
        first_dump = first.mvcc.dump()
        second = durability.recover()
        assert second.mvcc.dump() == first_dump
        assert second.mvcc.chain_count() == 0
