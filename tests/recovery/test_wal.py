"""WAL record codec, scanner and writer semantics."""

import zlib

import pytest

from repro.errors import ProtocolError, WalCorruptError
from repro.recovery import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_DDL,
    KIND_DELETE,
    KIND_FENCE,
    KIND_INSERT,
    KIND_UPDATE,
    SimDisk,
    Snapshot,
    WalRecord,
    WalWriter,
    decode_payload,
    encode_record,
    scan_wal,
)
from repro.recovery.wal import (
    ColumnDef,
    IndexDef,
    TableSnapshot,
    _HEADER,
)

SAMPLE_SNAPSHOT = Snapshot(
    tables=(
        TableSnapshot(
            name="t",
            columns=(
                ColumnDef("id", "INTEGER", None, True, True),
                ColumnDef("name", "VARCHAR", 40, False, False),
            ),
            indexes=(IndexDef("t_pk", ("id",), True),),
            total_slots=5,
            rows=((0, (1, "a")), (3, (7, None))),
        ),
    ),
    views=("CREATE VIEW v AS SELECT id FROM t",),
    hwm=((9, 4), (11, 2)),
)

SAMPLE_RECORDS = [
    WalRecord(kind=KIND_BEGIN, txn_id=3),
    WalRecord(
        kind=KIND_INSERT, txn_id=3, table="t", row_id=0, row=(1, "a")
    ),
    WalRecord(
        kind=KIND_UPDATE, txn_id=3, table="t", row_id=0, row=(1, None)
    ),
    WalRecord(kind=KIND_DELETE, txn_id=3, table="t", row_id=0),
    WalRecord(kind=KIND_COMMIT, txn_id=3, origin=(12, 34)),
    WalRecord(kind=KIND_COMMIT, txn_id=4),
    WalRecord(kind=KIND_ABORT, txn_id=5),
    WalRecord(kind=KIND_DDL, sql="CREATE TABLE t (id INTEGER)"),
    WalRecord(kind=KIND_FENCE),
    WalRecord(kind=KIND_CHECKPOINT, snapshot=SAMPLE_SNAPSHOT),
]


def frame(record: WalRecord) -> bytes:
    return encode_record(record)


def payload_of(framed: bytes) -> bytes:
    return framed[_HEADER.size :]


class TestCodec:
    @pytest.mark.parametrize(
        "record", SAMPLE_RECORDS, ids=[r.kind for r in SAMPLE_RECORDS]
    )
    def test_roundtrip(self, record):
        assert decode_payload(payload_of(frame(record))) == record

    def test_trailing_garbage_rejected(self):
        payload = payload_of(frame(SAMPLE_RECORDS[0]))
        with pytest.raises(ProtocolError):
            decode_payload(payload + b"x")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"Z" + b"\x00" * 8)

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"")


class TestScan:
    def test_clean_log(self):
        data = b"".join(frame(r) for r in SAMPLE_RECORDS)
        scan = scan_wal(data)
        assert scan.records == SAMPLE_RECORDS
        assert scan.tail_status == "clean"
        assert scan.clean_length == len(data)

    def test_empty_log(self):
        scan = scan_wal(b"")
        assert scan.records == []
        assert scan.tail_status == "clean"

    def test_torn_tail_stops_cleanly(self):
        good = frame(SAMPLE_RECORDS[0]) + frame(SAMPLE_RECORDS[1])
        torn = frame(SAMPLE_RECORDS[4])[:-3]
        scan = scan_wal(good + torn)
        assert len(scan.records) == 2
        assert scan.tail_status == "torn"
        assert scan.clean_length == len(good)

    def test_corrupt_tail_stops_cleanly(self):
        good = frame(SAMPLE_RECORDS[0])
        bad = bytearray(frame(SAMPLE_RECORDS[4]))
        bad[-1] ^= 0x40  # flip a payload bit; CRC must catch it
        scan = scan_wal(good + bytes(bad))
        assert len(scan.records) == 1
        assert scan.tail_status == "corrupt"
        assert scan.clean_length == len(good)

    def test_mid_log_damage_raises_in_strict_mode(self):
        first = bytearray(frame(SAMPLE_RECORDS[1]))
        first[-1] ^= 0x01
        data = bytes(first) + frame(SAMPLE_RECORDS[4])
        with pytest.raises(WalCorruptError):
            scan_wal(data)
        # Non-strict recovers the (empty) prefix without raising.
        scan = scan_wal(data, strict=False)
        assert scan.records == []
        assert scan.tail_status == "corrupt"

    def test_crc_is_actually_checked(self):
        framed = bytearray(frame(SAMPLE_RECORDS[0]))
        # Recompute a *wrong* CRC so framing still parses.
        body = payload_of(bytes(framed))
        wrong = (zlib.crc32(body) ^ 1) & 0xFFFFFFFF
        framed[5:9] = wrong.to_bytes(4, "big")
        scan = scan_wal(bytes(framed))
        assert scan.records == []
        assert scan.tail_status == "corrupt"


class TestWriter:
    def test_lazy_begin_and_commit(self):
        disk = SimDisk()
        writer = WalWriter(disk)
        writer.log_insert(1, "t", 0, (1,))
        writer.commit(1)
        kinds = [r.kind for r in scan_wal(disk.read_all()).records]
        assert kinds == [KIND_BEGIN, KIND_INSERT, KIND_COMMIT]

    def test_read_only_transaction_appends_nothing(self):
        disk = SimDisk()
        writer = WalWriter(disk)
        writer.commit(1)
        writer.abort(2)
        assert disk.size == 0
        assert writer.appends == 0

    def test_commit_origin_updates_hwm(self):
        disk = SimDisk()
        writer = WalWriter(disk)
        writer.origin = (42, 7)
        writer.log_insert(1, "t", 0, (1,))
        writer.commit(1)
        assert writer.hwm == {42: 7}
        commit = scan_wal(disk.read_all()).records[-1]
        assert commit.origin == (42, 7)

    def test_hwm_never_regresses(self):
        disk = SimDisk()
        writer = WalWriter(disk)
        writer.hwm[42] = 9
        writer.origin = (42, 7)
        writer.log_insert(1, "t", 0, (1,))
        writer.commit(1)
        assert writer.hwm == {42: 9}

    def test_appends_after_crash_are_silently_dropped(self):
        from repro.errors import DiskCrashed
        from repro.recovery import DiskFaultProfile

        disk = SimDisk()
        disk.arm(DiskFaultProfile(name="x", crash_at_append=3))
        writer = WalWriter(disk)
        writer.log_insert(1, "t", 0, (1,))  # BEGIN + INSERT
        with pytest.raises(DiskCrashed):
            writer.log_insert(1, "t", 1, (2,))
        # Cleanup-path logging (rollbacks during eviction) must not
        # re-raise on the dead disk.
        writer.abort(1)
        writer.log_insert(1, "t", 2, (3,))
        assert disk.total_appends == 3  # attempts, the crashed one included
        assert len(scan_wal(disk.read_all()).records) == 2
