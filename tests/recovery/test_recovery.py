"""End-to-end recovery: the replayed database equals the lost one."""

import pytest

from repro.errors import DiskCrashed, DurabilityError
from repro.recovery import (
    DiskFaultProfile,
    Durability,
    SimDisk,
    scan_wal,
)


def make_durability():
    durability = Durability(SimDisk())
    db = durability.open()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    return durability, db


class TestReplay:
    def test_committed_transactions_survive(self):
        durability, db = make_durability()
        with db.transaction():
            db.execute("UPDATE t SET v = 11 WHERE id = 1")
            db.execute("INSERT INTO t VALUES (3, 30)")
        recovered = durability.recover()
        assert recovered.execute(
            "SELECT id, v FROM t ORDER BY id"
        ).rows == [(1, 11), (2, 20), (3, 30)]
        assert durability.last_report.txns_discarded == 0

    def test_in_flight_transaction_is_discarded(self):
        durability, db = make_durability()
        db.begin()
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        db.execute("INSERT INTO t VALUES (3, 30)")
        # No commit: the crash eats the transaction.
        recovered = durability.recover()
        assert recovered.execute(
            "SELECT id, v FROM t ORDER BY id"
        ).rows == [(1, 10), (2, 20)]
        report = durability.last_report
        assert report.txns_discarded == 1
        assert report.fenced

    def test_rolled_back_transaction_stays_rolled_back(self):
        durability, db = make_durability()
        db.begin()
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        db.rollback()
        recovered = durability.recover()
        assert recovered.execute(
            "SELECT v FROM t WHERE id = 1"
        ).scalar() == 10
        assert durability.last_report.txns_discarded == 0

    def test_delete_and_reinsert_replay_in_commit_order(self):
        durability, db = make_durability()
        with db.transaction():
            db.execute("DELETE FROM t WHERE id = 1")
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1, 111)")
        recovered = durability.recover()
        assert recovered.execute(
            "SELECT id, v FROM t ORDER BY id"
        ).rows == [(1, 111), (2, 20)]

    def test_ddl_and_views_replay(self):
        durability, db = make_durability()
        db.execute("CREATE VIEW big AS SELECT id FROM t WHERE v > 15")
        db.execute("CREATE INDEX t_v ON t (v)")
        recovered = durability.recover()
        assert recovered.execute("SELECT id FROM big").rows == [(2,)]
        assert durability.last_report.ddl_replayed >= 3

    def test_autocommit_statement_error_keeps_log_consistent(self):
        durability, db = make_durability()
        # Multi-row insert that fails midway: the engine applies the
        # leading rows (autocommit, no undo), so the log must agree.
        with pytest.raises(Exception):
            db.execute("INSERT INTO t VALUES (4, 40), (1, 99)")
        in_memory = db.execute("SELECT id, v FROM t ORDER BY id").rows
        recovered = durability.recover()
        assert recovered.execute(
            "SELECT id, v FROM t ORDER BY id"
        ).rows == in_memory

    def test_row_id_slots_survive_aborted_inserts(self):
        durability, db = make_durability()
        db.begin()
        db.execute("INSERT INTO t VALUES (3, 30)")  # consumes a slot
        db.rollback()
        db.execute("INSERT INTO t VALUES (4, 40)")
        with db.transaction():
            db.execute("UPDATE t SET v = 44 WHERE id = 4")
        recovered = durability.recover()
        assert recovered.execute(
            "SELECT id, v FROM t ORDER BY id"
        ).rows == [(1, 10), (2, 20), (4, 44)]

    def test_recovery_is_idempotent(self):
        durability, db = make_durability()
        with db.transaction():
            db.execute("UPDATE t SET v = 11 WHERE id = 1")
        first = durability.recover().execute(
            "SELECT id, v FROM t ORDER BY id"
        ).rows
        second = durability.recover().execute(
            "SELECT id, v FROM t ORDER BY id"
        ).rows
        assert first == second


class TestCheckpoint:
    def test_checkpoint_bounds_replay(self):
        durability, db = make_durability()
        for i in range(3, 10):
            db.execute("INSERT INTO t VALUES (?, ?)", [i, i * 10])
        durability.checkpoint()
        with db.transaction():
            db.execute("UPDATE t SET v = 0 WHERE id = 9")
        recovered = durability.recover()
        report = durability.last_report
        assert report.checkpoint_used
        # Only the post-checkpoint transaction replays as records.
        assert report.txns_committed == 1
        assert recovered.execute(
            "SELECT v FROM t WHERE id = 9"
        ).scalar() == 0
        assert recovered.execute(
            "SELECT COUNT(*) FROM t"
        ).scalar() == 9

    def test_checkpoint_requires_quiescence(self):
        durability, db = make_durability()
        db.begin()
        db.execute("UPDATE t SET v = 0 WHERE id = 1")
        with pytest.raises(DurabilityError):
            durability.checkpoint()
        db.rollback()
        durability.checkpoint()

    def test_checkpoint_restores_views_and_indexes(self):
        durability, db = make_durability()
        db.execute("CREATE VIEW big AS SELECT id FROM t WHERE v > 15")
        db.execute("CREATE INDEX t_v ON t (v)")
        durability.checkpoint()
        recovered = durability.recover()
        assert durability.last_report.checkpoint_used
        assert recovered.execute("SELECT id FROM big").rows == [(2,)]
        recovered.execute("INSERT INTO t VALUES (3, 16)")
        assert recovered.execute(
            "SELECT id FROM big ORDER BY id"
        ).rows == [(2,), (3,)]


class TestCrashTails:
    def crash_mid_commit(self, failure):
        durability, db = make_durability()
        profile = DiskFaultProfile(
            name="x",
            crash_at_append=3,  # BEGIN, UPDATE, then die on COMMIT
            torn=failure == "torn",
            corrupt=failure == "corrupt",
        )
        durability.disk.arm(profile, seed=5)
        db.begin()
        db.execute("UPDATE t SET v = 99 WHERE id = 1")
        with pytest.raises(DiskCrashed):
            db.commit()
        return durability

    @pytest.mark.parametrize("failure", ["clean", "torn", "corrupt"])
    def test_lost_commit_record_discards_the_transaction(self, failure):
        durability = self.crash_mid_commit(failure)
        recovered = durability.recover()
        report = durability.last_report
        assert recovered.execute(
            "SELECT v FROM t WHERE id = 1"
        ).scalar() == 10
        assert report.txns_discarded == 1
        if failure == "clean":
            assert report.tail_status == "clean"
        else:
            assert report.tail_status in ("torn", "corrupt")
            assert report.truncated_bytes > 0

    def test_tail_repair_truncates_the_disk(self):
        durability = self.crash_mid_commit("torn")
        before = durability.disk.size
        durability.recover()
        after = durability.disk.size
        # The torn commit prefix is gone; the fence was appended.
        assert after < before + 200
        scan = scan_wal(durability.disk.read_all())
        assert scan.tail_status == "clean"

    def test_post_recovery_commits_are_durable_again(self):
        durability = self.crash_mid_commit("torn")
        recovered = durability.recover()
        with recovered.transaction():
            recovered.execute("UPDATE t SET v = 77 WHERE id = 2")
        again = durability.recover()
        assert again.execute("SELECT v FROM t WHERE id = 2").scalar() == 77


class TestColumnarCacheAcrossRecovery:
    def test_no_pre_crash_chunks_served_after_recovery(self):
        durability = Durability(
            SimDisk(), db_kwargs={"execution_mode": "columnar"}
        )
        db = durability.open()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.executemany(
            "INSERT INTO t VALUES (?, ?)", [(i, i) for i in range(50)]
        )
        # Populate the chunk cache with a columnar scan, then mutate
        # inside a committed transaction.
        assert db.execute("SELECT COUNT(*) FROM t WHERE v >= 0").scalar() == 50
        assert db.last_executor == "columnar"
        old_storage = db.catalog.lookup("t").storage
        assert getattr(old_storage, "_columnar_cache", None) is not None
        with db.transaction():
            db.execute("UPDATE t SET v = -1 WHERE id < 10")
        recovered = durability.recover()
        # Recovery builds fresh storages: the pre-crash cache object is
        # unreachable from the new database, so no stale batch can be
        # served.
        new_storage = recovered.catalog.lookup("t").storage
        assert new_storage is not old_storage
        assert getattr(new_storage, "_columnar_cache", None) is None
        result = recovered.execute("SELECT COUNT(*) FROM t WHERE v >= 0")
        assert result.scalar() == 40
        assert recovered.last_executor == "columnar"
