"""The crash-chaos simulator: determinism and durability invariants."""

import pytest

from repro.errors import DurabilityError
from repro.recovery import (
    CRASH_FAILURES,
    CrashChaosSim,
    CrashConfig,
    report_json,
    run_crash_chaos,
    run_crash_sweep,
    sweep_profiles,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashConfig(clients=0)
        with pytest.raises(ValueError):
            CrashConfig(failure="meteor")
        with pytest.raises(ValueError):
            CrashConfig(crash_at_append=0)

    def test_profile_requires_a_crash_point(self):
        with pytest.raises(ValueError):
            CrashConfig().profile()
        profile = CrashConfig(crash_at_append=3, failure="torn").profile()
        assert profile.crash_at_append == 3
        assert profile.torn


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        config = CrashConfig(crash_at_append=6, failure="corrupt", seed=9)
        first = CrashChaosSim(config).run()
        second = CrashChaosSim(config).run()
        assert report_json(first) == report_json(second)

    def test_different_seeds_differ(self):
        reports = [
            CrashChaosSim(
                CrashConfig(crash_at_append=6, failure="clean", seed=seed)
            ).run()["schedule"]["hash"]
            for seed in (1, 2)
        ]
        assert reports[0] != reports[1]


class TestInvariants:
    @pytest.mark.parametrize("failure", CRASH_FAILURES)
    def test_no_lost_no_resurrected(self, failure):
        report = run_crash_chaos(
            CrashConfig(crash_at_append=8, failure=failure, seed=4)
        )
        assert report["crash"]["occurred"]
        assert report["restarts"] >= 1
        assert report["lost_committed"] == []
        assert report["resurrected"] == 0
        assert report["final_recovery_fixpoint"]
        # Everything every client acked is on disk, and the counters add
        # up to exactly two increments per applied transaction.
        assert report["acked_txns"] <= report["applied_txns"]
        assert report["counter_sum"] == 2 * report["applied_txns"]

    def test_all_clients_finish_their_quota(self):
        config = CrashConfig(
            clients=2, txns_per_client=4, crash_at_append=5, seed=11
        )
        report = run_crash_chaos(config)
        assert report["acked_txns"] == 8

    def test_no_crash_run_is_quiet(self):
        report = run_crash_chaos(CrashConfig(seed=2))
        assert not report["crash"]["occurred"]
        assert report["restarts"] == 0
        assert report["counts"]["crash_observations"] == 0
        assert report["lost_committed"] == []
        assert report["resurrected"] == 0


class TestSweep:
    def test_grid_covers_at_least_fifty_profiles(self):
        assert len(sweep_profiles()) >= 50
        assert {failure for __, failure in sweep_profiles()} == set(
            CRASH_FAILURES
        )

    def test_reduced_sweep_holds_invariants(self):
        summary = run_crash_sweep(seed=1, max_crash_at=3)
        assert summary["profiles"] == 9
        assert summary["all_invariants_held"]
        assert {run["failure"] for run in summary["runs"]} == set(
            CRASH_FAILURES
        )

    def test_sweep_raises_on_violation(self, monkeypatch):
        import repro.recovery.chaos as chaos

        def broken(config):
            report = CrashChaosSim(config).run()
            report["resurrected"] = 3
            return report

        monkeypatch.setattr(chaos, "run_crash_chaos", broken)
        with pytest.raises(DurabilityError):
            chaos.run_crash_sweep(seed=1, max_crash_at=1)
