"""Server crash()/restart(): eviction, recovery, at-most-once, retries."""

import pytest

from repro.concurrency import LockManager, SessionManager
from repro.errors import (
    DiskCrashed,
    DuplicateRequest,
    DurabilityError,
    ServerUnavailable,
    SessionError,
)
from repro.network.clock import SimulatedClock
from repro.network.faults import RetryPolicy
from repro.network.link import NetworkLink
from repro.recovery import DiskFaultProfile, Durability, SimDisk
from repro.server import protocol
from repro.server.client import RemoteConnection
from repro.server.protocol import Opcode
from repro.server.server import DatabaseServer


def make_stack(clients=2, crash_at=None, failure="clean"):
    clock = SimulatedClock()
    durability = Durability(SimDisk())
    db = durability.open()
    db.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, balance INTEGER)")
    db.execute("INSERT INTO acct VALUES (1, 100), (2, 200)")
    durability.checkpoint()
    if crash_at is not None:
        durability.disk.arm(
            DiskFaultProfile(
                name=f"crash@{crash_at}",
                crash_at_append=crash_at,
                torn=failure == "torn",
                corrupt=failure == "corrupt",
            ),
            seed=3,
        )
    locks = LockManager(clock=clock)
    sessions = SessionManager(db, locks)
    server = DatabaseServer(db, sessions=sessions, durability=durability)
    connections = [
        RemoteConnection(
            server, NetworkLink(latency_s=0.01, dtr_kbit_s=512, clock=clock)
        )
        for __ in range(clients)
    ]
    return server, sessions, connections


class TestCrash:
    def test_crash_evicts_sessions_and_refuses_requests(self):
        server, sessions, (a, b) = make_stack()
        a.open_session()
        b.open_session()
        server.crash()
        assert sessions.open_count == 0
        assert sessions.statistics["evicted"] == 2
        with pytest.raises(ServerUnavailable):
            a.execute("SELECT 1")
        assert server.statistics["unavailable_refusals"] >= 1

    def test_crash_releases_locks_of_dead_sessions(self):
        server, sessions, (a, b) = make_stack()
        a.begin()
        a.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        server.crash()
        server.restart()
        # b can immediately take the lock the dead session held.
        b.begin()
        b.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        b.commit()

    def test_disk_crash_during_commit_crashes_the_server(self):
        server, sessions, (a, b) = make_stack(crash_at=3)
        a.begin()
        a.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        with pytest.raises(ServerUnavailable):
            a.commit()  # the commit append is the crash point
        assert server.crashed
        assert server.statistics["crashes"] == 1

    def test_crash_is_idempotent(self):
        server, __, __c = make_stack()
        server.crash()
        server.crash()
        assert server.statistics["crashes"] == 1

    def test_restart_without_durability_bundle_fails(self):
        db_server = DatabaseServer(make_stack()[0].database)
        with pytest.raises(DurabilityError):
            db_server.restart()


class TestRestart:
    def test_restart_replays_committed_work(self):
        server, sessions, (a, b) = make_stack()
        a.begin()
        a.execute("UPDATE acct SET balance = 42 WHERE id = 1")
        a.commit()
        old_db = server.database
        server.crash()
        new_db = server.restart()
        assert new_db is not old_db
        assert server.database is new_db
        assert sessions.database is new_db
        assert new_db.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 42
        assert server.statistics["recoveries"] == 1

    def test_in_flight_transaction_dies_with_the_crash(self):
        server, __, (a, b) = make_stack()
        a.begin()
        a.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        server.crash()
        server.restart()
        assert server.database.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 100

    def test_evicted_client_gets_session_error_not_default_session(self):
        server, __, (a, b) = make_stack()
        a.begin()
        server.crash()
        server.restart()
        # The client still believes its session is open; its statement
        # must fail loudly instead of running autocommit on the default
        # session.
        with pytest.raises(SessionError):
            a.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        # After reopening, work proceeds normally.
        a.mark_session_lost()
        a.begin()
        a.execute("UPDATE acct SET balance = 7 WHERE id = 1")
        a.commit()
        assert server.database.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 7


class TestAtMostOnceAcrossRestart:
    def commit_frame(self, connection, seq):
        inner = protocol.encode_envelope(
            Opcode.TXN_COMMIT,
            protocol.encode_session_op(connection.client_id),
        )
        return protocol.encode_envelope(
            Opcode.SEQUENCED,
            protocol.encode_sequenced(connection.client_id, seq, inner),
        )

    def test_commit_retransmission_suppressed_by_durable_hwm(self):
        server, __, (a, b) = make_stack()
        a.begin()
        a.execute("UPDATE acct SET balance = 55 WHERE id = 1")
        a.commit()
        committed_seq = next(a._seq) - 1  # the commit's sequence number
        server.crash()
        server.restart()
        # Retransmit the very same commit frame: the restart wiped the
        # replay cache, but the durable high-water mark (rebuilt from
        # commit-record origins) still recognises the sequence number.
        response = server.handle(self.commit_frame(a, committed_seq))
        opcode, body = protocol.decode_envelope(response)
        assert opcode is Opcode.SEQUENCED_RESULT
        __, __seq, inner = protocol.decode_sequenced(body)
        inner_op, inner_body = protocol.decode_envelope(inner)
        assert inner_op is Opcode.ERROR
        kind, __msg = protocol.decode_error(inner_body)
        assert kind == "DuplicateRequest"
        assert server.statistics["hwm_suppressed"] == 1
        # The commit applied exactly once.
        assert server.database.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 55

    def test_client_treats_duplicate_commit_answer_as_success(self):
        server, __, (a, b) = make_stack()
        a.begin()
        a.execute("UPDATE acct SET balance = 55 WHERE id = 1")
        a.commit()
        server.crash()
        server.restart()
        # Simulate the ambiguous-commit retry: the client re-sends the
        # commit with its already-used sequence number.
        a._seq = iter([next(a._seq) - 1])
        a._session_open = True
        a.commit()  # DuplicateRequest swallowed: the commit is durable

    def test_hwm_survives_checkpoint(self):
        server, __, (a, b) = make_stack()
        a.begin()
        a.execute("UPDATE acct SET balance = 55 WHERE id = 1")
        a.commit()
        committed_seq = next(a._seq) - 1
        a.close_session()
        server.durability.checkpoint()
        server.crash()
        server.restart()
        response = server.handle(self.commit_frame(a, committed_seq))
        __, body = protocol.decode_envelope(response)
        __, __seq, inner = protocol.decode_sequenced(body)
        inner_op, inner_body = protocol.decode_envelope(inner)
        kind, __msg = protocol.decode_error(inner_body)
        assert kind == "DuplicateRequest"

    def test_crashing_request_is_not_cached(self):
        """The response of the request that crashed the server must not
        poison the replay cache: its retransmission after restart has to
        execute (or be hwm-suppressed), not echo 'unavailable'."""
        server, __, (a, b) = make_stack(crash_at=3)
        a.begin()
        a.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        with pytest.raises(ServerUnavailable):
            a.commit()
        crashed_seq = next(a._seq) - 1
        server.restart()
        response = server.handle(self.commit_frame(a, crashed_seq))
        __, body = protocol.decode_envelope(response)
        __, __seq, inner = protocol.decode_sequenced(body)
        inner_op, inner_body = protocol.decode_envelope(inner)
        assert inner_op is Opcode.ERROR
        kind, __msg = protocol.decode_error(inner_body)
        # The commit never hit the disk, the session is gone: the right
        # answer is SessionError, never the cached 'unavailable'.
        assert kind == "SessionError"


class TestRunTransactionAcrossRestart:
    def test_retry_loop_redrives_after_manual_restart(self):
        from repro.errors import TimeoutError

        server, __, (a, b) = make_stack(crash_at=3)

        def increment(connection):
            connection.execute(
                "UPDATE acct SET balance = balance + 1 WHERE id = 2"
            )
            return True

        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.01)
        # The commit append crashes the server; with nobody rebooting it
        # the retry loop gives up cleanly instead of wedging.
        with pytest.raises(TimeoutError):
            a.run_transaction(increment, retry_policy=policy)
        assert server.crashed
        server.restart()
        # After the reboot the same loop re-drives the transaction: the
        # crashed attempt's commit never hit the disk, so exactly one
        # increment lands.
        assert a.run_transaction(increment, retry_policy=policy)
        assert server.database.execute(
            "SELECT balance FROM acct WHERE id = 2"
        ).scalar() == 201

    def test_stats_expose_wal_counters(self):
        server, __, (a, b) = make_stack()
        a.begin()
        a.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        a.commit()
        stats = a.server_stats()
        assert stats["wal_appends"] >= 3
        assert stats["wal_commits"] >= 1
