"""Fuzzing the WAL reader: damaged logs must fail *distinguishably*.

Whatever bytes are on the disk after a crash, ``scan_wal`` must either
return a clean prefix of intact records or raise ``WalCorruptError``
(mid-log damage) — never any other exception, and never a silently
wrong prefix: every record it returns must byte-round-trip, and damage
confined to the tail must never raise.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, WalCorruptError
from repro.recovery import (
    KIND_COMMIT,
    KIND_INSERT,
    WalRecord,
    decode_payload,
    encode_record,
    scan_wal,
)

arbitrary_bytes = st.binary(max_size=400)

values = st.one_of(
    st.none(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.text(max_size=12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)

records = st.one_of(
    st.builds(
        WalRecord,
        kind=st.just(KIND_INSERT),
        txn_id=st.integers(min_value=1, max_value=2**40),
        table=st.just("t"),
        row_id=st.integers(min_value=0, max_value=2**32 - 1),
        row=st.tuples(values, values),
    ),
    st.builds(
        WalRecord,
        kind=st.just(KIND_COMMIT),
        txn_id=st.integers(min_value=1, max_value=2**40),
    ),
)

logs = st.lists(records, max_size=6).map(
    lambda rs: (rs, b"".join(encode_record(r) for r in rs))
)


def scan_must_fail_cleanly(data):
    """The only acceptable outcomes: a scan result or WalCorruptError."""
    try:
        return scan_wal(data)
    except WalCorruptError:
        return None


class TestArbitraryBytes:
    @given(arbitrary_bytes)
    @settings(max_examples=300, deadline=None)
    def test_garbage_never_escapes(self, data):
        scan = scan_must_fail_cleanly(data)
        if scan is not None:
            assert scan.clean_length <= len(data)

    @given(arbitrary_bytes)
    @settings(max_examples=300, deadline=None)
    def test_decode_payload_raises_protocol_error_only(self, data):
        try:
            decode_payload(data)
        except ProtocolError:
            pass


class TestDamagedLogs:
    @given(logs)
    @settings(max_examples=200, deadline=None)
    def test_intact_log_roundtrips(self, log):
        records_in, data = log
        scan = scan_wal(data)
        assert scan.records == records_in
        assert scan.tail_status == "clean"
        assert scan.clean_length == len(data)

    @given(logs, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_truncation_recovers_a_prefix(self, log, cut):
        records_in, data = log
        cut = min(cut, len(data))
        scan = scan_wal(data[:cut])
        # Never an exception: truncation is tail damage by construction.
        assert scan.records == records_in[: len(scan.records)]
        if scan.clean_length < cut:
            assert scan.tail_status in ("torn", "corrupt")

    @given(logs, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_bit_flip_is_detected_or_mid_log(self, log, position):
        records_in, data = log
        if not data:
            return
        position %= len(data)
        damaged = bytearray(data)
        damaged[position] ^= 0x10
        scan = scan_must_fail_cleanly(bytes(damaged))
        if scan is None:
            return  # mid-log damage, loudly refused — acceptable
        # The recovered prefix must consist of byte-identical original
        # records (a flipped bit may only cost records, never alter one
        # undetected ... except inside fields the CRC covers, which it
        # always does).
        assert scan.records == records_in[: len(scan.records)]

    @given(logs, arbitrary_bytes)
    @settings(max_examples=200, deadline=None)
    def test_garbage_tail_preserves_the_prefix(self, log, garbage):
        records_in, data = log
        scan = scan_must_fail_cleanly(data + garbage)
        if scan is None:
            return  # resync found an intact record inside the garbage
        assert scan.records[: len(records_in)] == records_in
