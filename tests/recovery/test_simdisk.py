"""The simulated disk: append-only bytes with seeded fault injection."""

import pytest

from repro.errors import DiskCrashed, DurabilityError
from repro.recovery import PERFECT_DISK, DiskFaultProfile, SimDisk


class TestProfileValidation:
    def test_perfect_profile(self):
        assert PERFECT_DISK.perfect
        assert not DiskFaultProfile(name="x", crash_at_append=1).perfect

    def test_crash_at_append_must_be_positive(self):
        with pytest.raises(DurabilityError):
            DiskFaultProfile(name="x", crash_at_append=0)

    def test_torn_and_corrupt_are_exclusive(self):
        with pytest.raises(DurabilityError):
            DiskFaultProfile(
                name="x", crash_at_append=1, torn=True, corrupt=True
            )

    def test_damage_requires_crash_point(self):
        with pytest.raises(DurabilityError):
            DiskFaultProfile(name="x", torn=True)


class TestAppend:
    def test_appends_accumulate(self):
        disk = SimDisk()
        disk.append(b"aaa")
        disk.append(b"bbbb")
        assert disk.read_all() == b"aaabbbb"
        assert disk.size == 7
        assert disk.total_appends == 2

    def test_clean_crash_leaves_nothing_of_the_victim(self):
        disk = SimDisk()
        disk.append(b"before")
        disk.arm(DiskFaultProfile(name="x", crash_at_append=2))
        disk.append(b"first")
        with pytest.raises(DiskCrashed):
            disk.append(b"victim")
        assert disk.crashed
        assert disk.read_all() == b"beforefirst"

    def test_crashed_disk_rejects_further_appends(self):
        disk = SimDisk()
        disk.arm(DiskFaultProfile(name="x", crash_at_append=1))
        with pytest.raises(DiskCrashed):
            disk.append(b"victim")
        with pytest.raises(DiskCrashed):
            disk.append(b"more")

    def test_torn_crash_leaves_a_proper_prefix(self):
        disk = SimDisk(seed=7)
        disk.arm(DiskFaultProfile(name="x", crash_at_append=1, torn=True))
        with pytest.raises(DiskCrashed):
            disk.append(b"0123456789")
        tail = disk.read_all()
        assert 1 <= len(tail) < 10
        assert b"0123456789".startswith(tail)

    def test_corrupt_crash_flips_exactly_one_bit(self):
        disk = SimDisk(seed=7)
        disk.arm(DiskFaultProfile(name="x", crash_at_append=1, corrupt=True))
        with pytest.raises(DiskCrashed):
            disk.append(b"0123456789")
        tail = disk.read_all()
        assert len(tail) == 10
        differing = [
            bin(a ^ b).count("1") for a, b in zip(tail, b"0123456789")
        ]
        assert sum(differing) == 1

    def test_damage_is_deterministic_per_seed(self):
        tails = []
        for __ in range(2):
            disk = SimDisk()
            disk.arm(
                DiskFaultProfile(name="x", crash_at_append=1, torn=True),
                seed=123,
            )
            with pytest.raises(DiskCrashed):
                disk.append(b"0123456789")
            tails.append(disk.read_all())
        assert tails[0] == tails[1]


class TestReopenTruncate:
    def test_reopen_clears_the_crash_and_the_profile(self):
        disk = SimDisk()
        disk.arm(DiskFaultProfile(name="x", crash_at_append=1))
        with pytest.raises(DiskCrashed):
            disk.append(b"victim")
        disk.reopen()
        assert not disk.crashed
        disk.append(b"after")
        assert disk.read_all() == b"after"

    def test_truncate_discards_the_damaged_tail(self):
        disk = SimDisk()
        disk.append(b"keepme")
        disk.append(b"dropme")
        disk.truncate(6)
        assert disk.read_all() == b"keepme"

    def test_truncate_cannot_extend(self):
        disk = SimDisk()
        disk.append(b"abc")
        with pytest.raises(DurabilityError):
            disk.truncate(4)

    def test_rearm_resets_the_append_countdown(self):
        disk = SimDisk()
        profile = DiskFaultProfile(name="x", crash_at_append=2)
        disk.arm(profile)
        disk.append(b"one")
        disk.arm(profile)  # countdown restarts
        disk.append(b"two")
        with pytest.raises(DiskCrashed):
            disk.append(b"three")
