"""Span trees on the simulated clock: nesting, attribution, exactness."""

import pytest

from repro.network.clock import SimulatedClock
from repro.obs import TraceRecorder, instrument_stack, maybe_span


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def recorder(clock):
    recorder = TraceRecorder(clock=clock)
    clock.observer = recorder
    return recorder


class TestSpanTree:
    def test_nesting_builds_children(self, recorder, clock):
        with recorder.span("outer"):
            clock.advance(1.0, "latency")
            with recorder.span("inner"):
                clock.advance(0.5, "transfer")
        (root,) = recorder.roots
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner"]
        assert root.duration == pytest.approx(1.5)
        assert root.children[0].duration == pytest.approx(0.5)

    def test_advance_credits_innermost_span_only(self, recorder, clock):
        with recorder.span("outer"):
            clock.advance(1.0, "latency")
            with recorder.span("inner"):
                clock.advance(0.5, "latency")
        (root,) = recorder.roots
        assert root.components == {"latency": 1.0}
        assert root.children[0].components == {"latency": 0.5}
        assert root.total_components() == {"latency": 1.5}

    def test_component_sum_equals_root_duration_exactly(
        self, recorder, clock
    ):
        """The invariant the whole layer exists for: no simulated second
        can go missing or be double-counted."""
        with recorder.span("root"):
            clock.advance(0.1, "latency")
            with recorder.span("a"):
                clock.advance(0.2, {"latency": 0.15, "transfer": 0.05})
            clock.advance(0.3)  # unattributed
        (root,) = recorder.roots
        totals = root.total_components()
        assert sum(totals.values()) == pytest.approx(
            root.duration, abs=1e-12
        )
        assert totals["unattributed"] == pytest.approx(0.3)

    def test_dict_component_splits_one_advance(self, recorder, clock):
        with recorder.span("s"):
            clock.advance(1.0, {"latency": 0.4, "transfer": 0.6})
        (root,) = recorder.roots
        assert root.components == {"latency": 0.4, "transfer": 0.6}

    def test_advances_outside_any_span_are_dropped(self, recorder, clock):
        clock.advance(5.0, "latency")
        assert recorder.roots == []

    def test_events_and_annotations_attach_to_current(self, recorder, clock):
        with recorder.span("s"):
            clock.advance(1.0)
            recorder.event("fault.drop", target="request")
            recorder.annotate(opcode="QUERY")
        (root,) = recorder.roots
        assert root.meta["opcode"] == "QUERY"
        ((at, message, data),) = root.events
        assert at == pytest.approx(1.0)
        assert message == "fault.drop"
        assert data == {"target": "request"}

    def test_exception_closes_span_and_records_error(self, recorder, clock):
        with pytest.raises(ValueError):
            with recorder.span("s"):
                clock.advance(1.0)
                raise ValueError("boom")
        (root,) = recorder.roots
        assert root.end is not None
        assert root.meta["error"] == "ValueError"
        assert recorder.current is None

    def test_find_root_returns_most_recent(self, recorder):
        with recorder.span("op"):
            pass
        with recorder.span("op"):
            pass
        assert recorder.find_root("op") is recorder.roots[-1]
        assert recorder.find_root("missing") is None

    def test_to_dict_is_json_exportable(self, recorder, clock):
        import json

        with recorder.span("s", kind="test", tag=1):
            clock.advance(1.0, "latency")
            recorder.event("e", n=2)
        json.dumps(recorder.roots[0].to_dict())

    def test_reset_drops_everything(self, recorder, clock):
        with recorder.span("s"):
            clock.advance(1.0)
        recorder.metrics.counter("c").inc()
        recorder.reset()
        assert recorder.roots == []
        assert recorder.metrics.counters == {}


class TestMaybeSpan:
    def test_none_recorder_is_noop(self, clock):
        with maybe_span(None, "s") as span:
            assert span is None
        clock.advance(1.0)  # no observer, nothing breaks

    def test_recorder_opens_real_span(self, recorder):
        with maybe_span(recorder, "s", kind="k", a=1) as span:
            assert span is recorder.current
        assert recorder.roots[0].meta == {"a": 1}


class TestInstrumentStack:
    def test_binds_clock_and_layers(self):
        from repro.network.link import NetworkLink

        link = NetworkLink(latency_s=0.1, dtr_kbit_s=512)
        recorder = TraceRecorder()
        instrument_stack(recorder, link=link)
        assert recorder.clock is link.clock
        assert link.clock.observer is recorder
        assert link.recorder is recorder
        with recorder.span("transmit"):
            link.transmit(1000, is_request=True)
        (root,) = recorder.roots
        assert root.components["latency"] == pytest.approx(0.1)
        assert sum(root.components.values()) == pytest.approx(
            root.duration, abs=1e-12
        )


class TestMvccMetrics:
    def test_readonly_txn_counters_reach_the_recorder(self, recorder):
        from repro.sqldb import Database

        db = Database(mvcc=True)
        db.recorder = recorder
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 10)")
        db.execute("BEGIN TRANSACTION READ ONLY", session="r")
        db.execute("SELECT v FROM t WHERE id = 1", session="r")
        db.execute("COMMIT", session="r")
        assert recorder.metrics.counter("db.readonly_txns").value == 1
        assert recorder.metrics.counter("db.snapshot_reads").value >= 1
