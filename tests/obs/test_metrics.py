"""The metrics registry: monotonic counters and fixed-bucket histograms."""

import pytest

from repro.errors import ReproError
from repro.obs import (
    BYTES_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    ROWS_BUCKETS,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ReproError):
            counter.inc(-1)
        assert counter.value == 0


class TestHistogram:
    def test_bucketing_is_inclusive_upper_bound(self):
        histogram = Histogram("h", (1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        assert histogram.counts == [2, 2, 1]  # le_1, le_10, overflow
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 11.0
        assert histogram.mean == pytest.approx(27.5 / 5)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ReproError):
            Histogram("h", (10.0, 1.0))
        with pytest.raises(ReproError):
            Histogram("h", ())

    def test_to_dict_shape(self):
        histogram = Histogram("h", (1.0,))
        histogram.observe(0.5)
        data = histogram.to_dict()
        assert data["count"] == 1
        assert data["buckets"] == {"le_1": 1, "overflow": 0}

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", (1.0,)).mean == 0.0


class TestHistogramQuantiles:
    def test_empty_histogram_quantile_is_none(self):
        assert Histogram("h", (1.0,)).quantile(0.5) is None

    def test_out_of_range_q_rejected(self):
        histogram = Histogram("h", (1.0,))
        histogram.observe(0.5)
        with pytest.raises(ReproError):
            histogram.quantile(-0.1)
        with pytest.raises(ReproError):
            histogram.quantile(1.1)

    def test_single_observation_every_quantile(self):
        histogram = Histogram("h", (1.0, 10.0))
        histogram.observe(3.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert histogram.quantile(q) == 3.0

    def test_q_zero_is_observed_min_q_one_is_observed_max(self):
        histogram = Histogram("h", (1.0, 10.0, 100.0))
        for value in (2.0, 7.0, 40.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 2.0
        assert histogram.quantile(1.0) == 40.0

    def test_all_observations_in_one_bucket_stay_clamped(self):
        # A wide bucket (10, 100] must not interpolate outside the data.
        histogram = Histogram("h", (10.0, 100.0))
        for value in (50.0, 51.0, 52.0):
            histogram.observe(value)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert 50.0 <= histogram.quantile(q) <= 52.0

    def test_observed_min_of_zero_beats_bucket_edge_fallback(self):
        # Regression: "self.min or 0.0" treated an observed 0.0 minimum
        # as missing; the contract is q=0 -> observed min, always.
        histogram = Histogram("h", (1.0, 10.0))
        histogram.observe(0.0)
        histogram.observe(0.5)
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 0.5
        assert 0.0 <= histogram.quantile(0.5) <= 0.5

    def test_interpolates_inside_a_bucket(self):
        histogram = Histogram("h", (0.0, 100.0))
        for value in (10.0, 20.0, 30.0, 90.0):
            histogram.observe(value)
        # All four fall in (0, 100]; the estimate interpolates linearly
        # across that bucket and stays inside the observed range.
        p50 = histogram.quantile(0.5)
        assert 10.0 <= p50 <= 90.0

    def test_quantiles_clamped_to_observed_extremes(self):
        histogram = Histogram("h", (0.0, 1000.0))
        histogram.observe(5.0)
        histogram.observe(7.0)
        assert histogram.quantile(0.99) <= 7.0
        assert histogram.quantile(0.01) >= 5.0

    def test_quantiles_are_monotonic(self):
        histogram = Histogram("h", (1.0, 10.0, 100.0))
        for value in (0.5, 2.0, 3.0, 40.0, 90.0, 400.0):
            histogram.observe(value)
        p50 = histogram.quantile(0.5)
        p95 = histogram.quantile(0.95)
        p99 = histogram.quantile(0.99)
        assert p50 <= p95 <= p99 <= histogram.max

    def test_to_dict_includes_percentiles(self):
        histogram = Histogram("h", (1.0, 10.0))
        data = histogram.to_dict()
        assert data["p50"] is None  # empty
        histogram.observe(2.0)
        data = histogram.to_dict()
        assert set(("p50", "p95", "p99")) <= set(data)
        assert data["p50"] == 2.0


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counter("a").value == 2

    def test_histogram_existing_bounds_win(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", BYTES_BUCKETS)
        again = registry.histogram("h", ROWS_BUCKETS)
        assert again is first
        assert again.bounds == tuple(float(b) for b in BYTES_BUCKETS)

    def test_to_dict_sorted_and_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.histogram("h", (1.0,)).observe(0.5)
        data = registry.to_dict()
        assert list(data["counters"]) == ["a", "b"]
        json.dumps(data)  # must be serialisable as exported
