"""The metrics registry: monotonic counters and fixed-bucket histograms."""

import pytest

from repro.errors import ReproError
from repro.obs import (
    BYTES_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    ROWS_BUCKETS,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ReproError):
            counter.inc(-1)
        assert counter.value == 0


class TestHistogram:
    def test_bucketing_is_inclusive_upper_bound(self):
        histogram = Histogram("h", (1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            histogram.observe(value)
        assert histogram.counts == [2, 2, 1]  # le_1, le_10, overflow
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 11.0
        assert histogram.mean == pytest.approx(27.5 / 5)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ReproError):
            Histogram("h", (10.0, 1.0))
        with pytest.raises(ReproError):
            Histogram("h", ())

    def test_to_dict_shape(self):
        histogram = Histogram("h", (1.0,))
        histogram.observe(0.5)
        data = histogram.to_dict()
        assert data["count"] == 1
        assert data["buckets"] == {"le_1": 1, "overflow": 0}

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", (1.0,)).mean == 0.0


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counter("a").value == 2

    def test_histogram_existing_bounds_win(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", BYTES_BUCKETS)
        again = registry.histogram("h", ROWS_BUCKETS)
        assert again is first
        assert again.bounds == tuple(float(b) for b in BYTES_BUCKETS)

    def test_to_dict_sorted_and_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.histogram("h", (1.0,)).observe(0.5)
        data = registry.to_dict()
        assert list(data["counters"]) == ["a", "b"]
        json.dumps(data)  # must be serialisable as exported
