#!/usr/bin/env python
"""The DaimlerChrysler scenario: clients in Brazil, PDM server in Germany.

Reproduces the paper's motivating observation end to end: the same
multi-level expand that is unremarkable on the local network becomes a
half-hour ordeal over an intercontinental WAN — unless the client compiles
it into a single recursive query.

Run:  python examples/worldwide_expand.py          (takes ~1 minute)
      python examples/worldwide_expand.py --small  (seconds)
"""

import sys

from repro import ExpandStrategy, build_scenario
from repro.bench.measure import price_traffic
from repro.model import NetworkParameters, TreeParameters
from repro.network import LAN, PAPER_PROFILES, WAN_256


def main() -> None:
    if "--small" in sys.argv:
        tree = TreeParameters(depth=4, branching=3, visibility=0.6)
    else:
        # The paper's scenario 2: δ=9, κ=3 — 29 523 objects.
        tree = TreeParameters(depth=9, branching=3, visibility=0.6)
    print(f"building product ({tree.label}) ...")
    scenario = build_scenario(tree, WAN_256, seed=7)
    product = scenario.product
    print(f"{product.node_count} objects loaded; "
          f"{product.visible_node_count} visible to the user\n")

    # Run each strategy ONCE over the simulated WAN; the recorded traffic
    # trace is then re-priced for every site profile (the simulator's
    # response time is linear in messages and bytes).
    root_attrs = product.root_attributes()
    traces = {}
    for strategy in ExpandStrategy:
        result = scenario.client.multi_level_expand(
            product.root_obid, strategy, root_attrs=root_attrs
        )
        traces[strategy] = result
        print(f"measured {strategy.value}: {result.round_trips} round trips, "
              f"{result.traffic.payload_bytes / 1024:.0f} KiB")

    profiles = [LAN] + list(PAPER_PROFILES)
    print(f"\n{'site link':<12}" + "".join(
        f"{strategy.value:>22}" for strategy in ExpandStrategy
    ))
    for profile in profiles:
        network = NetworkParameters(
            latency_s=profile.latency_s, dtr_kbit_s=profile.dtr_kbit_s
        )
        row = f"{profile.name:<12}"
        for strategy in ExpandStrategy:
            seconds = price_traffic(traces[strategy].traffic, network)
            row += f"{_fmt(seconds):>22}"
        print(row)

    print(
        "\nReading: on the LAN nobody notices the navigational access; on "
        "the Germany-Brazil link (WAN-256) only the recursive query keeps "
        "the expand interactive."
    )


def _fmt(seconds: float) -> str:
    if seconds >= 60:
        return f"{seconds / 60:.1f} min"
    return f"{seconds:.2f} s"


if __name__ == "__main__":
    main()
