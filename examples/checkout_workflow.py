#!/usr/bin/env python
"""Check-out / check-in over the WAN (paper Section 6).

The check-out action "cannot be represented in one single query": the
subtree must be retrieved (with the all-checked-in ∀rows rule of paper
example 2) and the checked-out flags must be updated.  This script runs
both deployment modes and provokes a conflict:

* TWO_PHASE — the client orchestrates: 1 recursive fetch + 2 UPDATEs.
* SERVER_PROCEDURE — the whole operation is installed at the server and
  costs a single round trip ("application-specific functionality ... has
  to be installed at the database server").

Run:  python examples/checkout_workflow.py
"""

from repro import CheckOutMode, build_scenario
from repro.errors import CheckOutError
from repro.model import TreeParameters
from repro.network import WAN_256
from repro.rules import Actions, Rule
from repro.rules.conditions import Attribute, Comparison, Const, ForAllRows


def main() -> None:
    scenario = build_scenario(
        TreeParameters(depth=3, branching=3, visibility=1.0), WAN_256, seed=4
    )
    # Paper example 2: every user may check out a subtree only if all of
    # its nodes are checked in.
    scenario.rule_table.add(
        Rule(
            user="*",
            action=Actions.CHECK_OUT,
            object_type="assy",
            condition=ForAllRows(
                Comparison("=", Attribute("checkedout"), Const(False))
            ),
            name="example-2",
        )
    )
    product = scenario.product
    root_attrs = product.root_attributes()
    scott = scenario.client
    mike = scenario.fresh_client(user="mike")

    # Pick the root's first child as a mid-level subtree for mike.
    subtree_root = product.children[product.root_obid][0][1]

    print("1) mike checks out a subtree (server procedure, 1 round trip)")
    result = mike.check_out(subtree_root, CheckOutMode.SERVER_PROCEDURE)
    print(f"   checked out {len(result.checked_out)} objects "
          f"in {result.seconds:.2f} s simulated\n")

    print("2) scott tries to check out the WHOLE product (two-phase)")
    try:
        scott.check_out(
            product.root_obid, CheckOutMode.TWO_PHASE, root_attrs=root_attrs
        )
    except CheckOutError as error:
        print(f"   denied, as the example-2 rule demands: {error}\n")

    print("3) mike checks his subtree back in")
    result = mike.check_in(subtree_root, CheckOutMode.SERVER_PROCEDURE)
    print(f"   released {len(result.checked_out)} objects\n")

    print("4) now scott's check-out succeeds; compare both modes:")
    two_phase = scott.check_out(
        product.root_obid, CheckOutMode.TWO_PHASE, root_attrs=root_attrs
    )
    scott.check_in(product.root_obid, CheckOutMode.TWO_PHASE)
    procedure = scott.check_out(
        product.root_obid, CheckOutMode.SERVER_PROCEDURE
    )
    scott.check_in(product.root_obid, CheckOutMode.SERVER_PROCEDURE)
    print(f"   two-phase:        {two_phase.round_trips} round trips, "
          f"{two_phase.seconds:.2f} s simulated")
    print(f"   server procedure: {procedure.round_trips} round trip,  "
          f"{procedure.seconds:.2f} s simulated")
    saving = 100 * (1 - procedure.seconds / two_phase.seconds)
    print(f"   function shipping saves {saving:.0f} % "
          f"on this {scenario.profile}")


if __name__ == "__main__":
    main()
