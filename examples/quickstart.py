#!/usr/bin/env python
"""Quickstart: build a product, put a WAN between client and server, and
watch the paper's three strategies retrieve the same tree at very
different costs.

Run:  python examples/quickstart.py
"""

from repro import ExpandStrategy, build_scenario
from repro.model import TreeParameters
from repro.network import WAN_256


def main() -> None:
    # A product structure: depth 4, 3 children per assembly, and the user
    # is allowed to see ~60 % of the branches (structure options).
    tree = TreeParameters(depth=4, branching=3, visibility=0.6)
    scenario = build_scenario(tree, WAN_256, seed=2026)
    product = scenario.product
    print(f"product: {product.node_count} objects, "
          f"{product.visible_node_count} visible below the root")
    print(f"network: {scenario.profile}")
    print()

    root_attrs = product.root_attributes()
    print(f"{'strategy':<22}{'round trips':>12}{'bytes':>12}{'response':>12}")
    for strategy in (
        ExpandStrategy.NAVIGATIONAL_LATE,
        ExpandStrategy.NAVIGATIONAL_EARLY,
        ExpandStrategy.RECURSIVE_EARLY,
    ):
        result = scenario.client.multi_level_expand(
            product.root_obid, strategy, root_attrs=root_attrs
        )
        print(
            f"{strategy.value:<22}{result.round_trips:>12}"
            f"{result.traffic.payload_bytes:>12}"
            f"{result.seconds:>10.2f} s"
        )

    result = scenario.client.multi_level_expand(
        product.root_obid, ExpandStrategy.RECURSIVE_EARLY, root_attrs=root_attrs
    )
    print()
    print(f"retrieved tree: {result.tree.node_count()} nodes, "
          f"depth {result.tree.depth()}")
    print("first level:",
          [child.attrs["name"] for child in result.tree.children])


if __name__ == "__main__":
    main()
