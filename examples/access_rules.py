#!/usr/bin/env python
"""All four condition classes of the paper's taxonomy (Figure 1), their
SQL translations, and the query modificator at work.

For each rule this script prints the 4-tuple, the translated SQL
predicate, and the effect on the Figure 2 example product.

Run:  python examples/access_rules.py
"""

from repro import ExpandStrategy
from repro.bench.workload import build_scenario
from repro.model import TreeParameters
from repro.network import WAN_512
from repro.pdm.generator import figure2_dataset
from repro.pdm.queries import recursive_mle_spec
from repro.rules import Actions, Rule, RuleTable
from repro.rules.conditions import (
    Attribute,
    Comparison,
    Const,
    ExistsStructure,
    ForAllRows,
    TreeAggregate,
)
from repro.rules.modificator import QueryModificator
from repro.sqldb.render import render_select


def show(title: str, rule: Rule, scenario) -> None:
    table = RuleTable([rule])
    modificator = QueryModificator(table, "scott", {})
    spec = modificator.modify_recursive(
        recursive_mle_spec(), Actions.MULTI_LEVEL_EXPAND
    )
    sql = render_select(spec.to_statement())
    print("=" * 72)
    print(title)
    print(f"  rule: {rule.describe()}")
    client = scenario.fresh_client(rule_table=table)
    result = client.multi_level_expand(
        1, ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=scenario.product.root_attributes(),
    )
    nodes = result.tree.node_count() if result.tree else 0
    print(f"  effect on the Figure 2 product: {nodes} nodes retrieved")
    print(f"  one round trip, {result.traffic.payload_bytes} bytes on the wire")
    if "NOT EXISTS" in sql:
        print("  (the predicate was appended to the outer SELECTs)")
    print()


def main() -> None:
    # Load the paper's own example data behind a WAN.
    scenario = build_scenario(
        TreeParameters(depth=2, branching=2, visibility=1.0),
        WAN_512,
        product=figure2_dataset(),
        rule_table=RuleTable(),
    )

    print("Unrestricted multi-level expand of Assy1 first:")
    baseline = scenario.client.multi_level_expand(
        1, ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=scenario.product.root_attributes(),
    )
    print(f"  {baseline.tree.node_count()} nodes "
          f"(assemblies 1-5, components 101-104)\n")

    show(
        "ROW condition — paper example 1 (make-or-buy)",
        Rule(
            user="scott",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=Comparison("<>", Attribute("make_or_buy"), Const("buy")),
            name="example-1",
        ),
        scenario,
    )
    show(
        "FORALL-ROWS condition — all assemblies must be decomposable "
        "(5.3.1; Assy5 is not, so the result is EMPTY)",
        Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=ForAllRows(
                Comparison("=", Attribute("dec"), Const("+")),
                object_type="assy",
            ),
            name="all-decomposable",
        ),
        scenario,
    )
    show(
        "EXISTS-STRUCTURE condition — components visible only if specified "
        "by a document (5.3.2; Comp2 has none and disappears)",
        Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=ExistsStructure("comp", "specified_by", "spec"),
            name="specified-only",
        ),
        scenario,
    )
    show(
        "TREE-AGGREGATE condition — at most ten assemblies (5.3.3; the "
        "tree has five, so everything is returned)",
        Rule(
            user="*",
            action=Actions.MULTI_LEVEL_EXPAND,
            object_type="assy",
            condition=TreeAggregate(
                "COUNT", None, "<=", Const(10), object_type="assy"
            ),
            name="small-trees",
        ),
        scenario,
    )

    print("=" * 72)
    print("The generated recursive SQL for the FORALL-ROWS rule:")
    table = RuleTable(
        [
            Rule(
                user="*",
                action=Actions.MULTI_LEVEL_EXPAND,
                object_type="assy",
                condition=ForAllRows(
                    Comparison("=", Attribute("dec"), Const("+")),
                    object_type="assy",
                ),
            )
        ]
    )
    spec = QueryModificator(table, "scott", {}).modify_recursive(
        recursive_mle_spec(order_by=True), Actions.MULTI_LEVEL_EXPAND
    )
    print(render_select(spec.to_statement()))


if __name__ == "__main__":
    main()
