#!/usr/bin/env python
"""Impact analysis: where is this component used, and can we lock all the
affected assemblies for an engineering change?

Combines three pieces of the library over a simulated WAN:

1. where-used (reverse BOM) — an *upward* recursive query,
2. depth-bounded expands to inspect the affected assemblies,
3. transactional check-out of every affected subtree (server procedure).

Run:  python examples/impact_analysis.py
"""

from repro import CheckOutMode, ExpandStrategy, build_scenario
from repro.errors import CheckOutError
from repro.model import TreeParameters
from repro.network import WAN_256


def main() -> None:
    scenario = build_scenario(
        TreeParameters(depth=4, branching=3, visibility=1.0), WAN_256, seed=3
    )
    client = scenario.client
    product = scenario.product

    # The change affects one deeply shared component.
    component = product.components[5].obid
    print(f"engineering change request for Comp{component}\n")

    print("1) where-used: one recursive query, one round trip")
    used_in = client.where_used(component, ExpandStrategy.RECURSIVE_EARLY)
    chain = [(attrs["obid"], attrs["distance"]) for attrs in used_in.objects]
    print(f"   ancestors (obid, distance): {chain}")
    print(f"   cost: {used_in.round_trips} round trip, "
          f"{used_in.seconds:.2f} s simulated")
    navigational = client.where_used(
        component, ExpandStrategy.NAVIGATIONAL_LATE
    )
    print(f"   (navigational climbing would need "
          f"{navigational.round_trips} round trips, "
          f"{navigational.seconds:.2f} s)\n")

    direct_parent = used_in.objects[0]["obid"]
    print(f"2) inspect the direct parent Assy{direct_parent}, two levels deep")
    inspection = client.multi_level_expand(
        direct_parent, ExpandStrategy.RECURSIVE_EARLY, max_depth=2
    )
    print(f"   {inspection.tree.node_count()} nodes retrieved in "
          f"{inspection.seconds:.2f} s\n")

    print(f"3) lock the affected subtree (server-side, atomic)")
    result = client.check_out(direct_parent, CheckOutMode.SERVER_PROCEDURE)
    print(f"   checked out {len(result.checked_out)} objects in "
          f"{result.seconds:.2f} s ({result.round_trips} round trip)")

    print("4) a colleague tries to lock an overlapping subtree:")
    colleague = scenario.fresh_client(user="mike")
    grandparent = used_in.objects[1]["obid"]
    try:
        colleague.check_out(grandparent, CheckOutMode.SERVER_PROCEDURE)
    except CheckOutError as error:
        print(f"   denied atomically, nothing half-locked: {error}")

    client.check_in(direct_parent, CheckOutMode.SERVER_PROCEDURE)
    print("\n5) released again — the colleague can proceed now")
    result = colleague.check_out(grandparent, CheckOutMode.SERVER_PROCEDURE)
    print(f"   colleague locked {len(result.checked_out)} objects")


if __name__ == "__main__":
    main()
