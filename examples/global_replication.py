#!/usr/bin/env python
"""Multi-server deployment (paper Section 7 outlook): read replicas near
the remote sites vs. SQL tuning on a single central server.

Compares three worlds for a Brazilian engineer working on a German
product database:

1. single central server, navigational access (the paper's baseline),
2. single central server, recursive queries (the paper's solution),
3. a LAN replica in Brazil (this module's extension) — reads become
   local, but every write pays intercontinental propagation and
   asynchronous replicas can serve stale data.

Run:  python examples/global_replication.py
"""

from repro import ExpandStrategy, PDMClient
from repro.model import TreeParameters
from repro.network import LAN, WAN_256, WAN_512
from repro.pdm.generator import generate_product
from repro.server.multisite import build_replicated_deployment


def main() -> None:
    tree = TreeParameters(depth=5, branching=3, visibility=1.0)
    product = generate_product(tree, seed=11)
    print(f"product: {product.node_count} objects\n")

    deployment = build_replicated_deployment(
        product,
        primary_profile=WAN_256,
        replica_profiles={"brazil-lan": LAN, "us-office": WAN_512},
        primary_name="germany",
    )
    germany = deployment.site("germany")
    brazil = deployment.site("brazil-lan")
    root_attrs = product.root_attributes()

    central_nav = PDMClient(germany.connection).multi_level_expand(
        product.root_obid,
        ExpandStrategy.NAVIGATIONAL_LATE,
        root_attrs=root_attrs,
    )
    central_rec = PDMClient(germany.connection).multi_level_expand(
        product.root_obid,
        ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=root_attrs,
    )
    replica_nav = PDMClient(brazil.connection).multi_level_expand(
        product.root_obid,
        ExpandStrategy.NAVIGATIONAL_LATE,
        root_attrs=root_attrs,
    )

    print("multi-level expand from Brazil:")
    print(f"  central server, navigational : {central_nav.seconds:8.2f} s "
          f"({central_nav.round_trips} WAN round trips)")
    print(f"  central server, recursive    : {central_rec.seconds:8.2f} s "
          f"(1 WAN round trip)")
    print(f"  local replica,  navigational : {replica_nav.seconds:8.2f} s "
          f"({replica_nav.round_trips} LAN round trips)\n")

    print("the price of the replica — a write (freeze one assembly):")
    __, sync_seconds = deployment.execute_write(
        "UPDATE assy SET state = 'frozen' WHERE obid = ?",
        [product.root_obid],
    )
    print(f"  synchronous propagation      : {sync_seconds:8.2f} s "
          f"(primary + slowest replica)")
    __, async_seconds = deployment.execute_write(
        "UPDATE assy SET state = 'in_work' WHERE obid = ?",
        [product.root_obid],
        synchronous=False,
    )
    print(f"  asynchronous (replica lags)  : {async_seconds:8.2f} s "
          f"(brazil lag: {deployment.lag('brazil-lan')})")
    result, __, site = deployment.execute_read(
        "SELECT state FROM assy WHERE obid = ?", [product.root_obid]
    )
    print(f"  read from {site.name} now returns {result.scalar()!r} — STALE")
    deployment.flush()
    result, __, __ = deployment.execute_read(
        "SELECT state FROM assy WHERE obid = ?", [product.root_obid]
    )
    print(f"  after flush: {result.scalar()!r}\n")

    print(
        "Conclusion: replication and recursive queries attack the same\n"
        "latency problem from different ends — the recursive query needs\n"
        "no extra infrastructure and no consistency compromise, which is\n"
        "why the paper pursues the SQL route first."
    )


if __name__ == "__main__":
    main()
