#!/usr/bin/env python
"""What-if analysis with the analytic model: where should the money go —
more bandwidth, less latency, or a software change?

Uses equations (1)-(6) to sweep the WAN parameters for the paper's
scenario 2 product and prints the multi-level-expand response time under
each strategy.  The punchline mirrors the paper's: for the navigational
system no affordable link upgrade fixes the MLE, because the latency term
(2 messages per visited node) dominates; the recursive query is a software
fix that beats any hardware budget.

Run:  python examples/capacity_planning.py
"""

from repro.model import (
    Action,
    NetworkParameters,
    Strategy,
    TreeParameters,
    latency_where_saving_reaches,
    max_latency_for_budget,
    min_bandwidth_for_budget,
    predict,
)

TREE = TreeParameters(depth=9, branching=3, visibility=0.6)


def fmt(seconds: float) -> str:
    if seconds >= 60:
        return f"{seconds / 60:6.1f} min"
    return f"{seconds:7.1f} s "


def sweep(title, networks):
    print(title)
    print(f"  {'link':<28}{'MLE navigational':>18}{'MLE recursive':>16}"
          f"{'Query early':>14}")
    for label, network in networks:
        navigational = predict(Action.MLE, Strategy.EARLY, TREE, network)
        recursive = predict(Action.MLE, Strategy.RECURSIVE, TREE, network)
        query = predict(Action.QUERY, Strategy.EARLY, TREE, network)
        print(
            f"  {label:<28}{fmt(navigational.total_seconds):>18}"
            f"{fmt(recursive.total_seconds):>16}"
            f"{fmt(query.total_seconds):>14}"
        )
    print()


def main() -> None:
    print(f"product structure: {TREE.label} "
          f"(29 523 objects)\n")

    sweep(
        "A. Buy bandwidth (latency fixed at 150 ms):",
        [
            (f"{dtr} kbit/s", NetworkParameters(0.15, dtr))
            for dtr in (128, 256, 512, 2048, 10240)
        ],
    )
    sweep(
        "B. Buy latency (bandwidth fixed at 512 kbit/s):",
        [
            (f"{int(latency * 1000)} ms", NetworkParameters(latency, 512))
            for latency in (0.30, 0.15, 0.05, 0.02, 0.005)
        ],
    )
    budget = 10.0
    reference = NetworkParameters(0.15, 512)
    print(f"C. Closed-form planning (budget: MLE within {budget:.0f} s):")
    navigational_latency = max_latency_for_budget(
        Action.MLE, Strategy.EARLY, TREE, reference, budget
    )
    recursive_latency = max_latency_for_budget(
        Action.MLE, Strategy.RECURSIVE, TREE, reference, budget
    )
    navigational_dtr = min_bandwidth_for_budget(
        Action.MLE, Strategy.EARLY, TREE, reference, budget
    )
    recursive_dtr = min_bandwidth_for_budget(
        Action.MLE, Strategy.RECURSIVE, TREE, reference, budget
    )
    def show(value, unit):
        return "impossible" if value is None else f"{value:.3g} {unit}"
    print(f"  max tolerable latency, navigational: "
          f"{show(navigational_latency, 's')}")
    print(f"  max tolerable latency, recursive:    "
          f"{show(recursive_latency, 's')}")
    print(f"  min bandwidth at 150 ms, navigational: "
          f"{show(navigational_dtr, 'kbit/s')}")
    print(f"  min bandwidth at 150 ms, recursive:    "
          f"{show(recursive_dtr, 'kbit/s')}")
    threshold = latency_where_saving_reaches(TREE, reference, 95.0)
    print(f"  recursion saves >95% whenever latency exceeds "
          f"{threshold * 1000:.0f} ms\n")

    print(
        "Conclusion: with navigational access the MLE stays in the minutes\n"
        "range even on a 10 Mbit/s link, because ~890 round trips pay the\n"
        "latency each time.  The recursive query needs 2 messages; it is\n"
        "already interactive on the cheapest link."
    )


if __name__ == "__main__":
    main()
