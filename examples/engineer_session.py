#!/usr/bin/env python
"""A day at the remote site: replay a whole engineer session.

The paper quantifies single actions; what the Brazilian site *feels* is
the sum of a working session — browsing expands, a few deep dives, a
product-wide query, the occasional check-out.  This script generates a
seeded 30-step session and replays the identical step sequence under all
three strategies.

Run:  python examples/engineer_session.py
"""

from repro import build_scenario
from repro.bench.session import compare_strategies, generate_session
from repro.model import TreeParameters
from repro.network import WAN_256
from repro.pdm.operations import ExpandStrategy


def main() -> None:
    scenario = build_scenario(
        TreeParameters(depth=6, branching=3, visibility=0.8), WAN_256, seed=5
    )
    print(f"product: {scenario.product.node_count} objects over "
          f"{scenario.profile}\n")

    mix_weights = {"expand": 6.0, "partial_mle": 3.0, "mle": 4.0,
                   "query": 2.0, "checkout_cycle": 1.0}
    steps = generate_session(scenario, length=30, seed=2026, mix=mix_weights)
    mix = {}
    for step in steps:
        mix[step.kind] = mix.get(step.kind, 0) + 1
    print("session recipe (30 steps): " + ", ".join(
        f"{count}x {kind}" for kind, count in sorted(mix.items())
    ))
    print()

    results = compare_strategies(scenario, length=30, seed=2026,
                                 mix=mix_weights)
    print(f"{'strategy':<24}{'session':>10}{'round trips':>13}"
          f"{'data [KiB]':>12}{'worst step':>22}")
    for strategy, result in results.items():
        step, seconds = result.slowest_step
        print(
            f"{strategy.value:<24}{result.total_seconds / 60:>8.1f} m"
            f"{result.round_trips:>13}"
            f"{result.payload_bytes / 1024:>12.0f}"
            f"{step.kind + f' ({seconds:.0f} s)':>22}"
        )

    late = results[ExpandStrategy.NAVIGATIONAL_LATE]
    recursive = results[ExpandStrategy.RECURSIVE_EARLY]
    saved = late.total_seconds - recursive.total_seconds
    print(
        f"\nThe recursive-query deployment gives this engineer back "
        f"{saved / 60:.0f} minutes per session — every session, every "
        f"engineer, without touching the network."
    )


if __name__ == "__main__":
    main()
