-- Attach a specification document to an assembly.  Both INSERTs carry
-- their primary key, so a blind retry fails loudly on the unique index
-- instead of inserting a duplicate.
-- pragma: sequenced
BEGIN;
INSERT INTO spec (type, obid, name, doc) VALUES ('spec', 9000, 'frame-spec', 'doc/frame-spec.pdf');
INSERT INTO specified_by (obid, left, right) VALUES (9100, 100, 9000);
COMMIT;
