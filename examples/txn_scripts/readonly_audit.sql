-- Configuration audit declared READ ONLY: on an MVCC build every
-- statement reads the same snapshot without taking a single shared
-- lock, so the audit can run beside ECO write bursts; on a 2PL-only
-- build it degrades to ordinary locked selects (and the server rejects
-- any DML inside it either way).  Declaring the intent keeps C006
-- quiet.
BEGIN TRANSACTION READ ONLY;
SELECT l.left, l.right, l.eff_from, l.eff_to FROM link l WHERE l.right = 205;
SELECT a.obid, a.name, a.state FROM assy a WHERE a.obid IN (100, 101);
SELECT COUNT(*) FROM assy a WHERE a.checkedout = TRUE;
COMMIT;
