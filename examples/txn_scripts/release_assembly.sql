-- Release a previously checked-out assembly.
-- pragma: sequenced
BEGIN;
UPDATE assy SET checkedout = FALSE, checkedout_by = NULL WHERE obid = 100;
COMMIT;
