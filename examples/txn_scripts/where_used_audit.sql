-- Where-used audit: read-only and autocommit.  Autocommit statements
-- acquire locks non-parking (fail fast), so this script can never be
-- party to a deadlock.  C006 warns here on purpose — the two selects
-- never declare READ ONLY, so they see different commit points and
-- still take shared locks; readonly_audit.sql is the fixed twin.
SELECT l.left, l.right, l.eff_from, l.eff_to FROM link l WHERE l.right = 205;
SELECT a.obid, a.name, a.state FROM assy a WHERE a.obid IN (100, 101);
