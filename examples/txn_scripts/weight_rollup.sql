-- Recompute cached weights after a component edit.  The UPDATEs read
-- the columns they assign, so this is only retry-safe under the
-- SEQUENCED envelope — without the pragma the analyzer flags C002.
-- Both writes go comp -> assy; keep that order in every script that
-- touches both tables, or C001 will predict a deadlock.
-- pragma: sequenced
BEGIN;
UPDATE comp SET weight = weight * 1.01 WHERE obid = 205;
UPDATE assy SET weight = weight + 1.0 WHERE obid = 100;
COMMIT;
