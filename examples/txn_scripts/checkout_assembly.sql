-- Check out one assembly for editing: read its state, then mark it.
-- Runs in a session under the SEQUENCED envelope, so a retried frame
-- is answered from the replay cache instead of re-executed.
-- pragma: sequenced
BEGIN;
SELECT obid, state, checkedout FROM assy WHERE obid = 100;
UPDATE assy SET checkedout = TRUE, checkedout_by = 'mueller' WHERE obid = 100;
COMMIT;
