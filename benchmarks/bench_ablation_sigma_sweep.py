"""Ablation A3 — visibility (σ) sensitivity.

σ = 0.6 is the only value the paper evaluates.  This sweep shows where
each approach pays off: early evaluation's saving on the Query action is
exactly 1-σ^effective; the recursive saving on MLE stays >90 % across the
whole σ range because it is dominated by the eliminated round trips.
"""

import pytest

from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.response_time import Action, Strategy, predict, saving_percent

NETWORK = NetworkParameters(latency_s=0.15, dtr_kbit_s=512)
SIGMAS = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]


def sweep():
    rows = []
    for sigma in SIGMAS:
        tree = TreeParameters(depth=9, branching=3, visibility=sigma)
        query_late = predict(Action.QUERY, Strategy.LATE, tree, NETWORK)
        query_early = predict(Action.QUERY, Strategy.EARLY, tree, NETWORK)
        mle_late = predict(Action.MLE, Strategy.LATE, tree, NETWORK)
        mle_recursive = predict(Action.MLE, Strategy.RECURSIVE, tree, NETWORK)
        rows.append(
            (
                sigma,
                saving_percent(
                    query_late.total_seconds, query_early.total_seconds
                ),
                saving_percent(
                    mle_late.total_seconds, mle_recursive.total_seconds
                ),
            )
        )
    return rows


def test_bench_sigma_sweep(benchmark, capsys):
    rows = benchmark(sweep)
    with capsys.disabled():
        print("\nsigma   query saving%   MLE recursive saving%")
        for sigma, query_saving, mle_saving in rows:
            print(f"{sigma:>5.1f}{query_saving:>15.2f}{mle_saving:>22.2f}")
    query_savings = [row[1] for row in rows]
    # The fewer branches are visible, the more early evaluation saves.
    assert query_savings == sorted(query_savings, reverse=True)
    # Recursion's saving grows with σ (a nearly-invisible tree needs only
    # a handful of navigational queries to begin with) and reaches the
    # paper's >95 % regime from σ = 0.6 on.
    mle_savings = [row[2] for row in rows]
    assert mle_savings == sorted(mle_savings)
    assert all(saving > 95.0 for sigma, __, saving in rows if sigma >= 0.6)


def test_sigma_one_early_saves_almost_nothing_on_query(benchmark):
    tree = TreeParameters(depth=9, branching=3, visibility=1.0)

    def run():
        late = predict(Action.QUERY, Strategy.LATE, tree, NETWORK)
        early = predict(Action.QUERY, Strategy.EARLY, tree, NETWORK)
        return saving_percent(late.total_seconds, early.total_seconds)

    saving = benchmark(run)
    assert saving == pytest.approx(0.0, abs=0.01)
