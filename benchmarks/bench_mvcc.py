"""MVCC benchmark: READ ONLY auditors racing ECO write bursts.

Runs the contention simulator's ``audit_eco`` scenario twice with the
same seed — once on a plain strict-2PL build and once with the MVCC
snapshot-read subsystem enabled — and compares lock waits, aborts and
the multi-level-expand latency distribution between the two builds:

    python benchmarks/bench_mvcc.py --json BENCH_mvcc.json

``--smoke`` runs one fixed-seed pair and fails unless

* both builds are deterministic (byte-identical same-seed reports),
* the 2PL build actually contends (RO lock waits > 0, else the cell
  proves nothing),
* the MVCC build shows ZERO lock waits and ZERO aborts for read-only
  transactions,
* the MVCC build's p99 multi-level-expand latency is strictly lower,
* neither build loses an update (the zero-lost-update audit), and
* MVCC garbage collection drains every version chain by the end.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.concurrency import (  # noqa: E402
    ContentionConfig,
    ContentionSim,
    report_json,
)

SEED = 42

#: One smoke cell: enough clients for auditor/writer overlap, long
#: enough transactions for the 2PL build to park and deadlock.
SMOKE_KWARGS = dict(
    clients=6,
    ops_per_client=6,
    conflict_rate=0.5,
    seed=SEED,
    scenario="audit_eco",
)


def run_pair(seed: int, clients: int, ops: int) -> dict:
    """Run the same audit_eco cell under 2PL-only and MVCC."""
    kwargs = dict(
        clients=clients,
        ops_per_client=ops,
        conflict_rate=0.5,
        seed=seed,
        scenario="audit_eco",
    )
    locking = ContentionSim(ContentionConfig(mvcc=False, **kwargs)).run()
    mvcc = ContentionSim(ContentionConfig(mvcc=True, **kwargs)).run()
    return {"2pl": locking, "mvcc": mvcc, "deltas": compare(locking, mvcc)}


def compare(locking: dict, mvcc: dict) -> dict:
    """Headline deltas between the two builds of one cell."""
    lt, mt = locking["totals"], mvcc["totals"]
    lx, mx = locking["expand_latency_s"], mvcc["expand_latency_s"]
    return {
        "ro_lock_waits": {"2pl": lt["ro_lock_waits"], "mvcc": mt["ro_lock_waits"]},
        "ro_aborts": {"2pl": lt["ro_aborts"], "mvcc": mt["ro_aborts"]},
        "expand_p50_s": {"2pl": lx["p50"], "mvcc": mx["p50"]},
        "expand_p95_s": {"2pl": lx["p95"], "mvcc": mx["p95"]},
        "expand_p99_s": {"2pl": lx["p99"], "mvcc": mx["p99"]},
        "elapsed_s": {"2pl": locking["elapsed_s"], "mvcc": mvcc["elapsed_s"]},
    }


def check_pair(pair: dict) -> List[str]:
    """The acceptance gates for one 2PL/MVCC cell pair."""
    locking, mvcc = pair["2pl"], pair["mvcc"]
    failures = []
    if locking["totals"]["ro_lock_waits"] == 0:
        failures.append(
            "2PL build saw no read-only lock waits — cell proves nothing"
        )
    if mvcc["totals"]["ro_lock_waits"] != 0:
        failures.append(
            f"MVCC build saw {mvcc['totals']['ro_lock_waits']} read-only "
            f"lock waits (expected 0)"
        )
    if mvcc["totals"]["ro_aborts"] != 0:
        failures.append(
            f"MVCC build saw {mvcc['totals']['ro_aborts']} read-only "
            f"aborts (expected 0)"
        )
    p99_2pl = locking["expand_latency_s"]["p99"]
    p99_mvcc = mvcc["expand_latency_s"]["p99"]
    if p99_2pl is None or p99_mvcc is None:
        failures.append("missing expand latency percentiles")
    elif not p99_mvcc < p99_2pl:
        failures.append(
            f"MVCC expand p99 {p99_mvcc:.3f}s not below 2PL {p99_2pl:.3f}s"
        )
    for name, report in (("2PL", locking), ("MVCC", mvcc)):
        if report["lost_updates"] != 0:
            failures.append(f"{name} build lost {report['lost_updates']} updates")
    if mvcc["mvcc"]["chains"] != 0:
        failures.append(
            f"{mvcc['mvcc']['chains']} version chains survived GC "
            f"(expected 0 with no open snapshots)"
        )
    if mvcc["mvcc"]["snapshot_reads"] == 0:
        failures.append("MVCC build recorded no snapshot reads")
    return failures


def print_pair(pair: dict) -> None:
    print(
        f"{'':>12s} {'ro_waits':>8s} {'ro_aborts':>9s} "
        f"{'exp p50':>8s} {'exp p95':>8s} {'exp p99':>8s} {'lost':>5s}"
    )
    for name, report in (("2PL-only", pair["2pl"]), ("MVCC", pair["mvcc"])):
        totals = report["totals"]
        expand = report["expand_latency_s"]
        print(
            f"{name:>12s} {totals['ro_lock_waits']:>8d} "
            f"{totals['ro_aborts']:>9d} "
            f"{expand['p50']:>8.3f} {expand['p95']:>8.3f} "
            f"{expand['p99']:>8.3f} {report['lost_updates']:>5d}"
        )


def smoke() -> int:
    """Fixed-seed gate: determinism plus the MVCC acceptance criteria."""
    first = ContentionSim(ContentionConfig(mvcc=True, **SMOKE_KWARGS)).run()
    second = ContentionSim(ContentionConfig(mvcc=True, **SMOKE_KWARGS)).run()
    locking = ContentionSim(ContentionConfig(mvcc=False, **SMOKE_KWARGS)).run()
    locking2 = ContentionSim(ContentionConfig(mvcc=False, **SMOKE_KWARGS)).run()
    failures = []
    if report_json(first) != report_json(second):
        failures.append("same-seed MVCC reports differ — not deterministic")
    if report_json(locking) != report_json(locking2):
        failures.append("same-seed 2PL reports differ — not deterministic")
    pair = {"2pl": locking, "mvcc": first, "deltas": compare(locking, first)}
    failures.extend(check_pair(pair))
    print_pair(pair)
    print(f"2PL schedule hash:  {locking['schedule']['hash']}")
    print(f"MVCC schedule hash: {first['schedule']['hash']}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--clients", type=int, default=6, help="client count (half audit)"
    )
    parser.add_argument(
        "--ops", type=int, default=6, help="operations per client"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the full pair report to PATH"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fixed-seed acceptance gate instead of the sweep",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    pair = run_pair(args.seed, args.clients, args.ops)
    print_pair(pair)
    failures = check_pair(pair)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(pair, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
