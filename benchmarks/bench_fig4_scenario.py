"""Figure 4 — δ=9, κ=3, σ=0.6 over T_Lat=150 ms / dtr=512 kbit/s.

Regenerates the bar chart (late eval / early eval / recursion × Query /
Expand / MLE) from the analytic model and from the end-to-end simulation,
and asserts the orderings the figure displays.
"""

import pytest

from repro.bench import paper_values
from repro.bench.experiments import run_figure4
from repro.bench.measure import price_traffic
from repro.model.parameters import FIGURE4_NETWORK
from repro.model.response_time import Action, Strategy
from repro.model.tables import figure4_series


def test_figure4_report(benchmark, capsys):
    text = benchmark(run_figure4, simulate=False)
    with capsys.disabled():
        print()
        print(text)
    assert "figure4" in text


def test_figure4_model_matches_paper(benchmark):
    series = benchmark(figure4_series)
    for strategy, bars in paper_values.FIGURE4.items():
        for action, value in bars.items():
            assert series[strategy][action] == pytest.approx(value, abs=0.011)


def test_figure4_simulated_series(benchmark, measured_grids, scenario2, paper_scale):
    if not paper_scale:
        pytest.skip("figure thresholds are calibrated for paper-scale trees")
    key = (scenario2.tree.depth, scenario2.tree.branching)

    def build_series():
        grid = measured_grids[key]
        return {
            strategy: {
                action: price_traffic(
                    grid[(action, strategy)].traffic, FIGURE4_NETWORK
                )
                for action in (Action.QUERY, Action.EXPAND, Action.MLE)
            }
            for strategy in (Strategy.LATE, Strategy.EARLY, Strategy.RECURSIVE)
        }

    series = benchmark(build_series)
    late, early, recursion = (
        series[Strategy.LATE],
        series[Strategy.EARLY],
        series[Strategy.RECURSIVE],
    )
    # The figure's visual claims:
    assert late[Action.EXPAND] < 1.0  # expand already acceptable
    assert early[Action.QUERY] < 0.1 * late[Action.QUERY]
    assert early[Action.MLE] > 0.9 * late[Action.MLE]
    assert recursion[Action.MLE] < 0.1 * late[Action.MLE]
    for action in (Action.QUERY, Action.EXPAND):
        assert recursion[action] == pytest.approx(early[action])
