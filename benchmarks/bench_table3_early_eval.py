"""Table 3 — early rule evaluation (approach 1).

Checks the paper's headline asymmetry: early evaluation saves >95 % on the
set-oriented Query action but only ~2 % on the multi-level expand, because
the round trips — not the bytes — dominate the MLE.
"""

import pytest

from repro.bench.experiments import run_table3
from repro.bench.measure import measure_action, price_traffic
from repro.model.parameters import PAPER_NETWORKS
from repro.model.response_time import Action, Strategy, predict


def test_table3_report_matches_paper(benchmark, capsys):
    report = benchmark(run_table3, simulate=False)
    assert report.max_model_error() <= 0.011
    for row in report.rows:
        assert row.model_saving == pytest.approx(row.paper_saving, abs=0.02)
    with capsys.disabled():
        print()
        print(report.to_text())


@pytest.mark.parametrize("action", [Action.QUERY, Action.EXPAND, Action.MLE])
def test_bench_scenario1_early(benchmark, scenario1, action):
    result = benchmark.pedantic(
        lambda: measure_action(scenario1, action, Strategy.EARLY),
        rounds=3,
        iterations=1,
    )
    model = predict(action, Strategy.EARLY, scenario1.tree, PAPER_NETWORKS[0])
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["model_seconds"] = model.total_seconds
    assert 0.3 < result.seconds / model.total_seconds < 3.0


@pytest.mark.parametrize("action", [Action.QUERY, Action.MLE])
def test_bench_scenario2_early(benchmark, scenario2, action, paper_scale):
    result = benchmark.pedantic(
        lambda: measure_action(scenario2, action, Strategy.EARLY),
        rounds=1,
        iterations=1,
    )
    model = predict(action, Strategy.EARLY, scenario2.tree, PAPER_NETWORKS[0])
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["model_seconds"] = model.total_seconds
    if paper_scale:
        assert 0.3 < result.seconds / model.total_seconds < 3.0


def test_simulated_savings_match_paper_shape(benchmark, measured_grids, paper_scale):
    """Early-eval savings: large for Query, marginal for MLE, on every
    scenario and every table network."""
    if not paper_scale:
        pytest.skip("shape thresholds are calibrated for paper-scale trees")

    def check():
        for grid in measured_grids.values():
            for network in PAPER_NETWORKS:
                query_late = price_traffic(
                    grid[(Action.QUERY, Strategy.LATE)].traffic, network
                )
                query_early = price_traffic(
                    grid[(Action.QUERY, Strategy.EARLY)].traffic, network
                )
                assert query_early < 0.4 * query_late
                mle_late = price_traffic(
                    grid[(Action.MLE, Strategy.LATE)].traffic, network
                )
                mle_early = price_traffic(
                    grid[(Action.MLE, Strategy.EARLY)].traffic, network
                )
                # "The savings for the multi-level expands are very low".
                assert mle_early > 0.9 * mle_late
        return True

    assert benchmark(check)
