"""Perf smoke runner: every expand strategy over one WAN cell.

Runs the four multi-level-expand strategies end to end on the batching
ablation scenario and prints (and optionally JSON-dumps) the simulated
response time, round trips, wire traffic and plan-cache behaviour per
strategy — a machine-readable heartbeat for CI:

    python benchmarks/run_all.py --scale small --json BENCH_batching.json

Exits non-zero if the headline invariants regress (batched expand must
do exactly one round trip per level and sit between the navigational
and recursive strategies).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bench.measure import measure_action  # noqa: E402
from repro.bench.workload import build_scenario  # noqa: E402
from repro.model.parameters import (  # noqa: E402
    NetworkParameters,
    TreeParameters,
)
from repro.model.response_time import Action, Strategy, predict  # noqa: E402
from repro.network.profiles import WAN_512  # noqa: E402

SEED = 42

#: One frontier statement per node type rides each level's batch.
BATCH_QUERY_PACKETS = 2

STRATEGIES = (
    Strategy.LATE,
    Strategy.EARLY,
    Strategy.BATCHED,
    Strategy.RECURSIVE,
)


def run(scale: str) -> dict:
    if scale == "small":
        # Deep enough that the padded IN-list shapes repeat and the
        # plan-cache invariant stays checkable.
        tree = TreeParameters(depth=4, branching=3, visibility=0.6)
    else:
        tree = TreeParameters(depth=5, branching=4, visibility=0.5)
    network = NetworkParameters(
        latency_s=WAN_512.latency_s, dtr_kbit_s=WAN_512.dtr_kbit_s
    )
    scenario = build_scenario(tree, WAN_512, seed=SEED)
    results = {}
    for strategy in STRATEGIES:
        measured = measure_action(scenario, Action.MLE, strategy)
        packets = BATCH_QUERY_PACKETS if strategy is Strategy.BATCHED else 1
        model = predict(
            Action.MLE, strategy, tree, network, query_packets=packets
        )
        results[strategy.value] = {
            "simulated_ms": round(measured.seconds * 1000.0, 3),
            "model_ms": round(model.total_seconds * 1000.0, 3),
            "round_trips": measured.round_trips,
            "statements": measured.statements,
            "plan_cache_hits": measured.plan_cache_hits,
            "payload_bytes": measured.payload_bytes,
            "wire_bytes": measured.wire_bytes,
            "result_nodes": measured.result_nodes,
        }
    opcode_traffic = dict(scenario.link.stats.opcode_messages)
    return {
        "scale": scale,
        "tree": {
            "depth": tree.depth,
            "branching": tree.branching,
            "visibility": tree.visibility,
        },
        "network": {
            "latency_s": network.latency_s,
            "dtr_kbit_s": network.dtr_kbit_s,
        },
        "strategies": results,
        "opcode_messages": opcode_traffic,
    }


def check(report: dict) -> list:
    """The smoke invariants; returns a list of failure descriptions."""
    failures = []
    strategies = report["strategies"]
    batched = strategies[Strategy.BATCHED.value]
    early = strategies[Strategy.EARLY.value]
    recursive = strategies[Strategy.RECURSIVE.value]
    if batched["round_trips"] != report["tree"]["depth"]:
        failures.append(
            f"batched expand took {batched['round_trips']} round trips, "
            f"expected depth={report['tree']['depth']}"
        )
    if not (
        recursive["simulated_ms"]
        < batched["simulated_ms"]
        < early["simulated_ms"]
    ):
        failures.append("batched is not between recursive and early")
    if batched["plan_cache_hits"] <= 0:
        failures.append("batched expand produced no plan-cache hits")
    sizes = {entry["result_nodes"] for entry in strategies.values()}
    if len(sizes) != 1:
        failures.append(f"strategies disagree on tree size: {sizes}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="paper",
        help="small shrinks the tree for quick CI smoke runs",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the machine-readable report to PATH",
    )
    args = parser.parse_args(argv)
    report = run(args.scale)
    header = (
        f"{'strategy':<12s} {'sim ms':>10s} {'model ms':>10s} "
        f"{'trips':>6s} {'stmts':>6s} {'cache':>6s} {'wire B':>10s}"
    )
    print(header)
    for name, entry in report["strategies"].items():
        print(
            f"{name:<12s} {entry['simulated_ms']:>10.1f} "
            f"{entry['model_ms']:>10.1f} {entry['round_trips']:>6d} "
            f"{entry['statements']:>6d} {entry['plan_cache_hits']:>6d} "
            f"{entry['wire_bytes']:>10.0f}"
        )
    failures = check(report)
    report["ok"] = not failures
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
