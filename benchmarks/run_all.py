"""Perf smoke runner: every expand strategy over one WAN cell.

Runs the four multi-level-expand strategies end to end on the batching
ablation scenario and prints (and optionally JSON-dumps) the simulated
response time, round trips, wire traffic and plan-cache behaviour per
strategy — a machine-readable heartbeat for CI:

    python benchmarks/run_all.py --scale small --json BENCH_batching.json

Exits non-zero if the headline invariants regress (batched expand must
do exactly one round trip per level and sit between the navigational
and recursive strategies).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_engine_micro import (  # noqa: E402
    SMOKE_SIZES,
    planner_mode_failures,
    run_micro,
    run_planner_modes,
)

from repro.bench.measure import measure_action  # noqa: E402
from repro.bench.workload import build_scenario  # noqa: E402
from repro.model.parameters import (  # noqa: E402
    NetworkParameters,
    TreeParameters,
)
from repro.model.response_time import Action, Strategy, predict  # noqa: E402
from repro.network.faults import (  # noqa: E402
    CHAOS_PRESETS,
    JUMBO_TRUNCATING_WAN,
    PERFECT,
    RetryPolicy,
)
from repro.network.profiles import WAN_512  # noqa: E402
from repro.pdm.operations import ExpandStrategy  # noqa: E402

SEED = 42

#: One frontier statement per node type rides each level's batch.
BATCH_QUERY_PACKETS = 2

STRATEGIES = (
    Strategy.LATE,
    Strategy.EARLY,
    Strategy.BATCHED,
    Strategy.RECURSIVE,
)

EXPAND_STRATEGIES = {
    Strategy.LATE: ExpandStrategy.NAVIGATIONAL_LATE,
    Strategy.EARLY: ExpandStrategy.NAVIGATIONAL_EARLY,
    Strategy.BATCHED: ExpandStrategy.EXPAND_BATCHED,
    Strategy.RECURSIVE: ExpandStrategy.RECURSIVE_EARLY,
}

FAULT_PROFILES = {
    profile.name: profile
    for profile in (PERFECT, JUMBO_TRUNCATING_WAN) + CHAOS_PRESETS
}


def run_chaos(tree, scenario, profile, fault_seed: int) -> dict:
    """Re-run every strategy resiliently under *profile* and check each
    converges to a tree byte-identical to its own zero-fault run."""
    root = scenario.product.root_obid
    root_attrs = scenario.product.root_attributes()
    reference = {
        strategy: scenario.client.multi_level_expand(
            root, EXPAND_STRATEGIES[strategy], root_attrs=root_attrs
        ).tree.canonical_bytes()
        for strategy in STRATEGIES
    }
    results = {}
    for strategy in STRATEGIES:
        chaos_scenario = build_scenario(
            tree,
            WAN_512,
            seed=SEED,
            product=scenario.product,
            fault_profile=profile,
            fault_seed=fault_seed,
            retry_policy=RetryPolicy(),
        )
        result = chaos_scenario.client.resilient_multi_level_expand(
            root, EXPAND_STRATEGIES[strategy], root_attrs=root_attrs
        )
        stats = chaos_scenario.link.stats
        client_stats = chaos_scenario.client.statistics
        converged = (
            result.tree is not None
            and result.tree.canonical_bytes() == reference[strategy]
        )
        # The recursive fallback legitimately returns the batched tree
        # shape (same visible nodes through the other pipeline).
        if not converged and strategy is Strategy.RECURSIVE:
            converged = (
                client_stats["recursive_fallbacks"] > 0
                and result.tree is not None
                and result.tree.canonical_bytes()
                == reference[Strategy.BATCHED]
            )
        results[strategy.value] = {
            "simulated_ms": round(result.seconds * 1000.0, 3),
            "converged": converged,
            "drops": stats.drops,
            "corrupt_frames": stats.corrupt_frames,
            "timeouts": stats.timeouts,
            "retries": stats.retries,
            "backoff_ms": round(stats.backoff_seconds * 1000.0, 3),
            "expand_resumes": client_stats["expand_resumes"],
            "recursive_fallbacks": client_stats["recursive_fallbacks"],
        }
    return {
        "profile": profile.name,
        "fault_seed": fault_seed,
        "strategies": results,
    }


def run_trace(tree, scenario, profile, fault_seed: int) -> dict:
    """One fully traced resilient batched expand under *profile*.

    Returns the :func:`repro.bench.report.trace_summary` dict extended
    with a ``decomposition`` entry proving the observability invariant:
    the component seconds summed over the root span's subtree equal the
    action's measured response time exactly.
    """
    from repro.bench.report import trace_summary
    from repro.obs import TraceRecorder

    recorder = TraceRecorder()
    traced = build_scenario(
        tree,
        WAN_512,
        seed=SEED,
        product=scenario.product,
        fault_profile=None if profile.perfect else profile,
        fault_seed=fault_seed,
        retry_policy=None if profile.perfect else RetryPolicy(),
        recorder=recorder,
    )
    result = traced.client.resilient_multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.EXPAND_BATCHED,
        root_attrs=scenario.product.root_attributes(),
    )
    summary = trace_summary(recorder)
    root = recorder.find_root("pdm.resilient_multi_level_expand")
    components = root.total_components()
    component_sum = sum(components.values())
    summary["profile"] = profile.name
    summary["fault_seed"] = fault_seed
    summary["decomposition"] = {
        "action_seconds": result.seconds,
        "root_seconds": root.duration,
        "component_sum": component_sum,
        "exact": abs(component_sum - root.duration)
        <= 1e-9 * max(1.0, abs(root.duration)),
    }
    return summary


def lint_summary() -> dict:
    """Static-analyzer counters for the report: the bench queries must
    stay lint-clean, and a regression shows up here before it shows up
    as a slow number."""
    from collections import Counter

    from repro.analysis import Severity, analyze_sql
    from repro.analysis.templates import template_queries

    by_severity = Counter()
    clean = 0
    templates = template_queries()
    for _name, sql in templates:
        findings = analyze_sql(sql)
        if not findings:
            clean += 1
        for finding in findings:
            by_severity[finding.severity.name] += 1
    return {
        "templates": len(templates),
        "clean_templates": clean,
        "findings": {name: by_severity[name] for name in sorted(by_severity)},
        "gate_ok": by_severity[Severity.WARNING.name] == 0
        and by_severity[Severity.ERROR.name] == 0,
    }


def run_contention_smoke() -> dict:
    """Fixed-seed contention smoke: two identical runs of the mixed
    expand/check-out workload must agree byte for byte and lose no
    update."""
    from repro.concurrency import ContentionConfig, ContentionSim, report_json

    config = ContentionConfig(
        clients=4, ops_per_client=8, conflict_rate=0.7, seed=SEED
    )
    first = ContentionSim(config).run()
    second = ContentionSim(config).run()
    return {
        "schedule_hash": first["schedule"]["hash"],
        "steps": first["schedule"]["steps"],
        "deterministic": report_json(first) == report_json(second),
        "lost_updates": first["lost_updates"],
        "committed_increments": first["committed_increments"],
        "deadlock_aborts": first["totals"]["deadlock_aborts"],
        "txn_restarts": first["totals"]["txn_restarts"],
        "lock_waits": first["totals"]["write_retries"]
        + first["totals"]["read_retries"],
        "throughput_ops_per_s": first["throughput_ops_per_s"],
    }


def run_mvcc_smoke() -> dict:
    """Fixed-seed MVCC smoke: the audit_eco scenario (READ ONLY auditors
    racing ECO write bursts) under 2PL-only and MVCC builds with the
    same seed, gated on bench_mvcc's acceptance criteria — zero RO lock
    waits/aborts and strictly lower expand p99 under MVCC."""
    from bench_mvcc import SMOKE_KWARGS, check_pair, compare

    from repro.concurrency import ContentionConfig, ContentionSim, report_json

    locking = ContentionSim(ContentionConfig(mvcc=False, **SMOKE_KWARGS)).run()
    mvcc = ContentionSim(ContentionConfig(mvcc=True, **SMOKE_KWARGS)).run()
    again = ContentionSim(ContentionConfig(mvcc=True, **SMOKE_KWARGS)).run()
    pair = {"2pl": locking, "mvcc": mvcc, "deltas": compare(locking, mvcc)}
    return {
        "deterministic": report_json(mvcc) == report_json(again),
        "schedule_hash_2pl": locking["schedule"]["hash"],
        "schedule_hash_mvcc": mvcc["schedule"]["hash"],
        "ro_lock_waits_2pl": locking["totals"]["ro_lock_waits"],
        "ro_lock_waits_mvcc": mvcc["totals"]["ro_lock_waits"],
        "ro_aborts_2pl": locking["totals"]["ro_aborts"],
        "ro_aborts_mvcc": mvcc["totals"]["ro_aborts"],
        "expand_p99_2pl": locking["expand_latency_s"]["p99"],
        "expand_p99_mvcc": mvcc["expand_latency_s"]["p99"],
        "snapshot_reads": mvcc["mvcc"]["snapshot_reads"],
        "versions_created": mvcc["mvcc"]["versions_created"],
        "versions_gc": mvcc["mvcc"]["versions_gc"],
        "chains": mvcc["mvcc"]["chains"],
        "lost_updates": locking["lost_updates"] + mvcc["lost_updates"],
        "gate_failures": check_pair(pair),
    }


#: Schema tag of the perf-trajectory file; bump when the layout changes.
TRAJECTORY_SCHEMA = "bench-trajectory/v1"

#: This PR's slot in the trajectory sequence (BENCH_<pr>.json).
TRAJECTORY_PR = 10

#: Micro-bench shapes whose row-vs-columnar speedup the trajectory diff
#: gates on (the scan shapes the vectorized executor was built for).
SCAN_SHAPE_PREFIXES = ("scan_filter", "narrow_and")

#: A scan shape may not lose more than this fraction of its baseline
#: speedup before the diff gate fails (noisy CI runners need slack).
TRAJECTORY_REGRESSION_FLOOR = 0.4


def run_crash_smoke() -> dict:
    """Fixed-seed crash-chaos smoke: one torn-tail crash cell run twice
    (byte-identical reports required) plus a reduced crash-point sweep
    auditing the durability invariants under all three failure
    flavours."""
    from repro.errors import DurabilityError
    from repro.recovery import CrashConfig, CrashChaosSim, run_crash_sweep
    from repro.recovery import report_json as crash_report_json

    config = CrashConfig(crash_at_append=7, failure="torn", seed=SEED)
    first = CrashChaosSim(config).run()
    second = CrashChaosSim(config).run()
    try:
        sweep = run_crash_sweep(seed=SEED, max_crash_at=4)
        sweep_ok = sweep["all_invariants_held"]
        sweep_profiles = sweep["profiles"]
        sweep_error = None
    except DurabilityError as error:
        sweep_ok = False
        sweep_profiles = 0
        sweep_error = str(error)
    return {
        "schedule_hash": first["schedule"]["hash"],
        "steps": first["schedule"]["steps"],
        "deterministic": crash_report_json(first)
        == crash_report_json(second),
        "crash_occurred": first["crash"]["occurred"],
        "restarts": first["restarts"],
        "lost_committed": len(first["lost_committed"]),
        "resurrected": first["resurrected"],
        "fixpoint": first["final_recovery_fixpoint"],
        "tail_status": first["crash_recovery"].get("tail_status"),
        "sweep_profiles": sweep_profiles,
        "sweep_ok": sweep_ok,
        "sweep_error": sweep_error,
    }


def diff_trajectory(current: dict, baseline_path: str) -> list:
    """Diff this PR's trajectory slice against the previous PR's file.

    Fails when a scan-shape micro-bench lost most of its baseline
    row-vs-columnar speedup — the executor must not regress on the
    shapes it was built for.  A missing baseline is not an error (first
    run on a fresh checkout)."""
    if not os.path.exists(baseline_path):
        return []
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = []
    for name, entry in current["benches"].items():
        if not name.startswith(SCAN_SHAPE_PREFIXES):
            continue
        previous = baseline.get("benches", {}).get(name)
        if previous is None:
            continue
        floor = TRAJECTORY_REGRESSION_FLOOR * previous["speedup"]
        if entry["speedup"] < floor:
            failures.append(
                f"trajectory diff {name}: speedup {entry['speedup']:.2f}x "
                f"fell below {floor:.2f}x "
                f"(={TRAJECTORY_REGRESSION_FLOOR} x baseline "
                f"{previous['speedup']:.2f}x from "
                f"{os.path.basename(baseline_path)})"
            )
    return failures


def run_engine_micro(scale: str) -> dict:
    """The row-vs-columnar executor micro-suite (bench_engine_micro)."""
    if scale == "small":
        return run_micro(sizes=SMOKE_SIZES, repeats=2)
    return run_micro()


def trajectory_report(report: dict) -> dict:
    """The perf-trajectory slice written to ``BENCH_<pr>.json``: one
    entry per micro-bench with timings, throughput, and the executor
    modes compared — the file later PRs diff against — plus the crash
    smoke's durability verdict."""
    benches = {}
    for name, entry in report["engine_micro"].items():
        benches[name] = {
            "modes": ["row", "columnar"],
            "table_rows": entry["table_rows"],
            "rows_returned": entry["rows_returned"],
            "row_s": entry["row_s"],
            "columnar_s": entry["columnar_s"],
            "row_rows_per_s": entry["row_rows_per_s"],
            "columnar_rows_per_s": entry["columnar_rows_per_s"],
            "speedup": entry["speedup"],
        }
    trajectory = {
        "schema": TRAJECTORY_SCHEMA,
        "pr": TRAJECTORY_PR,
        "scale": report["scale"],
        "benches": benches,
    }
    planner_modes = report.get("planner_modes")
    if planner_modes:
        trajectory["planner_modes"] = {
            name: {
                "rule_s": entry["rule_s"],
                "cost_s": entry["cost_s"],
                "ratio": entry["ratio"],
            }
            for name, entry in planner_modes.items()
        }
    bench_mvcc = report.get("bench_mvcc")
    if bench_mvcc:
        trajectory["mvcc"] = {
            "ro_lock_waits_2pl": bench_mvcc["ro_lock_waits_2pl"],
            "ro_lock_waits_mvcc": bench_mvcc["ro_lock_waits_mvcc"],
            "ro_aborts_2pl": bench_mvcc["ro_aborts_2pl"],
            "ro_aborts_mvcc": bench_mvcc["ro_aborts_mvcc"],
            "expand_p99_2pl": bench_mvcc["expand_p99_2pl"],
            "expand_p99_mvcc": bench_mvcc["expand_p99_mvcc"],
            "schedule_hash_mvcc": bench_mvcc["schedule_hash_mvcc"],
        }
    crash = report.get("crash")
    if crash:
        trajectory["crash"] = {
            "schedule_hash": crash["schedule_hash"],
            "sweep_profiles": crash["sweep_profiles"],
            "lost_committed": crash["lost_committed"],
            "resurrected": crash["resurrected"],
        }
    return trajectory


def run(scale: str, fault_profile=None, fault_seed: int = 1, trace_profile=None) -> dict:
    if scale == "small":
        # Deep enough that the padded IN-list shapes repeat and the
        # plan-cache invariant stays checkable.
        tree = TreeParameters(depth=4, branching=3, visibility=0.6)
    else:
        tree = TreeParameters(depth=5, branching=4, visibility=0.5)
    network = NetworkParameters(
        latency_s=WAN_512.latency_s, dtr_kbit_s=WAN_512.dtr_kbit_s
    )
    scenario = build_scenario(tree, WAN_512, seed=SEED)
    results = {}
    for strategy in STRATEGIES:
        measured = measure_action(scenario, Action.MLE, strategy)
        packets = BATCH_QUERY_PACKETS if strategy is Strategy.BATCHED else 1
        model = predict(
            Action.MLE, strategy, tree, network, query_packets=packets
        )
        results[strategy.value] = {
            "simulated_ms": round(measured.seconds * 1000.0, 3),
            "model_ms": round(model.total_seconds * 1000.0, 3),
            "round_trips": measured.round_trips,
            "statements": measured.statements,
            "plan_cache_hits": measured.plan_cache_hits,
            "payload_bytes": measured.payload_bytes,
            "wire_bytes": measured.wire_bytes,
            "result_nodes": measured.result_nodes,
        }
    opcode_traffic = dict(scenario.link.stats.opcode_messages)
    lint = lint_summary()
    report = {
        "scale": scale,
        "tree": {
            "depth": tree.depth,
            "branching": tree.branching,
            "visibility": tree.visibility,
        },
        "network": {
            "latency_s": network.latency_s,
            "dtr_kbit_s": network.dtr_kbit_s,
        },
        "strategies": results,
        "opcode_messages": opcode_traffic,
        "lint": lint,
        "contention": run_contention_smoke(),
        "bench_mvcc": run_mvcc_smoke(),
        "crash": run_crash_smoke(),
        "engine_micro": run_engine_micro(scale),
        "planner_modes": run_planner_modes(
            size=SMOKE_SIZES[0], repeats=2 if scale == "small" else 3
        ),
    }
    if fault_profile is not None and not fault_profile.perfect:
        report["faults"] = run_chaos(tree, scenario, fault_profile, fault_seed)
    if trace_profile is not None:
        report["trace"] = run_trace(tree, scenario, trace_profile, fault_seed)
    return report


def check(report: dict) -> list:
    """The smoke invariants; returns a list of failure descriptions."""
    failures = []
    strategies = report["strategies"]
    batched = strategies[Strategy.BATCHED.value]
    early = strategies[Strategy.EARLY.value]
    recursive = strategies[Strategy.RECURSIVE.value]
    if batched["round_trips"] != report["tree"]["depth"]:
        failures.append(
            f"batched expand took {batched['round_trips']} round trips, "
            f"expected depth={report['tree']['depth']}"
        )
    if not (
        recursive["simulated_ms"]
        < batched["simulated_ms"]
        < early["simulated_ms"]
    ):
        failures.append("batched is not between recursive and early")
    if batched["plan_cache_hits"] <= 0:
        failures.append("batched expand produced no plan-cache hits")
    sizes = {entry["result_nodes"] for entry in strategies.values()}
    if len(sizes) != 1:
        failures.append(f"strategies disagree on tree size: {sizes}")
    faults = report.get("faults")
    if faults:
        for name, entry in faults["strategies"].items():
            if not entry["converged"]:
                failures.append(
                    f"{name} under {faults['profile']} did not converge to "
                    f"its zero-fault tree"
                )
        injected = sum(
            entry["drops"] + entry["corrupt_frames"]
            for entry in faults["strategies"].values()
        )
        if injected == 0:
            failures.append(
                f"{faults['profile']} (seed {faults['fault_seed']}) "
                f"injected no faults — chaos smoke proved nothing"
            )
    lint = report.get("lint")
    if lint and not lint["gate_ok"]:
        failures.append(
            f"bench query templates are not lint-clean: {lint['findings']}"
        )
    contention = report.get("contention")
    if contention:
        if not contention["deterministic"]:
            failures.append(
                "contention smoke: same-seed runs are not byte-identical"
            )
        if contention["lost_updates"] != 0:
            failures.append(
                f"contention smoke lost {contention['lost_updates']} updates"
            )
        if contention["lock_waits"] + contention["deadlock_aborts"] == 0:
            failures.append(
                "contention smoke saw no lock conflicts — proved nothing"
            )
    bench_mvcc = report.get("bench_mvcc")
    if bench_mvcc:
        if not bench_mvcc["deterministic"]:
            failures.append(
                "bench_mvcc: same-seed MVCC runs are not byte-identical"
            )
        failures.extend(
            f"bench_mvcc: {failure}"
            for failure in bench_mvcc["gate_failures"]
        )
    crash = report.get("crash")
    if crash:
        if not crash["deterministic"]:
            failures.append(
                "crash smoke: same-seed runs are not byte-identical"
            )
        if not crash["crash_occurred"]:
            failures.append("crash smoke: crash point never fired")
        if crash["lost_committed"]:
            failures.append(
                f"crash smoke lost {crash['lost_committed']} committed txns"
            )
        if crash["resurrected"]:
            failures.append(
                f"crash smoke resurrected {crash['resurrected']} "
                f"uncommitted increments"
            )
        if not crash["fixpoint"]:
            failures.append("crash smoke: final recovery is not a fixpoint")
        if not crash["sweep_ok"]:
            failures.append(
                f"crash sweep violated durability invariants: "
                f"{crash['sweep_error']}"
            )
    micro = report.get("engine_micro")
    if micro:
        # Coarse gate: the vectorized executor must never be slower than
        # the row executor on the scan/filter shapes it was built for.
        # (The ambitious >=5x target is recorded in the trajectory file
        # and EXPERIMENTS.md, not enforced on noisy CI runners.)
        for name, entry in micro.items():
            if entry["shape"] in ("scan_filter", "narrow_and") and entry["speedup"] < 1.0:
                failures.append(
                    f"engine micro {name}: columnar slower than row "
                    f"({entry['speedup']:.2f}x)"
                )
    planner_modes = report.get("planner_modes")
    if planner_modes:
        # The costed planner may only deviate from the rule-based one
        # where the cost model says it should win, so its wall time must
        # stay within 2x on every micro shape.
        failures.extend(planner_mode_failures(planner_modes))
    trace = report.get("trace")
    if trace:
        decomposition = trace["decomposition"]
        if not decomposition["exact"]:
            failures.append(
                f"trace decomposition leaks simulated time: components sum "
                f"to {decomposition['component_sum']!r} but the root span "
                f"lasted {decomposition['root_seconds']!r}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="paper",
        help="small shrinks the tree for quick CI smoke runs",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the machine-readable report to PATH",
    )
    parser.add_argument(
        "--fault-profile",
        choices=sorted(FAULT_PROFILES),
        help="additionally re-run every strategy resiliently under this "
        "chaos preset and require byte-identical convergence",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=1,
        help="seed for the deterministic fault plan (default: 1)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="run one fully traced resilient batched expand (under "
        "--fault-profile, default flaky-wan), write the span-tree JSON "
        "export to PATH and print the time decomposition",
    )
    parser.add_argument(
        "--bench-trajectory",
        metavar="PATH",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", f"BENCH_{TRAJECTORY_PR}.json"
        ),
        help="where to write the perf-trajectory baseline "
        f"(default: BENCH_{TRAJECTORY_PR}.json at the repo root; "
        "pass '' to skip)",
    )
    args = parser.parse_args(argv)
    report = run(
        args.scale,
        fault_profile=(
            FAULT_PROFILES[args.fault_profile] if args.fault_profile else None
        ),
        fault_seed=args.fault_seed,
        trace_profile=(
            FAULT_PROFILES[args.fault_profile or "flaky-wan"]
            if args.trace
            else None
        ),
    )
    header = (
        f"{'strategy':<12s} {'sim ms':>10s} {'model ms':>10s} "
        f"{'trips':>6s} {'stmts':>6s} {'cache':>6s} {'wire B':>10s}"
    )
    print(header)
    for name, entry in report["strategies"].items():
        print(
            f"{name:<12s} {entry['simulated_ms']:>10.1f} "
            f"{entry['model_ms']:>10.1f} {entry['round_trips']:>6d} "
            f"{entry['statements']:>6d} {entry['plan_cache_hits']:>6d} "
            f"{entry['wire_bytes']:>10.0f}"
        )
    faults = report.get("faults")
    if faults:
        print(
            f"\nchaos: {faults['profile']} "
            f"(fault seed {faults['fault_seed']})"
        )
        print(
            f"{'strategy':<12s} {'sim ms':>10s} {'drops':>6s} "
            f"{'retry':>6s} {'t/o':>5s} {'resume':>7s} {'conv':>5s}"
        )
        for name, entry in faults["strategies"].items():
            print(
                f"{name:<12s} {entry['simulated_ms']:>10.1f} "
                f"{entry['drops']:>6d} {entry['retries']:>6d} "
                f"{entry['timeouts']:>5d} {entry['expand_resumes']:>7d} "
                f"{'yes' if entry['converged'] else 'NO':>5s}"
            )
    contention = report.get("contention")
    if contention:
        print(
            f"\ncontention smoke: hash={contention['schedule_hash'][:16]} "
            f"steps={contention['steps']} "
            f"deadlocks={contention['deadlock_aborts']} "
            f"restarts={contention['txn_restarts']} "
            f"lost={contention['lost_updates']} "
            f"deterministic={'yes' if contention['deterministic'] else 'NO'}"
        )
    trace = report.get("trace")
    if trace:
        from repro.bench.report import format_trace_summary

        print(
            f"\ntraced expand under {trace['profile']} "
            f"(fault seed {trace['fault_seed']}):"
        )
        print(format_trace_summary(trace, max_depth=2))
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=2, sort_keys=True)
        print(f"wrote {args.trace}")
    bench_mvcc = report.get("bench_mvcc")
    if bench_mvcc:
        print(
            f"\nmvcc smoke (audit_eco): "
            f"ro_waits 2pl={bench_mvcc['ro_lock_waits_2pl']} "
            f"mvcc={bench_mvcc['ro_lock_waits_mvcc']} "
            f"ro_aborts 2pl={bench_mvcc['ro_aborts_2pl']} "
            f"mvcc={bench_mvcc['ro_aborts_mvcc']} "
            f"expand_p99 2pl={bench_mvcc['expand_p99_2pl']:.3f}s "
            f"mvcc={bench_mvcc['expand_p99_mvcc']:.3f}s "
            f"deterministic={'yes' if bench_mvcc['deterministic'] else 'NO'}"
        )
    crash = report.get("crash")
    if crash:
        print(
            f"\ncrash smoke: hash={crash['schedule_hash'][:16]} "
            f"steps={crash['steps']} restarts={crash['restarts']} "
            f"tail={crash['tail_status']} "
            f"lost={crash['lost_committed']} "
            f"resurrected={crash['resurrected']} "
            f"sweep={crash['sweep_profiles']} profiles "
            f"deterministic={'yes' if crash['deterministic'] else 'NO'}"
        )
    micro = report.get("engine_micro")
    if micro:
        from bench_engine_micro import format_micro

        print("\nengine micro (row vs columnar):")
        print(format_micro(micro))
    planner_modes = report.get("planner_modes")
    if planner_modes:
        from bench_engine_micro import format_planner_modes

        print("\nplanner modes (rule vs cost-based after ANALYZE):")
        print(format_planner_modes(planner_modes))
    failures = check(report)
    trajectory = trajectory_report(report)
    # Diff against the most recent predecessor that actually exists —
    # trajectory slots are PR numbers and not every PR writes one.
    repo_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    for previous in range(TRAJECTORY_PR - 1, 0, -1):
        baseline_path = os.path.join(repo_root, f"BENCH_{previous}.json")
        if os.path.exists(baseline_path):
            failures.extend(diff_trajectory(trajectory, baseline_path))
            break
    report["ok"] = not failures
    trajectory_path = args.bench_trajectory
    if trajectory_path:
        with open(trajectory_path, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {trajectory_path}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
