"""Table 2 — navigational access with late rule evaluation (the baseline).

Regenerates every cell: the analytic model is checked against the
published values to the cent; the end-to-end simulation (real SQL over the
simulated WAN) must land in the same regime.  The pytest-benchmark timing
measures host-side cost of executing the action on the built substrate.
"""

import pytest

from repro.bench.experiments import run_table2
from repro.bench.measure import measure_action, price_traffic
from repro.model.parameters import PAPER_NETWORKS
from repro.model.response_time import Action, Strategy, predict


def test_table2_report_matches_paper(benchmark, capsys):
    report = benchmark(run_table2, simulate=False)
    assert report.max_model_error() <= 0.011
    with capsys.disabled():
        print()
        print(report.to_text())


@pytest.mark.parametrize("action", [Action.QUERY, Action.EXPAND, Action.MLE])
def test_bench_scenario1_late(benchmark, scenario1, action):
    result = benchmark.pedantic(
        lambda: measure_action(scenario1, action, Strategy.LATE),
        rounds=3,
        iterations=1,
    )
    model = predict(action, Strategy.LATE, scenario1.tree, PAPER_NETWORKS[0])
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["model_seconds"] = model.total_seconds
    benchmark.extra_info["round_trips"] = result.round_trips
    assert 0.3 < result.seconds / model.total_seconds < 3.0


@pytest.mark.parametrize("action", [Action.QUERY, Action.EXPAND, Action.MLE])
def test_bench_scenario2_late(benchmark, scenario2, action, paper_scale):
    result = benchmark.pedantic(
        lambda: measure_action(scenario2, action, Strategy.LATE),
        rounds=1,
        iterations=1,
    )
    model = predict(action, Strategy.LATE, scenario2.tree, PAPER_NETWORKS[0])
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["model_seconds"] = model.total_seconds
    if paper_scale:  # small smoke trees sit in per-query-overhead regime
        assert 0.3 < result.seconds / model.total_seconds < 3.0


@pytest.mark.parametrize("action", [Action.QUERY, Action.MLE])
def test_bench_scenario3_late(benchmark, scenario3, action):
    result = benchmark.pedantic(
        lambda: measure_action(scenario3, action, Strategy.LATE),
        rounds=1,
        iterations=1,
    )
    model = predict(action, Strategy.LATE, scenario3.tree, PAPER_NETWORKS[0])
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["model_seconds"] = model.total_seconds
    assert 0.3 < result.seconds / model.total_seconds < 3.0


def test_simulated_grid_reprices_across_networks(measured_grids):
    """T = messages*T_Lat + bytes/dtr: the same traffic trace priced on the
    three table networks must scale exactly with the network parameters."""
    for grid in measured_grids.values():
        measured = grid[(Action.MLE, Strategy.LATE)]
        times = [
            price_traffic(measured.traffic, network)
            for network in PAPER_NETWORKS
        ]
        assert times[0] > times[1] > times[2]
