"""Ablation A5 — server CPU cost (the paper's Section 6 caveat).

"In the described environment transmission costs are the dominating
limitation factor.  Therefore local query evaluation costs were ignored
... In higher bandwidth environments, however, it may be reasonable to
take local query execution time into consideration."

This ablation switches a CPU cost model on and measures the recursive
multi-level expand over WAN-256 and over the LAN: the same CPU seconds
that vanish in the WAN noise become the dominant share locally.
"""

from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import LAN, WAN_256
from repro.pdm.operations import ExpandStrategy
from repro.server.server import CpuCostModel

#: 20 µs per scanned row ≈ a year-2000 server evaluating simple predicates.
CPU_COST = CpuCostModel(seconds_per_statement=0.005, seconds_per_row_scanned=0.00002)

TREE = TreeParameters(depth=5, branching=3, visibility=0.6)


def expand_with_cost(profile, cpu_cost):
    scenario = build_scenario(TREE, profile, seed=31)
    scenario.server.cpu_cost = cpu_cost if cpu_cost is not None else CpuCostModel()
    result = scenario.client.multi_level_expand(
        scenario.product.root_obid,
        ExpandStrategy.RECURSIVE_EARLY,
        root_attrs=scenario.product.root_attributes(),
    )
    return result


def test_bench_wan_with_cpu_cost(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: expand_with_cost(WAN_256, CPU_COST), rounds=1, iterations=1
    )
    share = result.traffic.server_seconds / result.seconds
    benchmark.extra_info["cpu_share_percent"] = round(100 * share, 1)
    with capsys.disabled():
        print(
            f"\nWAN-256 recursive MLE: {result.seconds:.2f} s total, "
            f"{result.traffic.server_seconds:.2f} s CPU "
            f"({100 * share:.0f} %)"
        )
    # Over the WAN the CPU share stays minor.
    assert share < 0.35


def test_bench_lan_with_cpu_cost(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: expand_with_cost(LAN, CPU_COST), rounds=1, iterations=1
    )
    share = result.traffic.server_seconds / result.seconds
    benchmark.extra_info["cpu_share_percent"] = round(100 * share, 1)
    with capsys.disabled():
        print(
            f"LAN recursive MLE:     {result.seconds:.2f} s total, "
            f"{result.traffic.server_seconds:.2f} s CPU "
            f"({100 * share:.0f} %)"
        )
    # On the LAN the same evaluation work becomes a major share of the
    # response time (~40 % here vs ~2 % over the WAN).
    assert share > 0.3


def test_paper_convention_is_zero_cost(benchmark):
    result = benchmark.pedantic(
        lambda: expand_with_cost(WAN_256, None), rounds=1, iterations=1
    )
    assert result.traffic.server_seconds == 0.0
