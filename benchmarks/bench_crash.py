"""Crash-chaos benchmark: seeded crash points under a live workload.

Sweeps the WAL crash-point grid — every append position under every
failure flavour (clean stop, torn final record, bit-flipped corrupt
tail) — through the deterministic crash-chaos simulator and audits the
two durability invariants per run: zero lost committed transactions and
zero resurrected uncommitted writes.

    python benchmarks/bench_crash.py --json BENCH_crash.json

``--smoke`` runs one fixed-seed crash cell twice (byte-identical
reports required) plus a reduced sweep — the CI gate for the recovery
subsystem.  The full mode sweeps >= 50 crash points and additionally
re-runs a sample cell to assert byte-identical reports per seed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.errors import DurabilityError  # noqa: E402
from repro.recovery import (  # noqa: E402
    CrashConfig,
    CrashChaosSim,
    report_json,
    run_crash_sweep,
)

SEED = 42

SMOKE_CONFIG = CrashConfig(crash_at_append=7, failure="torn", seed=SEED)


def print_table(summary: dict) -> None:
    header = (
        f"{'crash_at':>8s} {'failure':>8s} {'restarts':>8s} "
        f"{'acked':>6s} {'applied':>8s} {'sum':>5s} {'tail':>8s} "
        f"{'discarded':>9s}"
    )
    print(header)
    for run in summary["runs"]:
        print(
            f"{run['crash_at']:>8d} {run['failure']:>8s} "
            f"{run['restarts']:>8d} {run['acked']:>6d} "
            f"{run['applied']:>8d} {run['counter_sum']:>5d} "
            f"{str(run['tail_status']):>8s} {str(run['discarded']):>9s}"
        )
    print(
        f"{summary['profiles']} profiles, seed {summary['seed']}, "
        f"invariants held: {summary['all_invariants_held']}"
    )


def determinism_check(config: CrashConfig) -> list:
    """Two runs of one cell must produce byte-identical reports."""
    first = CrashChaosSim(config).run()
    second = CrashChaosSim(config).run()
    failures = []
    if report_json(first) != report_json(second):
        failures.append(
            "same-seed crash reports differ — recovery is not deterministic"
        )
    if first["lost_committed"]:
        failures.append(f"lost committed txns: {first['lost_committed']}")
    if first["resurrected"]:
        failures.append(f"resurrected increments: {first['resurrected']}")
    if not first["final_recovery_fixpoint"]:
        failures.append("final recovery is not a fixpoint")
    if not first["crash"]["occurred"]:
        failures.append("crash point never fired — proved nothing")
    print(
        f"cell crash@{config.crash_at_append}-{config.failure}: "
        f"schedule hash {first['schedule']['hash']}"
    )
    print(
        f"steps={first['schedule']['steps']} restarts={first['restarts']} "
        f"acked={first['acked_txns']} applied={first['applied_txns']} "
        f"tail={first['crash_recovery'].get('tail_status')} "
        f"discarded={first['crash_recovery'].get('txns_discarded')}"
    )
    return failures


def smoke() -> int:
    """Fixed-seed gate: one cell twice byte-identically, plus a reduced
    sweep covering all three failure flavours."""
    failures = determinism_check(SMOKE_CONFIG)
    try:
        summary = run_crash_sweep(seed=SEED, max_crash_at=4)
    except DurabilityError as error:
        failures.append(str(error))
    else:
        print(
            f"reduced sweep: {summary['profiles']} profiles, "
            f"invariants held: {summary['all_invariants_held']}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed", type=int, default=SEED, help="base seed for the sweep"
    )
    parser.add_argument(
        "--max-crash-at",
        type=int,
        default=17,
        help="sweep crash points 1..N under each failure flavour",
    )
    parser.add_argument(
        "--clients", type=int, default=3, help="clients per run"
    )
    parser.add_argument(
        "--txns", type=int, default=3, help="transactions per client"
    )
    parser.add_argument("--json", metavar="PATH", help="write the summary")
    parser.add_argument(
        "--smoke", action="store_true", help="CI determinism gate"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()

    failures = determinism_check(
        CrashConfig(
            clients=args.clients,
            txns_per_client=args.txns,
            crash_at_append=7,
            failure="corrupt",
            seed=args.seed,
        )
    )
    try:
        summary = run_crash_sweep(
            seed=args.seed,
            max_crash_at=args.max_crash_at,
            clients=args.clients,
            txns_per_client=args.txns,
        )
    except DurabilityError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print_table(summary)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
