"""Extension E2 — multi-server replication vs SQL tuning (Section 7
outlook).

Measures the Brazilian engineer's multi-level expand against (a) the
central server navigationally, (b) the central server with the recursive
query, (c) a LAN replica navigationally — and the write penalty the
replica costs.
"""

import pytest

from repro.model.parameters import TreeParameters
from repro.network.profiles import LAN, WAN_256, WAN_512
from repro.pdm.generator import generate_product
from repro.pdm.operations import ExpandStrategy, PDMClient
from repro.server.multisite import build_replicated_deployment


@pytest.fixture(scope="module")
def deployment():
    product = generate_product(
        TreeParameters(depth=5, branching=3, visibility=1.0), seed=11
    )
    return build_replicated_deployment(
        product,
        primary_profile=WAN_256,
        replica_profiles={"brazil-lan": LAN, "us-office": WAN_512},
        primary_name="germany",
    )


@pytest.fixture(scope="module")
def product(deployment):
    # The deployment fixture loaded this exact product everywhere.
    return deployment.primary, deployment


def test_bench_central_recursive(benchmark, deployment):
    client = PDMClient(deployment.site("germany").connection)

    def run():
        return client.multi_level_expand(1, ExpandStrategy.RECURSIVE_EARLY)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    assert result.round_trips == 1


def test_bench_replica_navigational(benchmark, deployment):
    client = PDMClient(deployment.site("brazil-lan").connection)

    def run():
        return client.multi_level_expand(1, ExpandStrategy.NAVIGATIONAL_LATE)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    # LAN-local navigation beats even the recursive WAN query.
    assert result.seconds < 5.0


def test_bench_write_propagation(benchmark, deployment):
    def run():
        __, sync_seconds = deployment.execute_write(
            "UPDATE assy SET weight = weight + 1 WHERE obid = 1"
        )
        return sync_seconds

    sync_seconds = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["simulated_seconds"] = sync_seconds
    # Synchronous writes pay the primary WAN plus the slowest replica.
    assert sync_seconds > 0.6


def test_replica_vs_central_tradeoff(benchmark, deployment):
    """The headline comparison: all three options measured side by side."""

    def run():
        central_nav = PDMClient(
            deployment.site("germany").connection
        ).multi_level_expand(1, ExpandStrategy.NAVIGATIONAL_LATE)
        central_rec = PDMClient(
            deployment.site("germany").connection
        ).multi_level_expand(1, ExpandStrategy.RECURSIVE_EARLY)
        replica_nav = PDMClient(
            deployment.site("brazil-lan").connection
        ).multi_level_expand(1, ExpandStrategy.NAVIGATIONAL_LATE)
        return central_nav, central_rec, replica_nav

    central_nav, central_rec, replica_nav = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert central_rec.seconds < 0.05 * central_nav.seconds
    assert replica_nav.seconds < 0.05 * central_nav.seconds
