"""Extension E1 — check-out deployment modes (paper Section 6).

The paper notes check-out "cannot be represented in one single query";
either extra WAN round trips are paid (two-phase) or "application-specific
functionality performing the desired user action has to be installed at
the database server".  This bench quantifies both.
"""

import pytest

from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import WAN_256
from repro.pdm.operations import CheckOutMode
from repro.rules.conditions import Attribute, Comparison, Const, ForAllRows
from repro.rules.model import Actions, Rule


@pytest.fixture(scope="module")
def checkout_scenario():
    scenario = build_scenario(
        TreeParameters(depth=4, branching=3, visibility=1.0), WAN_256, seed=7
    )
    scenario.rule_table.add(
        Rule(
            user="*",
            action=Actions.CHECK_OUT,
            object_type="assy",
            condition=ForAllRows(
                Comparison("=", Attribute("checkedout"), Const(False))
            ),
        )
    )
    return scenario


def test_bench_two_phase_checkout(benchmark, checkout_scenario):
    scenario = checkout_scenario
    root_attrs = scenario.product.root_attributes()

    def run():
        result = scenario.client.check_out(
            scenario.product.root_obid,
            CheckOutMode.TWO_PHASE,
            root_attrs=root_attrs,
        )
        scenario.client.check_in(
            scenario.product.root_obid, CheckOutMode.TWO_PHASE
        )
        return result

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["round_trips"] = result.round_trips
    assert result.round_trips == 3


def test_bench_server_procedure_checkout(benchmark, checkout_scenario):
    scenario = checkout_scenario

    def run():
        result = scenario.client.check_out(
            scenario.product.root_obid, CheckOutMode.SERVER_PROCEDURE
        )
        scenario.client.check_in(
            scenario.product.root_obid, CheckOutMode.SERVER_PROCEDURE
        )
        return result

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["round_trips"] = result.round_trips
    assert result.round_trips == 1


def test_function_shipping_saves_latency(benchmark, checkout_scenario):
    scenario = checkout_scenario
    root = scenario.product.root_obid
    root_attrs = scenario.product.root_attributes()

    def compare():
        two_phase = scenario.client.check_out(
            root, CheckOutMode.TWO_PHASE, root_attrs=root_attrs
        )
        scenario.client.check_in(root, CheckOutMode.TWO_PHASE)
        procedure = scenario.client.check_out(root, CheckOutMode.SERVER_PROCEDURE)
        scenario.client.check_in(root, CheckOutMode.SERVER_PROCEDURE)
        return two_phase, procedure

    two_phase, procedure = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert (
        procedure.traffic.latency_seconds
        == two_phase.traffic.latency_seconds / 3
    )
    # The procedure also ships far fewer bytes (ids instead of full rows).
    assert procedure.traffic.payload_bytes < two_phase.traffic.payload_bytes
