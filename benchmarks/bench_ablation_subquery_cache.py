"""Ablation A2 — uncorrelated-subquery caching (paper Section 5.3.1).

"Please note that rec_table occurs in the outer and in the inner clause!
But an intelligent query optimizer will recognize that the inner clause
needs to be evaluated only once, as it is an uncorrelated sub-query."

This bench measures the engine with and without that optimisation on the
∀rows all-or-nothing query shape, at a size where the difference is the
asymptotic O(n) vs O(n²).
"""

import pytest

from repro.sqldb import Database

ROWS = 1000


@pytest.fixture(scope="module")
def db():
    db = Database()
    db.execute("CREATE TABLE nodes (obid INTEGER PRIMARY KEY, dec CHAR(1))")
    db.executemany(
        "INSERT INTO nodes VALUES (?, ?)",
        [(i, "+") for i in range(ROWS)],
    )
    return db

ALL_OR_NOTHING = (
    "SELECT * FROM nodes WHERE NOT EXISTS "
    "(SELECT * FROM nodes WHERE dec <> '+')"
)


def test_bench_with_cache(benchmark, db):
    db.enable_subquery_cache = True

    def run():
        return db.execute(ALL_OR_NOTHING)

    result = benchmark(run)
    assert len(result) == ROWS


def test_bench_without_cache(benchmark, db):
    db.enable_subquery_cache = False

    def run():
        return db.execute(ALL_OR_NOTHING)

    result = benchmark(run)
    db.enable_subquery_cache = True
    assert len(result) == ROWS


def test_cache_reduces_subquery_executions(db):
    from repro.sqldb.executor import ExecutionEnv
    from repro.sqldb.parser import parse_statement
    from repro.sqldb.planner import Planner
    from repro.sqldb.recursive import execute_plan

    plan = Planner(db.catalog, db.functions).plan_select(
        parse_statement(ALL_OR_NOTHING)
    )
    cached_env = ExecutionEnv(functions=db.functions)
    execute_plan(plan, cached_env)
    uncached_env = ExecutionEnv(functions=db.functions)
    uncached_env.enable_subquery_cache = False
    execute_plan(plan, uncached_env)
    assert cached_env.counters["subquery_executions"] == 1
    assert uncached_env.counters["subquery_executions"] == ROWS
