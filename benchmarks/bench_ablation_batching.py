"""Ablation — pipelined level-at-a-time batching vs the paper's strategies.

The paper jumps from the navigational baseline (one round trip per
visible node) straight to the recursive query (one round trip total).
The batch protocol realises the intermediate point: one pipelined batch
of frontier fetches per level, i.e. exactly δ round trips, with the
multi-key index probes keeping each statement a single indexed access.
This bench puts all four strategies side by side (model vs simulation)
on a κ=4, δ=5, σ=0.5 product over the Figure-4 WAN.
"""

import pytest

from repro.bench.measure import measure_action
from repro.bench.workload import build_scenario
from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.response_time import Action, Strategy, predict
from repro.network.profiles import WAN_512

TREE = TreeParameters(depth=5, branching=4, visibility=0.5)
NETWORK = NetworkParameters(latency_s=0.15, dtr_kbit_s=512)
SEED = 42

#: Each level's batch ships one frontier statement per node type, so the
#: analytic model charges two query packets per level.
BATCH_QUERY_PACKETS = 2

STRATEGIES = (
    Strategy.LATE,
    Strategy.EARLY,
    Strategy.BATCHED,
    Strategy.RECURSIVE,
)


def _model_seconds(strategy):
    packets = BATCH_QUERY_PACKETS if strategy is Strategy.BATCHED else 1
    return predict(
        Action.MLE, strategy, TREE, NETWORK, query_packets=packets
    ).total_seconds


@pytest.fixture(scope="module")
def batching_scenario():
    return build_scenario(TREE, WAN_512, seed=SEED)


@pytest.fixture(scope="module")
def measured(batching_scenario):
    """One end-to-end MLE per strategy on the shared scenario."""
    return {
        strategy: measure_action(batching_scenario, Action.MLE, strategy)
        for strategy in STRATEGIES
    }


def test_ablation_report(benchmark, measured, capsys):
    def build_report():
        lines = [
            "ablation: level-at-a-time batching "
            f"({TREE.label}; {NETWORK.label})",
            f"{'strategy':<12s} {'sim s':>8s} {'model s':>8s} "
            f"{'trips':>6s} {'stmts':>6s} {'cache':>6s} {'nodes':>6s}",
        ]
        for strategy in STRATEGIES:
            action = measured[strategy]
            lines.append(
                f"{strategy.value:<12s} {action.seconds:>8.3f} "
                f"{_model_seconds(strategy):>8.3f} "
                f"{action.round_trips:>6d} {action.statements:>6d} "
                f"{action.plan_cache_hits:>6d} {action.result_nodes:>6d}"
            )
        return "\n".join(lines)

    text = benchmark(build_report)
    with capsys.disabled():
        print()
        print(text)
    assert "batched" in text


def test_batched_round_trips_equal_depth(benchmark, measured):
    """The headline property: O(δ) round trips, one batch per level."""
    action = benchmark.pedantic(
        lambda: measured[Strategy.BATCHED], rounds=1, iterations=1
    )
    assert action.round_trips == TREE.depth
    # One frontier statement per node type per level rode those batches.
    assert action.statements == 2 * TREE.depth
    # The padded IN-list shapes made the server's plan cache hit.
    assert action.plan_cache_hits > 0


def test_batched_sits_between_early_and_recursive(benchmark, measured):
    def orderings():
        simulated = {s: measured[s].seconds for s in STRATEGIES}
        model = {s: _model_seconds(s) for s in STRATEGIES}
        return simulated, model

    simulated, model = benchmark(orderings)
    for times in (simulated, model):
        assert times[Strategy.RECURSIVE] < times[Strategy.BATCHED]
        assert times[Strategy.BATCHED] < times[Strategy.EARLY]
    # Latency collapses from O(visible nodes) to O(depth): an order of
    # magnitude on this tree, even before the recursive endgame.
    assert simulated[Strategy.BATCHED] < simulated[Strategy.EARLY] / 10.0


def test_batched_model_matches_simulation(benchmark, measured):
    action = measured[Strategy.BATCHED]

    def relative_error():
        model = _model_seconds(Strategy.BATCHED)
        return abs(action.seconds - model) / model

    assert benchmark(relative_error) < 0.15


def test_all_strategies_return_the_same_tree_size(benchmark, measured):
    sizes = benchmark(
        lambda: {s: measured[s].result_nodes for s in STRATEGIES}
    )
    assert len(set(sizes.values())) == 1
