"""Figure 5 — δ=7, κ=5, σ=0.6 over T_Lat=150 ms / dtr=256 kbit/s.

The paper's worst case: a late-eval MLE takes ~28 minutes; recursion cuts
it to under a minute.
"""

import pytest

from repro.bench import paper_values
from repro.bench.experiments import run_figure5
from repro.bench.measure import price_traffic
from repro.model.parameters import FIGURE5_NETWORK
from repro.model.response_time import Action, Strategy
from repro.model.tables import figure5_series


def test_figure5_report(benchmark, capsys):
    text = benchmark(run_figure5, simulate=False)
    with capsys.disabled():
        print()
        print(text)
    assert "figure5" in text


def test_figure5_model_matches_paper(benchmark):
    series = benchmark(figure5_series)
    for strategy, bars in paper_values.FIGURE5.items():
        for action, value in bars.items():
            assert series[strategy][action] == pytest.approx(value, abs=0.011)


def test_figure5_intro_anecdote(benchmark):
    """Section 2: 'such a multi-level expand was finished after only
    little more than half a minute using the LAN, whereas the same
    operation took up to half an hour using the WAN.'"""
    series = benchmark(figure5_series)
    wan_mle = series["late eval"]["MLE"]
    assert 25 * 60 < wan_mle < 30 * 60  # 1684 s ≈ 28 minutes


def test_figure5_simulated_series(benchmark, measured_grids, scenario3):
    key = (scenario3.tree.depth, scenario3.tree.branching)

    def build_series():
        grid = measured_grids[key]
        return {
            strategy: price_traffic(
                grid[(Action.MLE, strategy)].traffic, FIGURE5_NETWORK
            )
            for strategy in (Strategy.LATE, Strategy.EARLY, Strategy.RECURSIVE)
        }

    series = benchmark(build_series)
    assert series[Strategy.RECURSIVE] < 0.1 * series[Strategy.LATE]
    assert series[Strategy.EARLY] > 0.9 * series[Strategy.LATE]
