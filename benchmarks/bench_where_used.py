"""Extension E5 — where-used (reverse BOM) analysis.

The mirror image of the multi-level expand: climbing from a component to
everything that (transitively) contains it.  Navigational climbing pays
one round trip per ancestor; the upward recursive query pays one, full
stop.  On deep structures the ratio equals the structure depth.
"""

import pytest

from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import WAN_256
from repro.pdm.operations import ExpandStrategy

DEPTH = 8


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        TreeParameters(depth=DEPTH, branching=2, visibility=1.0),
        WAN_256,
        seed=13,
    )


@pytest.fixture(scope="module")
def deep_leaf(scenario):
    return scenario.product.components[0].obid


def test_bench_where_used_recursive(benchmark, scenario, deep_leaf):
    def run():
        return scenario.client.where_used(
            deep_leaf, ExpandStrategy.RECURSIVE_EARLY
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    assert result.round_trips == 1
    assert len(result.objects) == DEPTH


def test_bench_where_used_navigational(benchmark, scenario, deep_leaf):
    def run():
        return scenario.client.where_used(
            deep_leaf, ExpandStrategy.NAVIGATIONAL_LATE
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["simulated_seconds"] = result.seconds
    # One probe per visited node: the leaf plus every ancestor.
    assert result.round_trips == DEPTH + 1


def test_latency_ratio_equals_depth(benchmark, scenario, deep_leaf):
    def run():
        recursive = scenario.client.where_used(
            deep_leaf, ExpandStrategy.RECURSIVE_EARLY
        )
        navigational = scenario.client.where_used(
            deep_leaf, ExpandStrategy.NAVIGATIONAL_LATE
        )
        return recursive, navigational

    recursive, navigational = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = (
        navigational.traffic.latency_seconds
        / recursive.traffic.latency_seconds
    )
    assert ratio == pytest.approx(DEPTH + 1)
