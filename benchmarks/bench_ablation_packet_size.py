"""Ablation A1 — packet size sensitivity.

The paper fixes size_p at 4 kB.  The per-query overhead of the
navigational strategy is 1.5 packets, so its response time grows linearly
with the packet size while the recursive strategy (2 messages) barely
moves — i.e. the recursion advantage *increases* with packet size.
"""

import pytest

from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.response_time import Action, Strategy, predict

TREE = TreeParameters(depth=9, branching=3, visibility=0.6)
PACKET_SIZES = [512, 1024, 4096, 16384, 65536]


def network_with_packet(packet_bytes):
    return NetworkParameters(
        latency_s=0.15, dtr_kbit_s=512, packet_bytes=packet_bytes
    )


def test_bench_packet_size_sweep(benchmark, capsys):
    def sweep():
        rows = []
        for packet_bytes in PACKET_SIZES:
            network = network_with_packet(packet_bytes)
            late = predict(Action.MLE, Strategy.LATE, TREE, network)
            recursive = predict(Action.MLE, Strategy.RECURSIVE, TREE, network)
            rows.append(
                (packet_bytes, late.total_seconds, recursive.total_seconds)
            )
        return rows

    rows = benchmark(sweep)
    with capsys.disabled():
        print("\npacket[B]   MLE late[s]   MLE recursive[s]   saving%")
        for packet_bytes, late, recursive in rows:
            print(
                f"{packet_bytes:>9}{late:>14.2f}{recursive:>19.2f}"
                f"{100 * (1 - recursive / late):>10.2f}"
            )
    late_times = [row[1] for row in rows]
    recursive_times = [row[2] for row in rows]
    assert late_times == sorted(late_times)  # grows with packet size
    savings = [
        1 - recursive / late for __, late, recursive in rows
    ]
    assert savings == sorted(savings)  # advantage grows too


def test_packet_overhead_linear_in_query_count(benchmark):
    def overhead(packet_bytes):
        small = predict(
            Action.MLE, Strategy.LATE, TREE, network_with_packet(packet_bytes)
        )
        return small

    small = benchmark(overhead, 512)
    large = overhead(4096)
    # vol difference = q * 1.5 * (4096 - 512) bytes.
    expected = small.queries * 1.5 * (4096 - 512)
    assert large.volume_bytes - small.volume_bytes == pytest.approx(expected)
