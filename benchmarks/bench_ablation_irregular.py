"""Ablation A7 — the analytic model on irregular product structures.

The paper's model assumes complete κ-ary trees.  Real structures are
ragged; this ablation measures irregular (random-attachment) products end
to end and compares them against the complete-tree formulas fed with the
realised depth/branching.  The *qualitative* claims survive (recursion
still collapses the MLE to one round trip; the saving still exceeds 90 %),
while the absolute complete-tree predictions drift far from the
measurement — the reason the harness simulates instead of trusting the
formulas outside their assumptions.
"""

import pytest

from repro.bench.measure import measure_action
from repro.bench.workload import build_scenario
from repro.model.parameters import NetworkParameters
from repro.model.response_time import Action, Strategy, predict
from repro.network.profiles import WAN_256
from repro.pdm.generator import generate_irregular_product

NETWORK = NetworkParameters(latency_s=0.15, dtr_kbit_s=256)


@pytest.fixture(scope="module")
def irregular_scenario():
    product = generate_irregular_product(
        800, seed=23, leaf_probability=0.45, visibility=0.6
    )
    return build_scenario(product.tree, WAN_256, product=product)


def test_bench_irregular_mle_strategies(benchmark, irregular_scenario, capsys):
    scenario = irregular_scenario

    def run():
        return {
            strategy: measure_action(scenario, Action.MLE, strategy)
            for strategy in (Strategy.LATE, Strategy.EARLY, Strategy.RECURSIVE)
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    late = measured[Strategy.LATE]
    recursive = measured[Strategy.RECURSIVE]
    saving = 100 * (1 - recursive.seconds / late.seconds)
    with capsys.disabled():
        print(
            f"\nirregular product ({scenario.product.node_count} objects, "
            f"realised depth {scenario.tree.depth}, "
            f"max fan-out {scenario.tree.branching}):"
        )
        for strategy, action in measured.items():
            print(
                f"  MLE {strategy.value:<10} {action.seconds:8.2f} s  "
                f"{action.round_trips:5d} round trips"
            )
        print(f"  recursive saving: {saving:.1f} %")
    assert recursive.round_trips == 1
    assert saving > 90.0


def test_complete_tree_formulas_drift_on_irregular_shapes(
    benchmark, irregular_scenario
):
    scenario = irregular_scenario

    def run():
        measured = measure_action(scenario, Action.MLE, Strategy.LATE)
        prediction = predict(Action.MLE, Strategy.LATE, scenario.tree, NETWORK)
        return measured, prediction

    measured, prediction = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = prediction.total_seconds / measured.seconds
    # Feeding realised (depth, max fan-out) into the complete-tree model
    # overpredicts wildly: a complete tree of that depth and branching has
    # orders of magnitude more nodes than the ragged one.
    assert ratio > 5.0
