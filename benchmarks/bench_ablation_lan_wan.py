"""Ablation A4 — LAN vs WAN (the paper's Section 1 claim).

"there is hardly any problem with this procedure in local-area networks
... The picture changes dramatically, however, when applying the same
procedure to worldwide distributed application environments."

Runs the *same* navigational multi-level expand over a LAN and over the
three WAN profiles and verifies the claim quantitatively.
"""

import pytest

from repro.bench.measure import measure_action, price_traffic
from repro.bench.workload import build_scenario
from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.response_time import Action, Strategy, predict
from repro.network.profiles import LAN, PAPER_PROFILES, WAN_256

TREE = TreeParameters(depth=5, branching=3, visibility=0.6)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(TREE, WAN_256, seed=21)


def as_parameters(profile):
    return NetworkParameters(
        latency_s=profile.latency_s, dtr_kbit_s=profile.dtr_kbit_s
    )


def test_bench_lan_vs_wan_same_traffic(benchmark, scenario, capsys):
    measured = benchmark.pedantic(
        lambda: measure_action(scenario, Action.MLE, Strategy.LATE),
        rounds=1,
        iterations=1,
    )
    lan_seconds = price_traffic(measured.traffic, as_parameters(LAN))
    wan_rows = [
        (profile.name, price_traffic(measured.traffic, as_parameters(profile)))
        for profile in PAPER_PROFILES
    ]
    with capsys.disabled():
        print(f"\nnavigational MLE, same traffic trace ({measured.round_trips} RTs):")
        print(f"  {LAN.name:<10}{lan_seconds:>10.2f} s")
        for name, seconds in wan_rows:
            print(f"  {name:<10}{seconds:>10.2f} s")
    # LAN: acceptable; WAN: an order of magnitude worse at least, and the
    # intercontinental profile of the DaimlerChrysler tests ~50x worse.
    assert lan_seconds < 1.0
    assert all(seconds > 10 * lan_seconds for __, seconds in wan_rows)
    assert wan_rows[0][1] > 50 * lan_seconds


def test_intro_anecdote_at_paper_scale(benchmark):
    """Scenario 3's late MLE: ~half a minute on the LAN, ~half an hour on
    the WAN — the exact anecdote that opens Section 2."""
    tree = TreeParameters(depth=7, branching=5, visibility=0.6)

    def run():
        lan = predict(Action.MLE, Strategy.LATE, tree, as_parameters(LAN))
        wan = predict(Action.MLE, Strategy.LATE, tree, as_parameters(WAN_256))
        return lan.total_seconds, wan.total_seconds

    lan_seconds, wan_seconds = benchmark(run)
    assert 10 < lan_seconds < 60  # "little more than half a minute"
    assert 25 * 60 < wan_seconds < 35 * 60  # "up to half an hour"


def test_recursion_unnecessary_on_lan(benchmark, scenario):
    """On the LAN the navigational and recursive strategies are both
    sub-second — the tuning only matters over the WAN."""
    late = measure_action(scenario, Action.MLE, Strategy.LATE)
    recursive = measure_action(scenario, Action.MLE, Strategy.RECURSIVE)

    def price_both():
        return (
            price_traffic(late.traffic, as_parameters(LAN)),
            price_traffic(recursive.traffic, as_parameters(LAN)),
        )

    lan_late, lan_recursive = benchmark(price_both)
    assert lan_late < 1.0
    assert lan_recursive < 1.0
