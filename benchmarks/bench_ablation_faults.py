"""Ablation — the four expand strategies under chaos on a faulty WAN.

A lossy link changes none of the *results* — with retries, sequence
numbers and the server's replay cache every strategy must return a tree
byte-identical to its own zero-fault run — it only changes the *price*.
This bench measures that price per strategy under the stochastic chaos
presets and checks it against the retry-aware analytic model
(:func:`repro.model.response_time.predict_with_faults`): the simulated
mean over the fault seeds must stay within 10% of the prediction.

The strategies' exposure differs by orders of magnitude: the
navigational paths roll the loss dice per visible node, the batched
strategy per level, the recursive strategy twice per expand — the same
asymmetry the paper found for latency, replayed for loss.
"""

import os

import pytest

from repro.bench.workload import build_scenario
from repro.model.parameters import NetworkParameters, TreeParameters
from repro.model.response_time import (
    Action,
    Strategy,
    predict_with_faults,
)
from repro.network.faults import STOCHASTIC_PRESETS, RetryPolicy
from repro.network.profiles import WAN_512
from repro.pdm.operations import ExpandStrategy

TREE = TreeParameters(depth=4, branching=3, visibility=0.6)
NETWORK = NetworkParameters(latency_s=0.15, dtr_kbit_s=512)
SEED = 42

RETRY_POLICY = RetryPolicy(timeout_s=2.0, jitter_fraction=0.1)

#: Per-strategy query packets for the analytic model (the batched level
#: batch ships one statement per node type).
QUERY_PACKETS = {Strategy.BATCHED: 2}

STRATEGY_MAP = {
    Strategy.LATE: ExpandStrategy.NAVIGATIONAL_LATE,
    Strategy.EARLY: ExpandStrategy.NAVIGATIONAL_EARLY,
    Strategy.RECURSIVE: ExpandStrategy.RECURSIVE_EARLY,
    Strategy.BATCHED: ExpandStrategy.EXPAND_BATCHED,
}

FAULT_SEEDS = tuple(
    range(1, 13 if os.environ.get("REPRO_BENCH_SCALE") == "small" else 41)
)


def run_expand(scenario, strategy):
    root = scenario.product.root_obid
    root_attrs = scenario.product.root_attributes()
    return scenario.client.resilient_multi_level_expand(
        root, STRATEGY_MAP[strategy], root_attrs=root_attrs
    )


@pytest.fixture(scope="module")
def baseline():
    """Zero-fault scenario: reference bytes and seconds per strategy."""
    scenario = build_scenario(TREE, WAN_512, seed=SEED)
    reference = {}
    for strategy in STRATEGY_MAP:
        result = run_expand(scenario, strategy)
        reference[strategy] = (
            result.tree.canonical_bytes(),
            result.seconds,
            result.round_trips,
        )
    return scenario, reference


@pytest.fixture(scope="module")
def chaos_runs(baseline):
    """Every (preset, strategy) across the fault seeds."""
    base_scenario, reference = baseline
    runs = {}
    for preset in STOCHASTIC_PRESETS:
        for strategy in STRATEGY_MAP:
            seconds, identical = [], 0
            counters = {"drops": 0, "retries": 0, "timeouts": 0}
            for fault_seed in FAULT_SEEDS:
                scenario = build_scenario(
                    TREE,
                    WAN_512,
                    seed=SEED,
                    product=base_scenario.product,
                    fault_profile=preset,
                    fault_seed=fault_seed,
                    retry_policy=RETRY_POLICY,
                )
                result = run_expand(scenario, strategy)
                seconds.append(result.seconds)
                if result.tree.canonical_bytes() == reference[strategy][0]:
                    identical += 1
                stats = scenario.link.stats
                counters["drops"] += stats.drops
                counters["retries"] += stats.retries
                counters["timeouts"] += stats.timeouts
            runs[(preset.name, strategy)] = {
                "mean_seconds": sum(seconds) / len(seconds),
                "identical": identical,
                "counters": counters,
            }
    return runs


def predicted_seconds(preset, strategy, reference_entry):
    """Retry-aware prediction anchored on the measured zero-fault run.

    The base term uses the *simulated* zero-fault seconds and the
    per-round-trip fault overhead is scaled by the *simulated* round-trip
    count (the analytic base carries its own tree-shape error — expected
    vs realised σ-Bernoulli tree — which is not what this bench
    evaluates); the model contributes the expected retry, backoff and
    spike overhead per round trip.
    """
    __, zero_fault_seconds, zero_fault_round_trips = reference_entry
    prediction = predict_with_faults(
        Action.MLE,
        strategy,
        TREE,
        NETWORK,
        preset,
        RETRY_POLICY,
        query_packets=QUERY_PACKETS.get(strategy, 1),
    )
    model_round_trips = prediction.base.communications / 2.0
    overhead_per_round_trip = (
        prediction.retry_seconds
        + prediction.backoff_seconds
        + prediction.spike_seconds
    ) / model_round_trips
    return (
        zero_fault_seconds
        + overhead_per_round_trip * zero_fault_round_trips
    )


def test_chaos_report(benchmark, baseline, chaos_runs, capsys):
    __, reference = baseline

    def build_report():
        lines = [
            f"ablation: expand strategies under chaos ({TREE.label}; "
            f"{NETWORK.label}; {len(FAULT_SEEDS)} fault seeds)",
            f"{'preset':<12s} {'strategy':<12s} {'sim s':>8s} "
            f"{'model s':>8s} {'drops':>6s} {'retry':>6s} {'ident':>6s}",
        ]
        for (preset_name, strategy), run in chaos_runs.items():
            preset = next(
                p for p in STOCHASTIC_PRESETS if p.name == preset_name
            )
            model = predicted_seconds(preset, strategy, reference[strategy])
            lines.append(
                f"{preset_name:<12s} {strategy.value:<12s} "
                f"{run['mean_seconds']:>8.3f} {model:>8.3f} "
                f"{run['counters']['drops']:>6d} "
                f"{run['counters']['retries']:>6d} "
                f"{run['identical']:>6d}"
            )
        return "\n".join(lines)

    text = benchmark(build_report)
    with capsys.disabled():
        print()
        print(text)
    assert "drop-5" in text


def test_every_run_byte_identical_to_zero_fault(benchmark, chaos_runs):
    """The headline property: chaos is invisible in the result bytes."""

    def identical_fraction():
        total = identical = 0
        for run in chaos_runs.values():
            total += len(FAULT_SEEDS)
            identical += run["identical"]
        return identical, total

    identical, total = benchmark(identical_fraction)
    assert identical == total


def test_chaos_did_fire(benchmark, chaos_runs):
    """The presets genuinely injected faults and the client retried."""

    def totals():
        drops = sum(
            run["counters"]["drops"] for run in chaos_runs.values()
        )
        retries = sum(
            run["counters"]["retries"] for run in chaos_runs.values()
        )
        return drops, retries

    drops, retries = benchmark(totals)
    assert drops > 0
    assert retries >= drops


def test_model_matches_simulated_mean(benchmark, baseline, chaos_runs):
    """Retry-aware model vs simulated mean, per preset (aggregated over
    the four strategies so each comparison spans hundreds of messages):
    within 10% at paper scale; the small smoke run has too few fault
    seeds for tight means and only checks the order of magnitude."""
    __, reference = baseline
    tolerance = (
        0.5 if os.environ.get("REPRO_BENCH_SCALE") == "small" else 0.10
    )

    def per_preset_error():
        errors = {}
        for preset in STOCHASTIC_PRESETS:
            simulated = sum(
                chaos_runs[(preset.name, strategy)]["mean_seconds"]
                for strategy in STRATEGY_MAP
            )
            modeled = sum(
                predicted_seconds(preset, strategy, reference[strategy])
                for strategy in STRATEGY_MAP
            )
            errors[preset.name] = abs(simulated - modeled) / modeled
        return errors

    errors = benchmark(per_preset_error)
    for preset_name, error in errors.items():
        assert error < tolerance, f"{preset_name}: {error:.1%}"


def test_loss_exposure_ordering(benchmark, chaos_runs):
    """Fewer round trips, fewer dice rolls: the recursive strategy eats
    the fewest retries, the navigational baseline the most."""

    def retries_by_strategy():
        totals = {}
        for (preset_name, strategy), run in chaos_runs.items():
            totals[strategy] = (
                totals.get(strategy, 0) + run["counters"]["retries"]
            )
        return totals

    totals = benchmark(retries_by_strategy)
    assert totals[Strategy.LATE] > totals[Strategy.RECURSIVE]
    assert totals[Strategy.EARLY] > totals[Strategy.RECURSIVE]
