"""Ablation A6 — semi-naive vs naive recursive fixpoint.

The engine design choice that makes SQL:1999 recursion viable: each
fixpoint round joins only the previous round's *delta* against the link
table (semi-naive), instead of re-joining everything accumulated so far
(naive).  On a depth-N chain the naive algorithm does O(N²) index probes,
the semi-naive O(N) — footnote 1 of the paper already points at
"efficient implementations for the processing of recursive SQL queries"
as the enabler of the flat representation.
"""

import pytest

from repro.sqldb import Database

CHAIN = 400

SQL = (
    "WITH RECURSIVE r (n) AS "
    "(SELECT 0 UNION SELECT d FROM r JOIN e ON r.n = e.s) "
    "SELECT COUNT(*) FROM r"
)


@pytest.fixture(scope="module")
def chain_db():
    db = Database()
    db.execute("CREATE TABLE e (s INTEGER, d INTEGER)")
    db.execute("CREATE INDEX e_s ON e (s)")
    db.executemany(
        "INSERT INTO e VALUES (?, ?)", [(i, i + 1) for i in range(CHAIN)]
    )
    return db


def test_bench_seminaive(benchmark, chain_db):
    chain_db.enable_seminaive = True

    def run():
        return chain_db.execute(SQL).scalar()

    assert benchmark(run) == CHAIN + 1
    assert chain_db.last_counters["index_probes"] <= 2 * CHAIN


def test_bench_naive(benchmark, chain_db):
    chain_db.enable_seminaive = False

    def run():
        return chain_db.execute(SQL).scalar()

    count = benchmark(run)
    chain_db.enable_seminaive = True
    assert count == CHAIN + 1
    # Quadratic probe count: every round re-probes the whole history.
    assert chain_db.last_counters["index_probes"] > CHAIN * CHAIN / 4


def test_both_modes_agree_on_results(benchmark, chain_db):
    def run():
        chain_db.enable_seminaive = True
        fast = chain_db.execute(
            "WITH RECURSIVE r (n) AS "
            "(SELECT 0 UNION SELECT d FROM r JOIN e ON r.n = e.s) "
            "SELECT n FROM r ORDER BY 1"
        ).rows
        chain_db.enable_seminaive = False
        slow = chain_db.execute(
            "WITH RECURSIVE r (n) AS "
            "(SELECT 0 UNION SELECT d FROM r JOIN e ON r.n = e.s) "
            "SELECT n FROM r ORDER BY 1"
        ).rows
        chain_db.enable_seminaive = True
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fast == slow
