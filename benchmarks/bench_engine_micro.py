"""Engine micro-benchmarks: the substrate operations on the hot paths of
the PDM workload (parse, point lookup, navigational child fetch,
recursive fixpoint, bulk insert)."""

import pytest

from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import WAN_256
from repro.pdm.queries import recursive_mle_spec
from repro.rules.modificator import QueryModificator
from repro.rules.ruletable import RuleTable
from repro.sqldb import Database
from repro.sqldb.parser import parse_statement
from repro.sqldb.render import render_select


@pytest.fixture(scope="module")
def loaded_db():
    scenario = build_scenario(
        TreeParameters(depth=6, branching=3, visibility=0.6), WAN_256, seed=5
    )
    return scenario.database, scenario.product


RECURSIVE_SQL = render_select(
    QueryModificator(RuleTable(), "scott", {})
    .modify_recursive(recursive_mle_spec(), "multi_level_expand")
    .to_statement()
)


def test_bench_parse_recursive_query(benchmark):
    statement = benchmark(parse_statement, RECURSIVE_SQL)
    assert statement.with_clause.recursive


def test_bench_point_lookup(benchmark, loaded_db):
    db, product = loaded_db
    root = product.root_obid

    def run():
        return db.execute("SELECT * FROM assy WHERE obid = ?", [root])

    result = benchmark(run)
    assert len(result) == 1


def test_bench_navigational_child_fetch(benchmark, loaded_db):
    db, product = loaded_db
    root = product.root_obid
    sql = (
        "SELECT link.obid, link.right, assy.name FROM link "
        "JOIN assy ON link.right = assy.obid WHERE link.left = ?"
    )

    def run():
        return db.execute(sql, [root])

    result = benchmark(run)
    assert len(result) == 3


def test_bench_recursive_fixpoint(benchmark, loaded_db):
    db, product = loaded_db

    def run():
        return db.execute(RECURSIVE_SQL, [product.root_obid])

    result = benchmark(run)
    # Nodes plus connecting links of the whole product.
    assert len(result) == 2 * product.node_count - 1


def test_bench_bulk_insert(benchmark):
    def run():
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.executemany(
            "INSERT INTO t VALUES (?, ?)", [(i, i * 2) for i in range(2000)]
        )
        return db

    db = benchmark(run)
    assert db.table_rowcount("t") == 2000


def test_bench_aggregate_scan(benchmark, loaded_db):
    db, __ = loaded_db

    def run():
        return db.execute(
            "SELECT state, COUNT(*), AVG(weight) FROM comp GROUP BY state"
        )

    result = benchmark(run)
    assert result.rows
