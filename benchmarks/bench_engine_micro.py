"""Engine micro-benchmarks: the substrate operations on the hot paths of
the PDM workload (parse, point lookup, navigational child fetch,
recursive fixpoint, bulk insert) plus the row-vs-columnar executor
micro-suite behind the perf-trajectory baseline.

Two entry points share the same workload definitions:

* under pytest (the tier-1 suite), the ``test_bench_*`` functions run
  through pytest-benchmark as before;
* as a script — ``python benchmarks/bench_engine_micro.py [--smoke]
  [--json PATH]`` — :func:`run_micro` times every executor shape at the
  requested table sizes in both execution modes, verifies the results
  are identical (the row executor is the oracle), and reports wall time,
  rows/sec and the columnar speedup.  The CI perf-smoke job uses this
  mode, so the pytest import is optional here.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

try:
    import pytest
except ImportError:  # CI perf-smoke image has no pytest; script mode only.
    pytest = None  # type: ignore[assignment]

from repro.sqldb import Database

# ---------------------------------------------------------------------------
# Row-vs-columnar executor micro-suite.
# ---------------------------------------------------------------------------

#: Shape name -> (sql, params).  ``?`` thresholds are fixed so the
#: selectivity stays constant across table sizes (``v`` cycles 0..199).
#: The join probes ``dim.k``, deliberately *not* indexed, so the planner
#: picks the hash join both executors implement — an indexed right side
#: would turn it into an IndexNestedLoopJoin and a whole-plan fallback.
MICRO_SHAPES = {
    "scan_filter": ("SELECT a, b FROM t WHERE v < ?", (100,)),
    "narrow_and": ("SELECT id FROM t WHERE v < ? AND b < ?", (100, 500)),
    "project_arith": ("SELECT a + b, v * 2 FROM t WHERE v >= ?", (0,)),
    "hash_join": (
        "SELECT t.id, dim.label FROM t JOIN dim ON t.v = dim.k WHERE dim.k < ?",
        (100,),
    ),
    "aggregate": ("SELECT v, COUNT(*), SUM(a) FROM t GROUP BY v", ()),
}

MICRO_SIZES = (10_000, 100_000)
SMOKE_SIZES = (10_000,)

#: Extra shapes for the planner-mode comparison only — they plan through
#: index lookups, so they must stay out of MICRO_SHAPES (whose columnar
#: runs assert no whole-plan fallback).  ``point_and`` has two competing
#: access paths: the unique pk on ``id`` and the non-unique ``t_v`` index
#: (200 distinct values), so the costed planner has a real choice.
PLANNER_MODE_EXTRA_SHAPES = {
    "point_and": ("SELECT a FROM t WHERE v = ? AND id = ?", (7, 7)),
}

#: The costed planner may not be slower than the rule-based planner by
#: more than this factor on any micro shape (plans only differ where the
#: cost model says they should, so the overhead is planning itself).
PLANNER_MODE_MAX_RATIO = 2.0

#: Shapes faster than this in both modes are too close to timer noise
#: for a ratio gate (a point lookup runs in microseconds).
PLANNER_MODE_NOISE_FLOOR_S = 0.001


def build_micro_db(size: int, planner_mode: str = "cost") -> Database:
    """A deterministic fact/dim pair; values are formulaic, not random,
    so every run (and both executors) sees byte-identical data.  The
    ``t_v`` index is never usable by the MICRO_SHAPES range predicates —
    it exists for the planner-mode shapes, which probe it by equality."""
    db = Database(planner_mode=planner_mode)
    db.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, v INTEGER)"
    )
    db.execute("CREATE INDEX t_v ON t (v)")
    db.execute("CREATE TABLE dim (k INTEGER, label VARCHAR(20))")
    db.executemany(
        "INSERT INTO t VALUES (?, ?, ?, ?)",
        [(i, i * 3, (i * 7) % 1000, i % 200) for i in range(size)],
    )
    db.executemany(
        "INSERT INTO dim VALUES (?, ?)", [(k, f"label-{k}") for k in range(200)]
    )
    return db


def _best_of(db: Database, sql: str, params, mode: str, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        db.execute(sql, params, mode=mode)
        best = min(best, time.perf_counter() - start)
    return best


def run_micro(sizes=MICRO_SIZES, repeats: int = 3) -> dict:
    """Time every shape at every size in both modes.

    Returns ``{"shape@size": {...}}`` with per-mode wall seconds,
    throughput, and the columnar speedup.  Raises ``AssertionError`` if
    the two executors ever disagree on a result — a benchmark that
    returns wrong rows measures nothing.
    """
    results = {}
    for size in sizes:
        db = build_micro_db(size)
        for shape, (sql, params) in MICRO_SHAPES.items():
            row_result = db.execute(sql, params, mode="row")
            columnar_result = db.execute(sql, params, mode="columnar")
            assert columnar_result.rows == row_result.rows, (
                f"{shape}@{size}: executors disagree"
            )
            assert db.last_executor == "columnar", (
                f"{shape}@{size}: unexpected fallback ({db.last_executor})"
            )
            row_s = _best_of(db, sql, params, "row", repeats)
            columnar_s = _best_of(db, sql, params, "columnar", repeats)
            results[f"{shape}@{size}"] = {
                "shape": shape,
                "table_rows": size,
                "rows_returned": len(row_result.rows),
                "row_s": row_s,
                "columnar_s": columnar_s,
                "row_rows_per_s": size / row_s,
                "columnar_rows_per_s": size / columnar_s,
                "speedup": row_s / columnar_s,
            }
    return results


def run_planner_modes(size: int = 10_000, repeats: int = 3) -> dict:
    """Rule-based vs cost-based (post-ANALYZE) planner over the micro
    shapes plus the planner-only extras.

    Both databases hold byte-identical data; the results must agree
    exactly (plans may differ, answers may not).  Returns per-shape wall
    seconds for each mode and the cost/rule ratio the smoke gate checks
    against :data:`PLANNER_MODE_MAX_RATIO`.
    """
    rule_db = build_micro_db(size, planner_mode="rule")
    cost_db = build_micro_db(size, planner_mode="cost")
    cost_db.execute("ANALYZE")
    shapes = dict(MICRO_SHAPES)
    shapes.update(PLANNER_MODE_EXTRA_SHAPES)
    results = {}
    for shape, (sql, params) in shapes.items():
        rule_result = rule_db.execute(sql, params, mode="row")
        cost_result = cost_db.execute(sql, params, mode="row")
        assert cost_result.rows == rule_result.rows, (
            f"{shape}@{size}: planner modes disagree on the result"
        )
        rule_s = _best_of(rule_db, sql, params, "row", repeats)
        cost_s = _best_of(cost_db, sql, params, "row", repeats)
        results[shape] = {
            "shape": shape,
            "table_rows": size,
            "rows_returned": len(rule_result.rows),
            "rule_s": rule_s,
            "cost_s": cost_s,
            "ratio": cost_s / rule_s,
        }
    return results


def planner_mode_failures(results: dict) -> list:
    """Gate: the costed planner must stay within PLANNER_MODE_MAX_RATIO
    of the rule-based planner on every shape slow enough to time."""
    failures = []
    for name, entry in results.items():
        if (
            entry["rule_s"] < PLANNER_MODE_NOISE_FLOOR_S
            and entry["cost_s"] < PLANNER_MODE_NOISE_FLOOR_S
        ):
            continue  # microsecond-scale shape: ratio is timer noise
        if entry["ratio"] > PLANNER_MODE_MAX_RATIO:
            failures.append(
                f"planner modes {name}: cost-based {entry['cost_s'] * 1000:.2f} ms "
                f"is {entry['ratio']:.2f}x the rule-based "
                f"{entry['rule_s'] * 1000:.2f} ms "
                f"(limit {PLANNER_MODE_MAX_RATIO}x)"
            )
    return failures


def format_planner_modes(results: dict) -> str:
    lines = [
        f"{'shape':<24s} {'rows':>8s} {'rule ms':>9s} {'cost ms':>9s} "
        f"{'ratio':>7s}"
    ]
    for name, entry in results.items():
        lines.append(
            f"{name:<24s} {entry['table_rows']:>8d} "
            f"{entry['rule_s'] * 1000:>9.2f} {entry['cost_s'] * 1000:>9.2f} "
            f"{entry['ratio']:>6.2f}x"
        )
    return "\n".join(lines)


def format_micro(results: dict) -> str:
    lines = [
        f"{'shape':<24s} {'rows':>8s} {'row ms':>9s} {'col ms':>9s} "
        f"{'col Mrows/s':>12s} {'speedup':>8s}"
    ]
    for name, entry in results.items():
        lines.append(
            f"{name:<24s} {entry['table_rows']:>8d} "
            f"{entry['row_s'] * 1000:>9.1f} {entry['columnar_s'] * 1000:>9.1f} "
            f"{entry['columnar_rows_per_s'] / 1e6:>12.2f} "
            f"{entry['speedup']:>7.1f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="10k rows only, fewer repeats — for CI",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the per-shape results to PATH"
    )
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else 3
    results = run_micro(
        sizes=SMOKE_SIZES if args.smoke else MICRO_SIZES,
        repeats=repeats,
    )
    print(format_micro(results))
    planner_modes = run_planner_modes(size=SMOKE_SIZES[0], repeats=repeats)
    print("\nplanner modes (rule vs cost-based after ANALYZE):")
    print(format_planner_modes(planner_modes))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {"micro": results, "planner_modes": planner_modes},
                handle,
                indent=2,
                sort_keys=True,
            )
        print(f"wrote {args.json}")
    # Coarse CI gates: on the scan/filter shapes the vectorized executor
    # was built for, columnar must at least break even with row mode; and
    # the costed planner must stay within 2x of the rule-based planner.
    failures = [
        f"{name}: columnar slower than row ({entry['speedup']:.2f}x)"
        for name, entry in results.items()
        if entry["shape"] in ("scan_filter", "narrow_and") and entry["speedup"] < 1.0
    ]
    failures.extend(planner_mode_failures(planner_modes))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# pytest-benchmark section (tier-1 suite).
# ---------------------------------------------------------------------------

if pytest is not None:
    from repro.bench.workload import build_scenario
    from repro.model.parameters import TreeParameters
    from repro.network.profiles import WAN_256
    from repro.pdm.queries import recursive_mle_spec
    from repro.rules.modificator import QueryModificator
    from repro.rules.ruletable import RuleTable
    from repro.sqldb.parser import parse_statement
    from repro.sqldb.render import render_select

    @pytest.fixture(scope="module")
    def loaded_db():
        scenario = build_scenario(
            TreeParameters(depth=6, branching=3, visibility=0.6), WAN_256, seed=5
        )
        return scenario.database, scenario.product

    @pytest.fixture(scope="module")
    def micro_db():
        return build_micro_db(10_000)

    RECURSIVE_SQL = render_select(
        QueryModificator(RuleTable(), "scott", {})
        .modify_recursive(recursive_mle_spec(), "multi_level_expand")
        .to_statement()
    )

    def test_bench_parse_recursive_query(benchmark):
        statement = benchmark(parse_statement, RECURSIVE_SQL)
        assert statement.with_clause.recursive

    def test_bench_point_lookup(benchmark, loaded_db):
        db, product = loaded_db
        root = product.root_obid

        def run():
            return db.execute("SELECT * FROM assy WHERE obid = ?", [root])

        result = benchmark(run)
        assert len(result) == 1

    def test_bench_navigational_child_fetch(benchmark, loaded_db):
        db, product = loaded_db
        root = product.root_obid
        sql = (
            "SELECT link.obid, link.right, assy.name FROM link "
            "JOIN assy ON link.right = assy.obid WHERE link.left = ?"
        )

        def run():
            return db.execute(sql, [root])

        result = benchmark(run)
        assert len(result) == 3

    def test_bench_recursive_fixpoint(benchmark, loaded_db):
        db, product = loaded_db

        def run():
            return db.execute(RECURSIVE_SQL, [product.root_obid])

        result = benchmark(run)
        # Nodes plus connecting links of the whole product.
        assert len(result) == 2 * product.node_count - 1

    def test_bench_bulk_insert(benchmark):
        def run():
            db = Database()
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            db.executemany(
                "INSERT INTO t VALUES (?, ?)", [(i, i * 2) for i in range(2000)]
            )
            return db

        db = benchmark(run)
        assert db.table_rowcount("t") == 2000

    def test_bench_aggregate_scan(benchmark, loaded_db):
        db, __ = loaded_db

        def run():
            return db.execute(
                "SELECT state, COUNT(*), AVG(weight) FROM comp GROUP BY state"
            )

        result = benchmark(run)
        assert result.rows

    @pytest.mark.parametrize("mode", ["row", "columnar"])
    def test_bench_scan_filter_by_mode(benchmark, micro_db, mode):
        sql, params = MICRO_SHAPES["scan_filter"]

        def run():
            return micro_db.execute(sql, params, mode=mode)

        result = benchmark(run)
        assert len(result) == 5000

    @pytest.mark.parametrize("mode", ["row", "columnar"])
    def test_bench_hash_join_by_mode(benchmark, micro_db, mode):
        sql, params = MICRO_SHAPES["hash_join"]

        def run():
            return micro_db.execute(sql, params, mode=mode)

        result = benchmark(run)
        assert result.rows


if __name__ == "__main__":
    sys.exit(main())
