"""Table 4 — multi-level expands as a single recursive query.

The paper's headline: >95 % of the MLE response time eliminated on every
scenario/network cell, latency reduced to exactly two communications.
"""

import pytest

from repro.bench.experiments import run_table4
from repro.bench.measure import measure_action, price_traffic
from repro.model.parameters import PAPER_NETWORKS
from repro.model.response_time import Action, Strategy, predict


def test_table4_report_matches_paper(benchmark, capsys):
    report = benchmark(run_table4, simulate=False)
    assert report.max_model_error() <= 0.011
    for row in report.rows:
        assert row.model_saving == pytest.approx(row.paper_saving, abs=0.02)
    with capsys.disabled():
        print()
        print(report.to_text())


def test_bench_scenario1_recursive_mle(benchmark, scenario1):
    result = benchmark.pedantic(
        lambda: measure_action(scenario1, Action.MLE, Strategy.RECURSIVE),
        rounds=3,
        iterations=1,
    )
    model = predict(
        Action.MLE, Strategy.RECURSIVE, scenario1.tree, PAPER_NETWORKS[0]
    )
    benchmark.extra_info["simulated_seconds"] = result.seconds
    benchmark.extra_info["model_seconds"] = model.total_seconds
    assert result.round_trips == 1


def test_bench_scenario2_recursive_mle(benchmark, scenario2):
    result = benchmark.pedantic(
        lambda: measure_action(scenario2, Action.MLE, Strategy.RECURSIVE),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["simulated_seconds"] = result.seconds
    assert result.round_trips == 1


def test_bench_scenario3_recursive_mle(benchmark, scenario3):
    result = benchmark.pedantic(
        lambda: measure_action(scenario3, Action.MLE, Strategy.RECURSIVE),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["simulated_seconds"] = result.seconds
    assert result.round_trips == 1


def test_simulated_savings_exceed_90_percent(benchmark, measured_grids, paper_scale):
    """Paper: 'The benefit gained amounts to more than 95 percent in all
    examples!' — the simulation must reproduce that regime (the margin is
    slightly wider here because the simulator also ships the link rows the
    analytic model folds into the 512-byte node size)."""
    if not paper_scale:
        pytest.skip("saving thresholds are calibrated for paper-scale trees")

    def check():
        savings = []
        for grid in measured_grids.values():
            for network in PAPER_NETWORKS:
                late = price_traffic(
                    grid[(Action.MLE, Strategy.LATE)].traffic, network
                )
                recursive = price_traffic(
                    grid[(Action.MLE, Strategy.RECURSIVE)].traffic, network
                )
                savings.append(100.0 * (1 - recursive / late))
        return savings

    savings = benchmark(check)
    assert all(saving > 85.0 for saving in savings)
    assert max(savings) > 95.0
