"""Extension E3 — session-level workloads.

The paper quantifies single actions; this bench replays a 25-step
engineer session (browsing-heavy mix with occasional full expands,
queries and check-out cycles) under each strategy and reports the
session-level response time — the number a remote site actually feels.
"""

import pytest

from repro.bench.session import compare_strategies, generate_session, replay_session
from repro.bench.workload import build_scenario
from repro.model.parameters import TreeParameters
from repro.network.profiles import WAN_256
from repro.pdm.operations import ExpandStrategy


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(
        TreeParameters(depth=5, branching=3, visibility=0.6), WAN_256, seed=17
    )


@pytest.mark.parametrize("strategy", list(ExpandStrategy))
def test_bench_session(benchmark, scenario, strategy):
    steps = generate_session(scenario, length=25, seed=99)

    def run():
        return replay_session(scenario, steps, strategy)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["simulated_session_seconds"] = result.total_seconds
    benchmark.extra_info["round_trips"] = result.round_trips
    assert len(result.step_seconds) == 25


def test_session_comparison_report(benchmark, scenario, capsys):
    def run():
        return compare_strategies(scenario, length=25, seed=99)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n25-step engineer session over WAN-256:")
        print(f"{'strategy':<24}{'session[s]':>12}{'round trips':>13}{'KiB':>9}")
        for strategy, result in results.items():
            print(
                f"{strategy.value:<24}{result.total_seconds:>12.1f}"
                f"{result.round_trips:>13}"
                f"{result.payload_bytes / 1024:>9.0f}"
            )
        worst_step, worst_seconds = results[
            ExpandStrategy.NAVIGATIONAL_LATE
        ].slowest_step
        print(
            f"slowest late-eval step: {worst_step.kind} "
            f"({worst_seconds:.1f} s)"
        )
    late = results[ExpandStrategy.NAVIGATIONAL_LATE]
    recursive = results[ExpandStrategy.RECURSIVE_EARLY]
    assert recursive.total_seconds < late.total_seconds
    assert recursive.round_trips < late.round_trips
