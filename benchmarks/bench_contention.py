"""Contention benchmark: mixed expand/check-out workload under 2PL.

Sweeps client count and conflict rate through the deterministic
contention simulator and prints throughput, the latency distribution and
the deadlock/abort/retry accounting per cell:

    python benchmarks/bench_contention.py --json BENCH_contention.json

``--smoke`` runs one fixed-seed cell twice and fails unless the two
reports (schedule hash included) are byte-identical and no update was
lost — the CI determinism gate for the concurrency subsystem.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.concurrency import (  # noqa: E402
    ContentionConfig,
    ContentionSim,
    report_json,
)

SEED = 42

SMOKE_CONFIG = ContentionConfig(
    clients=4, ops_per_client=8, conflict_rate=0.7, seed=SEED
)


def run_cell(clients: int, conflict_rate: float, seed: int, ops: int) -> dict:
    config = ContentionConfig(
        clients=clients,
        ops_per_client=ops,
        conflict_rate=conflict_rate,
        seed=seed,
    )
    return ContentionSim(config).run()


def sweep(client_counts, conflict_rates, seed: int, ops: int) -> list:
    cells = []
    for clients in client_counts:
        for conflict_rate in conflict_rates:
            cells.append(run_cell(clients, conflict_rate, seed, ops))
    return cells


def print_table(cells) -> None:
    header = (
        f"{'clients':>7s} {'conflict':>8s} {'ops/s':>8s} "
        f"{'p50 s':>8s} {'p95 s':>8s} {'p99 s':>8s} "
        f"{'waits':>6s} {'dlocks':>6s} {'restarts':>8s} {'lost':>5s}"
    )
    print(header)
    for cell in cells:
        totals = cell["totals"]
        latency = cell["latency_s"]
        print(
            f"{cell['config']['clients']:>7d} "
            f"{cell['config']['conflict_rate']:>8.2f} "
            f"{cell['throughput_ops_per_s']:>8.3f} "
            f"{latency['p50']:>8.3f} {latency['p95']:>8.3f} "
            f"{latency['p99']:>8.3f} "
            f"{totals['write_retries'] + totals['read_retries']:>6d} "
            f"{totals['deadlock_aborts']:>6d} "
            f"{totals['txn_restarts']:>8d} "
            f"{cell['lost_updates']:>5d}"
        )


def smoke() -> int:
    """Fixed-seed determinism gate: two runs, byte-identical reports,
    zero lost updates, and at least one conflict actually exercised."""
    first = ContentionSim(SMOKE_CONFIG).run()
    second = ContentionSim(SMOKE_CONFIG).run()
    failures = []
    if report_json(first) != report_json(second):
        failures.append("same-seed reports differ — simulator is not deterministic")
    if first["schedule"]["hash"] != second["schedule"]["hash"]:
        failures.append("same-seed schedule hashes differ")
    if first["lost_updates"] != 0:
        failures.append(f"{first['lost_updates']} updates lost under contention")
    conflicts = (
        first["totals"]["write_retries"]
        + first["totals"]["read_retries"]
        + first["totals"]["deadlock_aborts"]
    )
    if conflicts == 0:
        failures.append("smoke cell saw no lock conflicts — proved nothing")
    print(f"schedule hash: {first['schedule']['hash']}")
    print(
        f"steps={first['schedule']['steps']} "
        f"committed_increments={first['committed_increments']} "
        f"deadlocks={first['totals']['deadlock_aborts']} "
        f"restarts={first['totals']['txn_restarts']} "
        f"lost_updates={first['lost_updates']}"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=[2, 4, 8],
        help="client counts to sweep",
    )
    parser.add_argument(
        "--conflict-rates",
        type=float,
        nargs="+",
        default=[0.1, 0.5, 0.9],
        help="conflict rates to sweep",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--ops", type=int, default=8, help="operations per client"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the full report to PATH"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fixed-seed determinism gate instead of the sweep",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    cells = sweep(args.clients, args.conflict_rates, args.seed, args.ops)
    print_table(cells)
    failures = [
        f"clients={cell['config']['clients']} "
        f"conflict={cell['config']['conflict_rate']}: "
        f"{cell['lost_updates']} lost updates"
        for cell in cells
        if cell["lost_updates"] != 0
    ]
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(cells, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
