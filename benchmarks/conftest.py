"""Shared fixtures for the benchmark suite.

The three paper scenarios are generated once per session (scenario 3 holds
~10^5 objects).  Setting ``REPRO_BENCH_SCALE=small`` shrinks the trees for
quick smoke runs while keeping every bench meaningful; the default runs at
paper scale.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.measure import measure_grid
from repro.bench.workload import build_scenario
from repro.model.parameters import PAPER_TREES, TreeParameters
from repro.network.profiles import WAN_256

SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper")

if SCALE == "small":
    SCENARIO_TREES = (
        TreeParameters(depth=3, branching=3, visibility=0.6),
        TreeParameters(depth=5, branching=2, visibility=0.6),
        TreeParameters(depth=4, branching=3, visibility=0.6),
    )
else:
    SCENARIO_TREES = PAPER_TREES

SEED = 42

#: True when running the full paper-scale workloads; the quantitative
#: shape assertions only apply then (small mode is a smoke run).
PAPER_SCALE = SCALE != "small"


@pytest.fixture(scope="session")
def paper_scale():
    return PAPER_SCALE


@pytest.fixture(scope="session")
def scenario1():
    """Paper scenario 1: δ=3, κ=9 (819 nodes)."""
    return build_scenario(SCENARIO_TREES[0], WAN_256, seed=SEED)


@pytest.fixture(scope="session")
def scenario2():
    """Paper scenario 2: δ=9, κ=3 (29 523 nodes)."""
    return build_scenario(SCENARIO_TREES[1], WAN_256, seed=SEED)


@pytest.fixture(scope="session")
def scenario3():
    """Paper scenario 3: δ=7, κ=5 (97 655 nodes)."""
    return build_scenario(SCENARIO_TREES[2], WAN_256, seed=SEED)


@pytest.fixture(scope="session")
def all_scenarios(scenario1, scenario2, scenario3):
    return (scenario1, scenario2, scenario3)


@pytest.fixture(scope="session")
def measured_grids(all_scenarios):
    """End-to-end measurements of every (action, strategy) per scenario —
    computed once and shared by the table/figure benches."""
    return {
        (scenario.tree.depth, scenario.tree.branching): measure_grid(scenario)
        for scenario in all_scenarios
    }
